"""Computation kernels -- the paper's ``fupermod_kernel``.

A kernel is the serial code performing one *computation unit*'s worth (times
``d``) of the application's core work.  The application programmer supplies:

* ``complexity(d)`` -- arithmetic operations needed to process ``d`` units
  (used to convert times to FLOP/s);
* ``initialize(d)`` / ``finalize(ctx)`` -- allocate and release the execution
  context, reproducing the memory requirements of the real application;
* ``execute(ctx)`` -- one run of the kernel, returning the elapsed seconds.

Two general-purpose kernels are provided: :class:`SimulatedKernel`, which
runs on a simulated :class:`~repro.platform.Device` and consumes virtual
time, and :class:`CallableKernel`, which wraps an arbitrary Python callable
and measures it with ``time.perf_counter`` -- real measurements, used by the
examples that benchmark genuine ``numpy`` kernels.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import BenchmarkError
from repro.platform.device import Device


@dataclass
class KernelContext:
    """Execution context created by ``initialize`` and consumed by ``execute``.

    Attributes:
        d: problem size in computation units.
        payload: kernel-specific state (allocated arrays, plans, ...).
    """

    d: int
    payload: Any = field(default=None, repr=False)


class ComputationKernel(abc.ABC):
    """Serial code for the application's core computation."""

    #: Human-readable kernel name (used in reports and persisted files).
    name: str = "kernel"

    @abc.abstractmethod
    def complexity(self, d: int) -> float:
        """Arithmetic operations required to process ``d`` computation units."""

    def initialize(self, d: int) -> KernelContext:
        """Create the execution context for ``d`` units (allocate memory)."""
        if d < 0:
            raise BenchmarkError(f"problem size must be non-negative, got {d}")
        return KernelContext(d=d)

    @abc.abstractmethod
    def execute(self, context: KernelContext) -> float:
        """Run the kernel once; return the elapsed time in seconds."""

    def finalize(self, context: KernelContext) -> None:
        """Release the execution context (default: drop the payload)."""
        context.payload = None


class SimulatedKernel(ComputationKernel):
    """A kernel executing on a simulated device in virtual time.

    Args:
        device: the simulated device that "runs" the kernel.
        unit_flops: arithmetic operations per computation unit, or a
            callable ``d -> flops`` for non-linear complexities.
        rng: random generator driving the device's timing noise.
        name: kernel name.

    The benchmark machinery may set :attr:`contention_factor` before a
    measurement to account for other processes active on the same node.
    """

    def __init__(
        self,
        device: Device,
        unit_flops: "float | Callable[[int], float]",
        rng: Optional[np.random.Generator] = None,
        name: Optional[str] = None,
    ) -> None:
        self.device = device
        self._unit_flops = unit_flops
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.name = name if name is not None else f"sim-{device.name}"
        self.contention_factor: float = 1.0

    def complexity(self, d: int) -> float:
        if callable(self._unit_flops):
            return float(self._unit_flops(d))
        return float(self._unit_flops) * d

    def execute(self, context: KernelContext) -> float:
        return self.device.execution_time(
            self.complexity(context.d),
            context.d,
            self.rng,
            contention_factor=self.contention_factor,
        )


class CallableKernel(ComputationKernel):
    """A kernel wrapping real Python code, timed with ``perf_counter``.

    Args:
        complexity_fn: ``d -> flops``.
        run_fn: ``payload -> None``; one kernel execution over the payload.
        setup_fn: optional ``d -> payload`` allocating working data.
        teardown_fn: optional ``payload -> None``.
        name: kernel name.
    """

    def __init__(
        self,
        complexity_fn: Callable[[int], float],
        run_fn: Callable[[Any], None],
        setup_fn: Optional[Callable[[int], Any]] = None,
        teardown_fn: Optional[Callable[[Any], None]] = None,
        name: str = "callable-kernel",
    ) -> None:
        self._complexity_fn = complexity_fn
        self._run_fn = run_fn
        self._setup_fn = setup_fn
        self._teardown_fn = teardown_fn
        self.name = name

    def complexity(self, d: int) -> float:
        return float(self._complexity_fn(d))

    def initialize(self, d: int) -> KernelContext:
        ctx = super().initialize(d)
        if self._setup_fn is not None:
            ctx.payload = self._setup_fn(d)
        return ctx

    def execute(self, context: KernelContext) -> float:
        start = time.perf_counter()
        self._run_fn(context.payload)
        return time.perf_counter() - start

    def finalize(self, context: KernelContext) -> None:
        if self._teardown_fn is not None and context.payload is not None:
            self._teardown_fn(context.payload)
        super().finalize(context)
