"""Benchmark runners -- the paper's ``fupermod_benchmark``.

:class:`Benchmark` measures one kernel with statistically controlled
repetition (Student-t confidence interval, repetition and time budgets).

:class:`PlatformBenchmark` measures kernels across a whole simulated
platform the way the paper prescribes for multicore nodes: processes that
share a node are *synchronised* and measured simultaneously, so the shared
resources are contended by the maximum number of processes and the measured
speeds reflect what the application will actually see.

:func:`build_full_models` sweeps a range of problem sizes to construct full
functional performance models in advance (the static-partitioning workflow),
returning both the models and the total benchmarking cost in kernel-seconds
-- the quantity the dynamic algorithms are designed to avoid.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro._stats import RunningStats, mad_filter
from repro.core.kernel import ComputationKernel, SimulatedKernel
from repro.core.models.base import PerformanceModel
from repro.core.point import MeasurementPoint
from repro.core.precision import Precision
from repro.errors import BenchmarkError
from repro.platform.cluster import Platform


def _point_from_stats(d: int, stats: RunningStats, precision: Precision) -> MeasurementPoint:
    """Turn accumulated samples into a measurement point.

    Applies the precision's robust outlier filter (if configured) before
    computing the mean and confidence interval; ``reps`` always reports the
    repetitions actually executed.
    """
    reps = stats.count
    if precision.outlier_threshold is not None:
        kept = mad_filter(stats.samples, precision.outlier_threshold)
        if len(kept) != len(stats.samples):
            filtered = RunningStats()
            for x in kept:
                filtered.add(x)
            stats = filtered
    ci = stats.confidence_halfwidth(precision.confidence_level)
    if ci == float("inf"):
        ci = 0.0
    return MeasurementPoint(d=d, t=stats.mean, reps=reps, ci=ci)


class Benchmark:
    """Statistically controlled measurement of one computation kernel.

    Args:
        kernel: the kernel to measure.
        precision: repetition policy (defaults to :class:`Precision`).
    """

    def __init__(
        self,
        kernel: ComputationKernel,
        precision: Optional[Precision] = None,
    ) -> None:
        self.kernel = kernel
        self.precision = precision if precision is not None else Precision()

    def run(self, d: int) -> MeasurementPoint:
        """Measure the kernel at problem size ``d``.

        Executes at least ``reps_min`` repetitions, then continues until the
        relative confidence-interval target is met or a budget (repetitions
        or accumulated kernel time) runs out.
        """
        if d <= 0:
            raise BenchmarkError(f"problem size must be positive, got {d}")
        p = self.precision
        context = self.kernel.initialize(d)
        try:
            stats = RunningStats()
            spent = 0.0
            while stats.count < p.reps_max:
                elapsed = self.kernel.execute(context)
                if elapsed < 0.0:
                    raise BenchmarkError(
                        f"kernel {self.kernel.name!r} reported negative time {elapsed}"
                    )
                stats.add(elapsed)
                spent += elapsed
                if stats.count < p.reps_min:
                    continue
                if spent >= p.time_limit:
                    break
                if stats.relative_error(p.confidence_level) <= p.relative_error:
                    break
        finally:
            self.kernel.finalize(context)
        return _point_from_stats(d, stats, p)


class PlatformBenchmark:
    """Synchronised measurement of per-rank kernels on a simulated platform.

    One rank per device, in platform order.  When several ranks are measured
    together, each rank on a node with ``g`` simultaneously active processes
    sees its speed scaled by the node's contention factor for group size
    ``g`` -- the effect the paper's synchronised measurement deliberately
    provokes and captures.

    Processes are *bound to cores* by default, as the paper prescribes:
    "automatic rearranging of the processes provided by operating system
    may result in performance degradation, therefore, we bind processes to
    cores to ensure a stable performance".  With ``bound=False`` the
    simulator injects the jitter an unbound process sees -- broad
    multiplicative noise plus occasional migration spikes -- so the effect
    of skipping binding is measurable (ablation A12).

    Args:
        platform: the simulated platform.
        unit_flops: arithmetic operations per computation unit (constant or
            callable ``d -> flops``), defining the kernel each rank runs.
        precision: repetition policy shared by all ranks.
        seed: seed for the per-rank noise generators.
        bound: whether processes are pinned to their cores.
    """

    #: Relative jitter of an unbound (OS-migratable) process.
    UNBOUND_SIGMA = 0.12
    #: Probability that an unbound execution hits a migration spike.
    MIGRATION_PROBABILITY = 0.05
    #: Migration spike slowdown range (multiplicative).
    MIGRATION_SLOWDOWN = (1.5, 3.5)

    def __init__(
        self,
        platform: Platform,
        unit_flops: "float | Callable[[int], float]",
        precision: Optional[Precision] = None,
        seed: int = 0,
        bound: bool = True,
    ) -> None:
        self.platform = platform
        self.precision = precision if precision is not None else Precision()
        self.unit_flops = unit_flops
        self.bound = bound
        self._kernels: List[SimulatedKernel] = []
        self._bind_rngs: List[np.random.Generator] = []
        for rank, device in enumerate(platform.devices):
            rng = np.random.default_rng(seed + 1000003 * rank)
            self._kernels.append(SimulatedKernel(device, unit_flops, rng=rng))
            self._bind_rngs.append(np.random.default_rng(seed + 7368787 * (rank + 1)))

    def _binding_factor(self, rank: int) -> float:
        """Extra multiplicative time factor when the process is unbound."""
        if self.bound:
            return 1.0
        rng = self._bind_rngs[rank]
        draw = float(rng.normal(0.0, self.UNBOUND_SIGMA))
        factor = max(1.0 + min(max(draw, -3 * self.UNBOUND_SIGMA),
                               3 * self.UNBOUND_SIGMA), 0.05)
        if rng.random() < self.MIGRATION_PROBABILITY:
            lo, hi = self.MIGRATION_SLOWDOWN
            factor *= lo + (hi - lo) * float(rng.random())
        return factor

    @property
    def size(self) -> int:
        """Number of ranks (= devices on the platform)."""
        return self.platform.size

    def kernel(self, rank: int) -> SimulatedKernel:
        """The kernel executed by ``rank``."""
        return self._kernels[rank]

    def complexity(self, d: int) -> float:
        """Complexity of ``d`` computation units (same for every rank)."""
        return self._kernels[0].complexity(d)

    def measure(self, rank: int, d: int) -> MeasurementPoint:
        """Measure one rank alone (no contention from other ranks)."""
        kernel = self._kernels[rank]
        kernel.contention_factor = self.platform.group_contention(rank, [rank])
        if self.bound:
            return Benchmark(kernel, self.precision).run(d)
        # Unbound: wrap the kernel so every execution picks up the jitter.
        point = Benchmark(_UnboundKernel(kernel, self, rank), self.precision).run(d)
        return point

    def measure_group(
        self,
        sizes: Sequence[Optional[int]],
    ) -> List[Optional[MeasurementPoint]]:
        """Measure all ranks simultaneously, synchronised.

        ``sizes[rank]`` is the problem size for that rank, or None / 0 to
        leave the rank idle.  Active ranks repeat their kernels *together*
        (the synchronisation of the paper): every active rank performs the
        same number of repetitions, chosen so that each of them individually
        meets the precision target (within the global caps).

        Returns one point per rank (None for idle ranks).
        """
        if len(sizes) != self.size:
            raise BenchmarkError(
                f"got {len(sizes)} sizes for a platform of {self.size} ranks"
            )
        active = [r for r, d in enumerate(sizes) if d is not None and d > 0]
        if not active:
            return [None] * self.size
        p = self.precision
        contexts = {}
        stats = {}
        spent = {r: 0.0 for r in active}
        for r in active:
            kernel = self._kernels[r]
            kernel.contention_factor = self.platform.group_contention(r, active)
            contexts[r] = kernel.initialize(int(sizes[r]))  # type: ignore[arg-type]
            stats[r] = RunningStats()
        try:
            reps = 0
            while reps < p.reps_max:
                for r in active:
                    elapsed = self._kernels[r].execute(contexts[r])
                    elapsed *= self._binding_factor(r)
                    stats[r].add(elapsed)
                    spent[r] += elapsed
                reps += 1
                if reps < p.reps_min:
                    continue
                done = True
                for r in active:
                    if spent[r] >= p.time_limit:
                        continue
                    if stats[r].relative_error(p.confidence_level) > p.relative_error:
                        done = False
                        break
                if done:
                    break
        finally:
            for r in active:
                self._kernels[r].finalize(contexts[r])
        points: List[Optional[MeasurementPoint]] = [None] * self.size
        for r in active:
            points[r] = _point_from_stats(int(sizes[r]), stats[r], p)  # type: ignore[arg-type]
        return points


class _UnboundKernel(ComputationKernel):
    """Wraps a kernel with the unbound-process jitter of its benchmark."""

    def __init__(self, inner: SimulatedKernel, bench: "PlatformBenchmark",
                 rank: int) -> None:
        self._inner = inner
        self._bench = bench
        self._rank = rank
        self.name = f"unbound-{inner.name}"

    def complexity(self, d: int) -> float:
        return self._inner.complexity(d)

    def initialize(self, d: int):
        return self._inner.initialize(d)

    def execute(self, context) -> float:
        return self._inner.execute(context) * self._bench._binding_factor(self._rank)

    def finalize(self, context) -> None:
        self._inner.finalize(context)


def build_full_models(
    bench: PlatformBenchmark,
    model_factory: Callable[[], PerformanceModel],
    sizes: Sequence[int],
    synchronised: bool = True,
) -> "tuple[List[PerformanceModel], float]":
    """Build full performance models by sweeping problem sizes.

    This is the static-partitioning workflow: benchmark every rank at every
    size in ``sizes`` (synchronised per the paper's methodology unless
    ``synchronised`` is False), feed the points into fresh models from
    ``model_factory``, and report the total benchmarking cost in
    kernel-seconds.

    Returns:
        ``(models, total_cost_seconds)`` with one model per rank.
    """
    if not sizes:
        raise BenchmarkError("sizes must be non-empty")
    models = [model_factory() for _ in range(bench.size)]
    per_rank: List[List[MeasurementPoint]] = [[] for _ in range(bench.size)]
    total_cost = 0.0
    for d in sizes:
        if synchronised:
            points = bench.measure_group([d] * bench.size)
        else:
            points = [bench.measure(r, d) for r in range(bench.size)]
        for rank, point in enumerate(points):
            if point is not None:
                per_rank[rank].append(point)
                total_cost += point.benchmark_cost
    # Bulk ingest after the sweep: one deferred fit per model instead of
    # one per (rank, size) measurement.
    for model, collected in zip(models, per_rank):
        model.update_many(collected)
    return models, total_cost
