"""Benchmark runners -- the paper's ``fupermod_benchmark``.

:class:`Benchmark` measures one kernel with statistically controlled
repetition (Student-t confidence interval, repetition and time budgets).

:class:`PlatformBenchmark` measures kernels across a whole simulated
platform the way the paper prescribes for multicore nodes: processes that
share a node are *synchronised* and measured simultaneously, so the shared
resources are contended by the maximum number of processes and the measured
speeds reflect what the application will actually see.

:func:`build_full_models` sweeps a range of problem sizes to construct full
functional performance models in advance (the static-partitioning workflow),
returning both the models and the total benchmarking cost in kernel-seconds
-- the quantity the dynamic algorithms are designed to avoid.

The resilient layer -- :class:`RetryPolicy`, :class:`ResilientBenchmark`
and :class:`ResilientPlatformBenchmark` -- makes measurement survive the
faults :mod:`repro.faults` can inject (and the real world produces):
transient kernel exceptions are retried with exponential backoff, garbage
(NaN/negative) timings are re-measured, and a rank that exhausts its
failure budget or crashes outright is *quarantined* -- excluded from the
rest of the run with a typed
:class:`~repro.faults.DeviceQuarantined` record instead of aborting
everything.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro._stats import RunningStats, mad_filter
from repro.core.kernel import ComputationKernel, SimulatedKernel
from repro.core.models.base import PerformanceModel
from repro.core.point import MeasurementPoint
from repro.core.precision import Precision
from repro.degrade.watchdog import Deadline
from repro.errors import (
    BenchmarkError,
    DeadlineExceeded,
    FaultInjectionError,
    QuarantineError,
)
from repro.faults.inject import FaultyKernel
from repro.faults.plan import FaultPlan
from repro.faults.report import ResilienceReport
from repro.platform.cluster import Platform


def _point_from_stats(d: int, stats: RunningStats, precision: Precision) -> MeasurementPoint:
    """Turn accumulated samples into a measurement point.

    Applies the precision's robust outlier filter (if configured) before
    computing the mean and confidence interval; ``reps`` always reports the
    repetitions actually executed.
    """
    reps = stats.count
    if precision.outlier_threshold is not None:
        kept = mad_filter(stats.samples, precision.outlier_threshold)
        if len(kept) != len(stats.samples):
            filtered = RunningStats()
            for x in kept:
                filtered.add(x)
            stats = filtered
    ci = stats.confidence_halfwidth(precision.confidence_level)
    if ci == float("inf"):
        ci = 0.0
    return MeasurementPoint(d=d, t=stats.mean, reps=reps, ci=ci)


class Benchmark:
    """Statistically controlled measurement of one computation kernel.

    Args:
        kernel: the kernel to measure.
        precision: repetition policy (defaults to :class:`Precision`).
    """

    def __init__(
        self,
        kernel: ComputationKernel,
        precision: Optional[Precision] = None,
    ) -> None:
        self.kernel = kernel
        self.precision = precision if precision is not None else Precision()

    def run(self, d: int, deadline: Optional[Deadline] = None) -> MeasurementPoint:
        """Measure the kernel at problem size ``d``.

        Executes at least ``reps_min`` repetitions, then continues until the
        relative confidence-interval target is met or a budget (repetitions
        or accumulated kernel time) runs out.

        Args:
            deadline: optional watchdog :class:`~repro.degrade.Deadline`.
                Every repetition's duration is charged against it, so a
                hung kernel raises
                :class:`~repro.errors.DeadlineExceeded` -- carrying the
                point built from the repetitions that *did* complete as
                ``partial`` -- instead of stalling the sweep.  Works in
                both wall-clock and virtual-time modes (simulated kernels
                run in virtual time).
        """
        if d <= 0:
            raise BenchmarkError(f"problem size must be positive, got {d}")
        p = self.precision
        context = self.kernel.initialize(d)
        try:
            stats = RunningStats()
            spent = 0.0
            while stats.count < p.reps_max:
                elapsed = self.kernel.execute(context)
                if not math.isfinite(elapsed):
                    raise BenchmarkError(
                        f"kernel {self.kernel.name!r} reported non-finite time {elapsed}"
                    )
                if elapsed < 0.0:
                    raise BenchmarkError(
                        f"kernel {self.kernel.name!r} reported negative time {elapsed}"
                    )
                stats.add(elapsed)
                spent += elapsed
                if deadline is not None:
                    deadline.consume(elapsed,
                                     partial=_point_from_stats(d, stats, p))
                if stats.count < p.reps_min:
                    continue
                if spent >= p.time_limit:
                    break
                if stats.relative_error(p.confidence_level) <= p.relative_error:
                    break
        finally:
            self.kernel.finalize(context)
        return _point_from_stats(d, stats, p)


class PlatformBenchmark:
    """Synchronised measurement of per-rank kernels on a simulated platform.

    One rank per device, in platform order.  When several ranks are measured
    together, each rank on a node with ``g`` simultaneously active processes
    sees its speed scaled by the node's contention factor for group size
    ``g`` -- the effect the paper's synchronised measurement deliberately
    provokes and captures.

    Processes are *bound to cores* by default, as the paper prescribes:
    "automatic rearranging of the processes provided by operating system
    may result in performance degradation, therefore, we bind processes to
    cores to ensure a stable performance".  With ``bound=False`` the
    simulator injects the jitter an unbound process sees -- broad
    multiplicative noise plus occasional migration spikes -- so the effect
    of skipping binding is measurable (ablation A12).

    Args:
        platform: the simulated platform.
        unit_flops: arithmetic operations per computation unit (constant or
            callable ``d -> flops``), defining the kernel each rank runs.
        precision: repetition policy shared by all ranks.
        seed: seed for the per-rank noise generators.
        bound: whether processes are pinned to their cores.
    """

    #: Relative jitter of an unbound (OS-migratable) process.
    UNBOUND_SIGMA = 0.12
    #: Probability that an unbound execution hits a migration spike.
    MIGRATION_PROBABILITY = 0.05
    #: Migration spike slowdown range (multiplicative).
    MIGRATION_SLOWDOWN = (1.5, 3.5)

    def __init__(
        self,
        platform: Platform,
        unit_flops: "float | Callable[[int], float]",
        precision: Optional[Precision] = None,
        seed: int = 0,
        bound: bool = True,
    ) -> None:
        self.platform = platform
        self.precision = precision if precision is not None else Precision()
        self.unit_flops = unit_flops
        self.bound = bound
        self._kernels: List[SimulatedKernel] = []
        self._bind_rngs: List[np.random.Generator] = []
        for rank, device in enumerate(platform.devices):
            rng = np.random.default_rng(seed + 1000003 * rank)
            self._kernels.append(SimulatedKernel(device, unit_flops, rng=rng))
            self._bind_rngs.append(np.random.default_rng(seed + 7368787 * (rank + 1)))

    def _binding_factor(self, rank: int) -> float:
        """Extra multiplicative time factor when the process is unbound."""
        if self.bound:
            return 1.0
        rng = self._bind_rngs[rank]
        draw = float(rng.normal(0.0, self.UNBOUND_SIGMA))
        factor = max(1.0 + min(max(draw, -3 * self.UNBOUND_SIGMA),
                               3 * self.UNBOUND_SIGMA), 0.05)
        if rng.random() < self.MIGRATION_PROBABILITY:
            lo, hi = self.MIGRATION_SLOWDOWN
            factor *= lo + (hi - lo) * float(rng.random())
        return factor

    @property
    def size(self) -> int:
        """Number of ranks (= devices on the platform)."""
        return self.platform.size

    def kernel(self, rank: int) -> SimulatedKernel:
        """The kernel executed by ``rank``."""
        return self._kernels[rank]

    def complexity(self, d: int) -> float:
        """Complexity of ``d`` computation units (same for every rank)."""
        return self._kernels[0].complexity(d)

    def measure(self, rank: int, d: int) -> MeasurementPoint:
        """Measure one rank alone (no contention from other ranks)."""
        kernel = self._kernels[rank]
        kernel.contention_factor = self.platform.group_contention(rank, [rank])
        if self.bound:
            return Benchmark(kernel, self.precision).run(d)
        # Unbound: wrap the kernel so every execution picks up the jitter.
        point = Benchmark(_UnboundKernel(kernel, self, rank), self.precision).run(d)
        return point

    def measure_group(
        self,
        sizes: Sequence[Optional[int]],
    ) -> List[Optional[MeasurementPoint]]:
        """Measure all ranks simultaneously, synchronised.

        ``sizes[rank]`` is the problem size for that rank, or None / 0 to
        leave the rank idle.  Active ranks repeat their kernels *together*
        (the synchronisation of the paper): every active rank performs the
        same number of repetitions, chosen so that each of them individually
        meets the precision target (within the global caps).

        Returns one point per rank (None for idle ranks).
        """
        if len(sizes) != self.size:
            raise BenchmarkError(
                f"got {len(sizes)} sizes for a platform of {self.size} ranks"
            )
        active = [r for r, d in enumerate(sizes) if d is not None and d > 0]
        if not active:
            return [None] * self.size
        p = self.precision
        contexts = {}
        stats = {}
        spent = {r: 0.0 for r in active}
        for r in active:
            kernel = self._kernels[r]
            kernel.contention_factor = self.platform.group_contention(r, active)
            contexts[r] = kernel.initialize(int(sizes[r]))  # type: ignore[arg-type]
            stats[r] = RunningStats()
        try:
            reps = 0
            while reps < p.reps_max:
                for r in active:
                    elapsed = self._kernels[r].execute(contexts[r])
                    if not math.isfinite(elapsed) or elapsed < 0.0:
                        raise BenchmarkError(
                            f"rank {r}: kernel {self._kernels[r].name!r} "
                            f"reported invalid time {elapsed}"
                        )
                    elapsed *= self._binding_factor(r)
                    stats[r].add(elapsed)
                    spent[r] += elapsed
                reps += 1
                if reps < p.reps_min:
                    continue
                done = True
                for r in active:
                    if spent[r] >= p.time_limit:
                        continue
                    if stats[r].relative_error(p.confidence_level) > p.relative_error:
                        done = False
                        break
                if done:
                    break
        finally:
            for r in active:
                self._kernels[r].finalize(contexts[r])
        points: List[Optional[MeasurementPoint]] = [None] * self.size
        for r in active:
            points[r] = _point_from_stats(int(sizes[r]), stats[r], p)  # type: ignore[arg-type]
        return points


class _UnboundKernel(ComputationKernel):
    """Wraps a kernel with the unbound-process jitter of its benchmark."""

    def __init__(self, inner: SimulatedKernel, bench: "PlatformBenchmark",
                 rank: int) -> None:
        self._inner = inner
        self._bench = bench
        self._rank = rank
        self.name = f"unbound-{inner.name}"

    def complexity(self, d: int) -> float:
        return self._inner.complexity(d)

    def initialize(self, d: int):
        return self._inner.initialize(d)

    def execute(self, context) -> float:
        return self._inner.execute(context) * self._bench._binding_factor(self._rank)

    def finalize(self, context) -> None:
        self._inner.finalize(context)


def build_full_models(
    bench: PlatformBenchmark,
    model_factory: Callable[[], PerformanceModel],
    sizes: Sequence[int],
    synchronised: bool = True,
) -> "tuple[List[PerformanceModel], float]":
    """Build full performance models by sweeping problem sizes.

    This is the static-partitioning workflow: benchmark every rank at every
    size in ``sizes`` (synchronised per the paper's methodology unless
    ``synchronised`` is False), feed the points into fresh models from
    ``model_factory``, and report the total benchmarking cost in
    kernel-seconds.

    Returns:
        ``(models, total_cost_seconds)`` with one model per rank.
    """
    if not sizes:
        raise BenchmarkError("sizes must be non-empty")
    models = [model_factory() for _ in range(bench.size)]
    per_rank: List[List[MeasurementPoint]] = [[] for _ in range(bench.size)]
    total_cost = 0.0
    for d in sizes:
        if synchronised:
            points = bench.measure_group([d] * bench.size)
        else:
            points = [bench.measure(r, d) for r in range(bench.size)]
        for rank, point in enumerate(points):
            if point is not None:
                per_rank[rank].append(point)
                total_cost += point.benchmark_cost
    # Bulk ingest after the sweep: one deferred fit per model instead of
    # one per (rank, size) measurement.
    for model, collected in zip(models, per_rank):
        model.update_many(collected)
    return models, total_cost


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to fight for a measurement before giving up on a rank.

    Attributes:
        max_retries: retries per individual measurement before it is
            abandoned (raising :class:`~repro.errors.QuarantineError`).
        backoff_base: virtual seconds charged for the first retry's
            backoff; doubles (times ``backoff_factor``) per further retry.
            Simulated kernels have no wall clock to sleep on, so backoff
            is accounted as wasted cost rather than slept.
        backoff_factor: exponential growth factor of the backoff.
        max_failures: cumulative failures a rank may accumulate across the
            whole run before its device is quarantined.
        remeasure_ci_ratio: when set, a point whose confidence-interval
            half-width exceeds ``remeasure_ci_ratio * t`` (a statistical
            outlier, e.g. one poisoned by an undetected straggler episode)
            is measured a second time and the tighter of the two points is
            kept.  None disables outlier re-measurement.
    """

    max_retries: int = 3
    backoff_base: float = 0.001
    backoff_factor: float = 2.0
    max_failures: int = 10
    remeasure_ci_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise BenchmarkError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0.0:
            raise BenchmarkError(
                f"backoff_base must be non-negative, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise BenchmarkError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_failures < 1:
            raise BenchmarkError(f"max_failures must be >= 1, got {self.max_failures}")
        if self.remeasure_ci_ratio is not None and self.remeasure_ci_ratio <= 0.0:
            raise BenchmarkError(
                f"remeasure_ci_ratio must be positive, got {self.remeasure_ci_ratio}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff charged before retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor ** attempt


class ResilientBenchmark:
    """Measurement of one kernel that survives transient misbehaviour.

    Wraps the statistically controlled :class:`Benchmark` with a retry
    loop: transient injected faults
    (:class:`~repro.errors.FaultInjectionError` with ``fatal=False``) and
    garbage timings (NaN/negative, surfacing as
    :class:`~repro.errors.BenchmarkError`) are retried up to
    ``retry.max_retries`` times with exponential backoff.  Fatal faults
    (rank crashes) propagate immediately -- retrying a dead rank is
    pointless.  Failures accumulate in :attr:`failures` across calls so a
    platform-level runner can enforce a per-rank budget.

    Args:
        kernel: the kernel to measure (typically a
            :class:`~repro.faults.FaultyKernel` in tests).
        precision: repetition policy.
        retry: retry policy (defaults to :class:`RetryPolicy`).
        report: optional :class:`~repro.faults.ResilienceReport` recording
            retries and wasted cost.
        rank: rank attached to events and errors.
        deadline_budget: optional watchdog budget in seconds for each
            measurement.  A measurement that overruns it raises
            :class:`~repro.errors.DeadlineExceeded` (recorded as a
            ``hang`` event) *without* retrying -- a hung kernel is not a
            transient fault, and re-running it would just hang again.
        clock: time source for the deadline; the default ``None`` selects
            virtual time (the kernel's own reported durations), which is
            what simulated platforms need -- pass ``time.monotonic`` for
            real kernels.
    """

    def __init__(
        self,
        kernel: ComputationKernel,
        precision: Optional[Precision] = None,
        retry: Optional[RetryPolicy] = None,
        report: Optional[ResilienceReport] = None,
        rank: int = -1,
        deadline_budget: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.kernel = kernel
        self.precision = precision if precision is not None else Precision()
        self.retry = retry if retry is not None else RetryPolicy()
        self.report = report
        self.rank = rank
        self.deadline_budget = deadline_budget
        self.clock = clock
        #: Cumulative failed attempts across all measurements of this rank.
        self.failures = 0
        #: Virtual seconds lost to failed attempts' backoff.
        self.wasted_cost = 0.0

    def _note_failure(self, d: int, attempt: int, exc: Exception) -> None:
        self.failures += 1
        backoff = self.retry.backoff(attempt)
        self.wasted_cost += backoff
        if self.report is not None:
            self.report.retries += 1
            self.report.wasted_cost += backoff
            self.report.record("retry", self.rank, f"d={d} attempt={attempt}: {exc}")

    def run(self, d: int) -> MeasurementPoint:
        """Measure at size ``d``, retrying transient failures.

        Raises:
            QuarantineError: the measurement failed ``max_retries + 1``
                times in a row.
            FaultInjectionError: a fatal (crash) fault fired.
            DeadlineExceeded: the measurement overran ``deadline_budget``
                (the kernel hung); not retried.
        """
        if d <= 0:
            raise BenchmarkError(f"problem size must be positive, got {d}")
        attempt = 0
        last: Optional[Exception] = None
        while attempt <= self.retry.max_retries:
            deadline = (
                Deadline(self.deadline_budget, stage="benchmark",
                         rank=self.rank, clock=self.clock)
                if self.deadline_budget is not None else None
            )
            try:
                point = Benchmark(self.kernel, self.precision).run(
                    d, deadline=deadline
                )
            except DeadlineExceeded as exc:
                if self.report is not None:
                    self.report.record(
                        "hang", self.rank,
                        f"d={d}: {exc.elapsed:.3g}s of a {exc.budget:.3g}s "
                        "budget",
                    )
                raise
            except FaultInjectionError as exc:
                if exc.fatal:
                    raise
                last = exc
                self._note_failure(d, attempt, exc)
            except BenchmarkError as exc:
                last = exc
                self._note_failure(d, attempt, exc)
            else:
                return self._maybe_remeasure(d, point)
            attempt += 1
        raise QuarantineError(
            f"rank {self.rank}: measurement at d={d} failed {attempt} times "
            f"(last: {last})",
            rank=self.rank,
        )

    def _maybe_remeasure(self, d: int, point: MeasurementPoint) -> MeasurementPoint:
        """Outlier re-measurement: retry points with huge relative CI."""
        ratio = self.retry.remeasure_ci_ratio
        if ratio is None or point.t <= 0.0 or point.ci <= ratio * point.t:
            return point
        if self.report is not None:
            self.report.record(
                "remeasure", self.rank,
                f"d={d} ci={point.ci!r} t={point.t!r}",
            )
        try:
            second = Benchmark(self.kernel, self.precision).run(d)
        except (FaultInjectionError, BenchmarkError):
            return point  # keep the outlier rather than lose the point
        if second.t > 0.0 and second.ci / second.t < point.ci / point.t:
            if self.report is not None:
                self.report.wasted_cost += point.benchmark_cost
            return second
        if self.report is not None:
            self.report.wasted_cost += second.benchmark_cost
        return point


class ResilientPlatformBenchmark:
    """Platform-wide measurement that degrades gracefully under faults.

    The drop-in resilient counterpart of :class:`PlatformBenchmark`:
    per-rank kernels (optionally wrapped in
    :class:`~repro.faults.FaultyKernel` by a
    :class:`~repro.faults.FaultPlan`) are measured with retry/backoff, and
    a rank that crashes, exhausts a measurement's retries or overruns the
    cumulative failure budget is *quarantined*: recorded in the
    :class:`~repro.faults.ResilienceReport` and excluded from every
    subsequent measurement, while the surviving ranks carry on.

    Determinism and resumability: the timing-noise and fault streams are
    re-derived per ``(seed, rank, measurement index)``, so the same seed
    replays bit-identically, and a checkpoint resume (which skips already
    committed measurement indices via :meth:`skip_measurement`) measures
    the remaining points exactly as an uninterrupted run would.

    Args:
        platform: the simulated platform.
        unit_flops: arithmetic operations per computation unit.
        precision: repetition policy shared by all ranks.
        seed: base seed for timing noise (and kernel fault streams).
        retry: retry/quarantine policy.
        plan: optional fault plan; its per-rank specs are injected into
            the measured kernels, and ``crash_at`` is interpreted as a
            *measurement index* at this layer.
        report: resilience report to append to (fresh one by default).
        deadline_budget: optional per-measurement watchdog budget in
            seconds.  A rank whose measurement overruns it is quarantined
            with reason ``"hang"`` -- distinguished from ``"crash"``
            (raised) and ``"retries-exhausted"`` (kept failing).
        clock: deadline time source (``None`` = virtual kernel time, the
            right choice for simulated platforms).
    """

    def __init__(
        self,
        platform: Platform,
        unit_flops: "float | Callable[[int], float]",
        precision: Optional[Precision] = None,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        plan: Optional[FaultPlan] = None,
        report: Optional[ResilienceReport] = None,
        deadline_budget: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.platform = platform
        self.precision = precision if precision is not None else Precision()
        self.retry = retry if retry is not None else RetryPolicy()
        self.plan = plan if plan is not None else FaultPlan()
        self.report = report if report is not None else ResilienceReport()
        if not self.report.survivors:
            self.report.survivors = list(range(platform.size))
        self.seed = seed
        self._sim_kernels: List[SimulatedKernel] = []
        self._kernels: List[ComputationKernel] = []
        self._runners: List[ResilientBenchmark] = []
        self._measured = [0] * platform.size
        for rank, device in enumerate(platform.devices):
            sim = SimulatedKernel(
                device, unit_flops, rng=np.random.default_rng([seed, rank])
            )
            self._sim_kernels.append(sim)
            spec = self.plan.for_rank(rank)
            kernel: ComputationKernel = sim
            if not spec.benign:
                # Crashes are scheduled at measurement granularity here, so
                # the kernel wrapper only injects the sub-measurement faults.
                kernel = FaultyKernel(
                    sim,
                    dataclasses.replace(spec, crash_at=None),
                    rng=self.plan.rng(rank),
                    rank=rank,
                )
            self._kernels.append(kernel)
            self._runners.append(
                ResilientBenchmark(
                    kernel, self.precision, self.retry, self.report, rank=rank,
                    deadline_budget=deadline_budget, clock=clock,
                )
            )

    @property
    def size(self) -> int:
        """Number of ranks (= devices on the platform)."""
        return self.platform.size

    @property
    def survivors(self) -> List[int]:
        """Ranks not quarantined, sorted."""
        return sorted(self.report.survivors)

    def is_quarantined(self, rank: int) -> bool:
        """Whether ``rank`` has been quarantined."""
        return self.report.is_quarantined(rank)

    def kernel(self, rank: int) -> SimulatedKernel:
        """The (unwrapped) simulated kernel executed by ``rank``."""
        return self._sim_kernels[rank]

    def complexity(self, d: int) -> float:
        """Complexity of ``d`` computation units (same for every rank)."""
        return self._sim_kernels[0].complexity(d)

    def failures(self, rank: int) -> int:
        """Cumulative failed attempts of ``rank``."""
        return self._runners[rank].failures

    def skip_measurement(self, rank: int) -> None:
        """Advance ``rank``'s measurement index without measuring.

        Called by checkpoint resume for every committed point so the
        remaining measurements draw the same noise/fault sub-streams they
        would have drawn in an uninterrupted run.
        """
        self._measured[rank] += 1

    def _quarantine(self, rank: int, reason: str) -> None:
        self.report.quarantine(
            rank,
            self.platform.devices[rank].name,
            self._runners[rank].failures,
            reason,
        )

    def _measure_one(
        self, rank: int, d: int, active: Sequence[int]
    ) -> Optional[MeasurementPoint]:
        index = self._measured[rank]
        self._measured[rank] += 1
        spec = self.plan.for_rank(rank)
        if spec.crash_at is not None and index >= spec.crash_at:
            self.report.record("crash", rank, f"measurement {index}")
            self._quarantine(rank, "crash")
            return None
        # Fresh per-measurement streams: replay- and resume-stable.
        self._sim_kernels[rank].rng = np.random.default_rng([self.seed, rank, index])
        kernel = self._kernels[rank]
        if isinstance(kernel, FaultyKernel):
            kernel.reseed(self.plan.rng(rank, index))
        kernel.contention_factor = self.platform.group_contention(rank, list(active))
        try:
            point = self._runners[rank].run(d)
        except DeadlineExceeded:
            # The "hang" event itself was recorded by the runner.
            self._quarantine(rank, "hang")
            return None
        except FaultInjectionError as exc:
            if not exc.fatal:
                raise
            self.report.record("crash", rank, f"measurement {index}: {exc}")
            self._quarantine(rank, "crash")
            return None
        except QuarantineError:
            self._quarantine(rank, "retries-exhausted")
            return None
        if self._runners[rank].failures > self.retry.max_failures:
            self._quarantine(rank, "failure-budget")
        return point

    def measure(self, rank: int, d: int) -> Optional[MeasurementPoint]:
        """Measure one rank alone; None if it got quarantined instead.

        Raises:
            QuarantineError: the rank was already quarantined.
        """
        if self.is_quarantined(rank):
            raise QuarantineError(f"rank {rank} is quarantined", rank=rank)
        return self._measure_one(rank, d, [rank])

    def measure_group(
        self,
        sizes: Sequence[Optional[int]],
        contention_ranks: Optional[Sequence[int]] = None,
    ) -> List[Optional[MeasurementPoint]]:
        """Measure all requested ranks; quarantined ranks yield None.

        ``sizes[rank]`` is the problem size for that rank, or None / 0 to
        leave the rank idle.  Contention is charged for the whole group
        that is simultaneously active (``contention_ranks`` overrides the
        group, letting checkpoint resumes reproduce the contention of the
        original full group).  Unlike
        :meth:`PlatformBenchmark.measure_group`, ranks are isolated from
        each other's *failures*: one rank's faults cannot poison another
        rank's statistics.
        """
        if len(sizes) != self.size:
            raise BenchmarkError(
                f"got {len(sizes)} sizes for a platform of {self.size} ranks"
            )
        active = [
            r for r, d in enumerate(sizes)
            if d is not None and d > 0 and not self.is_quarantined(r)
        ]
        group = list(contention_ranks) if contention_ranks is not None else active
        points: List[Optional[MeasurementPoint]] = [None] * self.size
        for r in active:
            points[r] = self._measure_one(r, int(sizes[r]), group)  # type: ignore[arg-type]
        return points
