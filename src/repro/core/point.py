"""Measurement points -- the paper's ``fupermod_point``.

A point is the outcome of benchmarking a computation kernel at one problem
size: the size itself (in computation units), the mean execution time, how
many repetitions the statistically controlled measurement actually took, and
the confidence interval it achieved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class MeasurementPoint:
    """Result of measuring a kernel at problem size ``d``.

    Attributes:
        d: problem size in computation units.
        t: mean execution time in seconds.
        reps: repetitions the measurement took.
        ci: half-width of the confidence interval of ``t`` (seconds).
    """

    d: int
    t: float
    reps: int = 1
    ci: float = 0.0

    def __post_init__(self) -> None:
        if self.d < 0:
            raise BenchmarkError(f"problem size must be non-negative, got {self.d}")
        if not math.isfinite(self.t):
            raise BenchmarkError(f"time must be finite, got {self.t}")
        if self.t < 0.0:
            raise BenchmarkError(f"time must be non-negative, got {self.t}")
        if self.reps < 1:
            raise BenchmarkError(f"reps must be >= 1, got {self.reps}")
        if not math.isfinite(self.ci):
            raise BenchmarkError(f"confidence interval must be finite, got {self.ci}")
        if self.ci < 0.0:
            raise BenchmarkError(f"confidence interval must be non-negative, got {self.ci}")

    @property
    def speed(self) -> float:
        """Speed in computation units per second (``d / t``)."""
        if self.t == 0.0:
            return float("inf")
        return self.d / self.t

    @property
    def benchmark_cost(self) -> float:
        """Total kernel-seconds this measurement consumed (``t * reps``).

        Used by the cost accounting of model construction (ablation A2 in
        DESIGN.md): building a full model costs the sum of this quantity
        over all its points.
        """
        return self.t * self.reps

    def speed_flops(self, complexity_flops: float) -> float:
        """Speed in FLOP/s given the complexity of ``d`` units."""
        if self.t == 0.0:
            return float("inf")
        return complexity_flops / self.t
