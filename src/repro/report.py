"""Human-readable reports on platforms, models and distributions.

Operators of the original FuPerMod inspected their machines through the
data files the tools wrote.  This module renders the same information as
markdown tables: what the platform looks like, what the models think each
process can do, and how a distribution spreads the work.  The CLI's
``report`` command and the examples print these.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.models.base import PerformanceModel
from repro.core.partition.dist import Distribution
from repro.errors import FuPerModError
from repro.platform.cluster import Platform


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return "\n".join(lines)


def platform_report(platform: Platform) -> str:
    """Markdown summary of a platform's nodes and devices."""
    rows: List[List[str]] = []
    for node in platform.nodes:
        for device in node.devices:
            rank = platform.rank_of(device)
            limit = (
                str(int(device.memory_limit_units))
                if device.memory_limit_units is not None
                else "-"
            )
            contention = f"{node.contention_factor(len(node)):.2f}"
            rows.append(
                [str(rank), node.name, device.name, device.kind.value, limit,
                 contention]
            )
    header = ["rank", "node", "device", "kind", "mem limit (units)",
              "contention (full node)"]
    return (
        f"### Platform: {len(platform.nodes)} nodes, {platform.size} processes\n\n"
        + _table(header, rows)
    )


def models_report(
    platform: Platform,
    models: Sequence[PerformanceModel],
    sizes: Sequence[int],
    complexity: Optional[Callable[[float], float]] = None,
) -> str:
    """Markdown table of modelled speeds at the given problem sizes.

    Speeds are in computation units per second, or GFLOPS when a kernel
    ``complexity`` function is supplied.
    """
    if len(models) != platform.size:
        raise FuPerModError(
            f"{len(models)} models for a platform of {platform.size} ranks"
        )
    if not sizes:
        raise FuPerModError("need at least one size to report")
    unit = "GFLOPS" if complexity is not None else "units/s"
    header = ["rank", "device", "points"] + [f"{d} u" for d in sizes]
    rows: List[List[str]] = []
    for rank, model in enumerate(models):
        cells = [str(rank), platform.devices[rank].name, str(model.count)]
        for d in sizes:
            if complexity is not None:
                value = model.speed_flops(d, complexity) / 1e9
            else:
                value = model.speed(d)
            cells.append(f"{value:.3g}")
        rows.append(cells)
    return f"### Modelled speeds ({unit})\n\n" + _table(header, rows)


def distribution_report(
    platform: Platform,
    dist: Distribution,
    title: str = "Distribution",
) -> str:
    """Markdown table of a workload distribution."""
    if dist.size != platform.size:
        raise FuPerModError(
            f"distribution of {dist.size} parts for a platform of "
            f"{platform.size} ranks"
        )
    header = ["rank", "device", "units", "share", "predicted time (s)"]
    total = max(dist.total, 1)
    rows: List[List[str]] = []
    for rank, part in enumerate(dist.parts):
        rows.append(
            [
                str(rank),
                platform.devices[rank].name,
                str(part.d),
                f"{part.d / total * 100.0:.1f}%",
                f"{part.t:.6f}",
            ]
        )
    footer = (
        f"\n\ntotal: {dist.total} units, predicted makespan "
        f"{dist.predicted_makespan:.6f}s, predicted imbalance "
        f"{dist.predicted_imbalance * 100.0:.2f}%"
    )
    return f"### {title}\n\n" + _table(header, rows) + footer
