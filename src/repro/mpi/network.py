"""Hockney-model links and platform-aware networks.

The Hockney model prices a message of ``n`` bytes at ``alpha + n / beta``
(latency plus inverse bandwidth).  It is the standard first-order model for
MPI point-to-point costs and is what the collective schedules in
:mod:`repro.mpi.comm` build on.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CommunicationError
from repro.platform.cluster import Platform


class LinkModel:
    """A Hockney (alpha-beta) communication link.

    Args:
        latency: per-message latency ``alpha`` in seconds.
        bandwidth: sustained bandwidth ``beta`` in bytes per second.
    """

    def __init__(self, latency: float, bandwidth: float) -> None:
        if latency < 0.0:
            raise CommunicationError(f"latency must be non-negative, got {latency}")
        if bandwidth <= 0.0:
            raise CommunicationError(f"bandwidth must be positive, got {bandwidth}")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)

    def time(self, nbytes: float) -> float:
        """Transfer time of a message of ``nbytes`` bytes."""
        if nbytes < 0:
            raise CommunicationError(f"message size must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkModel(latency={self.latency:.3g}, bandwidth={self.bandwidth:.3g})"


#: Gigabit-Ethernet-like default interconnect.
DEFAULT_INTER_NODE = LinkModel(latency=5.0e-5, bandwidth=1.25e8)
#: Shared-memory-like intra-node transfer.
DEFAULT_INTRA_NODE = LinkModel(latency=2.0e-6, bandwidth=4.0e9)


class Network:
    """Pairwise link selection, optionally platform-aware.

    With a platform attached, messages between ranks on the same node use
    the (faster) intra-node link; everything else uses the inter-node link.
    Without a platform, all pairs use the inter-node link.
    """

    def __init__(
        self,
        inter_node: Optional[LinkModel] = None,
        intra_node: Optional[LinkModel] = None,
        platform: Optional[Platform] = None,
    ) -> None:
        self.inter_node = inter_node if inter_node is not None else DEFAULT_INTER_NODE
        self.intra_node = intra_node if intra_node is not None else DEFAULT_INTRA_NODE
        self.platform = platform

    def link(self, src: int, dst: int) -> LinkModel:
        """The link used between ranks ``src`` and ``dst``."""
        if src == dst:
            # Self-messages are free of wire costs; model as intra-node.
            return self.intra_node
        if self.platform is not None:
            node_src = self.platform.node_of(self.platform.device(src))
            node_dst = self.platform.node_of(self.platform.device(dst))
            if node_src.name == node_dst.name:
                return self.intra_node
        return self.inter_node

    def time(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer time between two ranks."""
        if src == dst:
            return 0.0
        return self.link(src, dst).time(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(inter={self.inter_node!r}, intra={self.intra_node!r})"
