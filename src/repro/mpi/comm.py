"""The simulated communicator: per-rank clocks plus collective schedules.

All operations are *time* operations; application data lives in ordinary
Python objects and never needs to be serialised.  The schedules are the
textbook ones MPI implementations use at these scales:

* broadcast -- binomial tree, ``ceil(log2 p)`` rounds;
* allgather(v) -- ring, ``p - 1`` steps, each step priced at the largest
  chunk travelling in that step;
* scatter(v)/gather(v) -- linear from/to the root;
* point-to-point -- direct Hockney cost.

Blocking semantics are preserved: a receiver cannot finish before the data
has been produced, and collectives act as synchronisation points for the
participating ranks.

Argument validation is strict, because a simulated communicator has no MPI
runtime underneath it to crash loudly: invalid ranks, empty or duplicate
rank groups, negative or non-finite message sizes, and zero-size
``exchange``/``allgatherv``/``scatterv``/``gatherv`` operations (a
collective that moves no data is a caller bug, not a no-op) all raise
:class:`~repro.errors.CommunicationError`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import CommunicationError
from repro.mpi.network import Network
from repro.platform.clock import VirtualClock


class SimCommunicator:
    """A group of ranks with virtual clocks and an interconnect.

    Args:
        size: number of ranks.
        network: pairwise cost model (defaults to a uniform
            gigabit-Ethernet-like :class:`Network`).
    """

    def __init__(self, size: int, network: Optional[Network] = None) -> None:
        if size < 1:
            raise CommunicationError(f"communicator size must be >= 1, got {size}")
        self._size = size
        self.network = network if network is not None else Network()
        self._clocks: List[VirtualClock] = [VirtualClock() for _ in range(size)]

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self._size

    def time(self, rank: int) -> float:
        """Current virtual time of ``rank``."""
        self._check_rank(rank)
        return self._clocks[rank].now

    def times(self) -> List[float]:
        """Virtual times of all ranks."""
        return [c.now for c in self._clocks]

    def max_time(self) -> float:
        """Latest virtual time across ranks (the makespan so far)."""
        return max(c.now for c in self._clocks)

    def reset(self) -> None:
        """Reset all clocks to zero (for a fresh experiment)."""
        for c in self._clocks:
            c.reset()

    def compute(self, rank: int, seconds: float) -> float:
        """Rank performs local computation for ``seconds``."""
        self._check_rank(rank)
        if seconds < 0.0:
            raise CommunicationError(f"compute time must be non-negative, got {seconds}")
        return self._clocks[rank].advance(seconds)

    def barrier(self, ranks: Optional[Sequence[int]] = None) -> float:
        """Synchronise ``ranks`` (all by default): clocks jump to the max."""
        group = self._group(ranks)
        t = max(self._clocks[r].now for r in group)
        for r in group:
            self._clocks[r].advance_to(t)
        return t

    def send(self, src: int, dst: int, nbytes: float) -> float:
        """Blocking point-to-point message from ``src`` to ``dst``.

        The sender is occupied for the wire time; the receiver finishes at
        ``max(receiver clock, sender clock) + wire time``.  Returns the
        receiver's completion time.
        """
        self._check_rank(src)
        self._check_rank(dst)
        self._check_nbytes("send", [nbytes])
        if src == dst:
            return self._clocks[src].now
        wire = self.network.time(src, dst, nbytes)
        start = max(self._clocks[src].now, self._clocks[dst].now)
        done = start + wire
        self._clocks[src].advance_to(done)
        self._clocks[dst].advance_to(done)
        return done

    def exchange(
        self,
        a: int,
        b: int,
        nbytes_ab: float,
        nbytes_ba: Optional[float] = None,
    ) -> float:
        """Simultaneous bidirectional exchange (MPI_Sendrecv on both sides).

        Links are full duplex: the exchange costs the *larger* of the two
        one-way times, both ranks finish together.  This is the halo-swap
        primitive of stencil applications.
        """
        self._check_rank(a)
        self._check_rank(b)
        if nbytes_ba is None:
            nbytes_ba = nbytes_ab
        self._check_nbytes("exchange", [nbytes_ab, nbytes_ba], total_positive=True)
        if a == b:
            return self._clocks[a].now
        wire = max(
            self.network.time(a, b, nbytes_ab),
            self.network.time(b, a, nbytes_ba),
        )
        done = max(self._clocks[a].now, self._clocks[b].now) + wire
        self._clocks[a].advance_to(done)
        self._clocks[b].advance_to(done)
        return done

    def allreduce(
        self,
        nbytes: float,
        ranks: Optional[Sequence[int]] = None,
    ) -> float:
        """Recursive-doubling allreduce of ``nbytes`` per rank.

        ``ceil(log2 p)`` rounds; each round is one bidirectional exchange
        priced at the slowest participating link.  All participants finish
        together (an allreduce is a synchronisation).
        """
        group = self._group(ranks)
        self._check_nbytes("allreduce", [nbytes])
        if len(group) == 1:
            return self._clocks[group[0]].now
        start = max(self._clocks[r].now for r in group)
        rounds = int(math.ceil(math.log2(len(group))))
        worst = 0.0
        for i in group:
            for j in group:
                if i != j:
                    worst = max(worst, self.network.time(i, j, nbytes))
        finish = start + rounds * worst
        for r in group:
            self._clocks[r].advance_to(finish)
        return finish

    def bcast(
        self,
        root: int,
        nbytes: float,
        ranks: Optional[Sequence[int]] = None,
    ) -> float:
        """Binomial-tree broadcast of ``nbytes`` from ``root`` to ``ranks``.

        Rank ``k`` (in position order after the root) receives after
        ``floor(log2 k) + 1`` rounds; each round costs one message on the
        link between the communicating pair.  Participants synchronise at
        the start (a broadcast cannot begin before the root and the
        receivers have posted it).  Returns the completion time of the
        slowest participant.
        """
        group = self._group(ranks)
        if root not in group:
            raise CommunicationError(f"bcast root {root} not in group {group}")
        self._check_nbytes("bcast", [nbytes])
        if len(group) == 1:
            return self._clocks[root].now
        start = max(self._clocks[r].now for r in group)
        ordered = [root] + [r for r in group if r != root]
        finish = start
        for pos, r in enumerate(ordered):
            if pos == 0:
                continue
            rounds = int(math.floor(math.log2(pos))) + 1
            # Parent in the binomial tree: clear the highest set bit.
            parent = ordered[pos - (1 << (rounds - 1))]
            t = start + rounds * self.network.time(parent, r, nbytes)
            self._clocks[r].advance_to(t)
            finish = max(finish, t)
        rounds_total = int(math.ceil(math.log2(len(group))))
        root_done = start + rounds_total * self.network.time(root, ordered[1], nbytes)
        self._clocks[root].advance_to(root_done)
        return max(finish, root_done)

    def allgatherv(
        self,
        nbytes_per_rank: Sequence[float],
        ranks: Optional[Sequence[int]] = None,
    ) -> float:
        """Ring allgather of variable-size contributions.

        ``p - 1`` steps; step cost is the slowest chunk moving in that step
        over the slowest participating link.  All participants finish
        together (the ring is a synchronisation).  Returns the completion
        time.
        """
        group = self._group(ranks)
        if len(nbytes_per_rank) != len(group):
            raise CommunicationError(
                f"allgatherv: {len(nbytes_per_rank)} sizes for {len(group)} ranks"
            )
        self._check_nbytes("allgatherv", nbytes_per_rank, total_positive=True)
        if len(group) == 1:
            return self._clocks[group[0]].now
        start = max(self._clocks[r].now for r in group)
        p = len(group)
        total = start
        for step in range(p - 1):
            # In step s, rank at position i forwards the chunk originating
            # at position (i - s) mod p to position (i + 1) mod p.
            step_cost = 0.0
            for i in range(p):
                origin = (i - step) % p
                src = group[i]
                dst = group[(i + 1) % p]
                step_cost = max(
                    step_cost, self.network.time(src, dst, nbytes_per_rank[origin])
                )
            total += step_cost
        for r in group:
            self._clocks[r].advance_to(total)
        return total

    def scatterv(
        self,
        root: int,
        nbytes_per_rank: Sequence[float],
        ranks: Optional[Sequence[int]] = None,
    ) -> float:
        """Linear scatter of variable-size chunks from the root."""
        group = self._group(ranks)
        if root not in group:
            raise CommunicationError(f"scatterv root {root} not in group {group}")
        if len(nbytes_per_rank) != len(group):
            raise CommunicationError(
                f"scatterv: {len(nbytes_per_rank)} sizes for {len(group)} ranks"
            )
        self._check_nbytes("scatterv", nbytes_per_rank, total_positive=True)
        start = max(self._clocks[root].now, self._clocks[root].now)
        t = start
        finish = start
        for i, r in enumerate(group):
            if r == root:
                continue
            t += self.network.time(root, r, nbytes_per_rank[i])
            done = max(t, self._clocks[r].now)
            self._clocks[r].advance_to(done)
            finish = max(finish, done)
        self._clocks[root].advance_to(t)
        return max(finish, t)

    def gatherv(
        self,
        root: int,
        nbytes_per_rank: Sequence[float],
        ranks: Optional[Sequence[int]] = None,
    ) -> float:
        """Linear gather of variable-size chunks to the root."""
        group = self._group(ranks)
        if root not in group:
            raise CommunicationError(f"gatherv root {root} not in group {group}")
        if len(nbytes_per_rank) != len(group):
            raise CommunicationError(
                f"gatherv: {len(nbytes_per_rank)} sizes for {len(group)} ranks"
            )
        self._check_nbytes("gatherv", nbytes_per_rank, total_positive=True)
        t = self._clocks[root].now
        for i, r in enumerate(group):
            if r == root:
                continue
            arrive = max(self._clocks[r].now, t) + self.network.time(r, root, nbytes_per_rank[i])
            t = max(t, arrive)
            self._clocks[r].advance_to(arrive)
        self._clocks[root].advance_to(t)
        return t

    def _group(self, ranks: Optional[Sequence[int]]) -> List[int]:
        if ranks is None:
            return list(range(self._size))
        group = list(ranks)
        if not group:
            raise CommunicationError("empty rank group")
        if len(set(group)) != len(group):
            raise CommunicationError(f"duplicate ranks in group {group}")
        for r in group:
            self._check_rank(r)
        return group

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._size:
            raise CommunicationError(f"rank {rank} out of range 0..{self._size - 1}")

    @staticmethod
    def _check_nbytes(op: str, sizes: Sequence[float], total_positive: bool = False) -> None:
        for nbytes in sizes:
            if not math.isfinite(nbytes) or nbytes < 0.0:
                raise CommunicationError(
                    f"{op}: message size must be finite and non-negative, got {nbytes}"
                )
        if total_positive and sum(sizes) <= 0.0:
            raise CommunicationError(f"{op}: zero-size operation (no data to move)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimCommunicator(size={self._size})"
