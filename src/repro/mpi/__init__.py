"""In-process message-passing simulator.

FuPerMod is an MPI library; its benchmark runner synchronises processes that
share resources, and its example applications (matrix multiplication, the
Jacobi method) broadcast pivot rows/columns and allgather solution vectors.
Offline we replace MPI with a simulator that models *time*, not wires:

* every rank owns a :class:`~repro.platform.VirtualClock`;
* point-to-point and collective operations advance those clocks according
  to a Hockney cost model (``alpha + nbytes / beta``) with tree/ring
  schedules (:class:`SimCommunicator`);
* intra-node traffic can use a faster link than inter-node traffic
  (:class:`Network`).

Applications are written in coordinator style: a single Python loop plays
all ranks, calling :meth:`SimCommunicator.compute` for local work and the
collective methods for communication.  The resulting per-rank virtual times
are what the experiments report.
"""

from repro.mpi.comm import SimCommunicator
from repro.mpi.fit import LinkFit, fit_hockney, fit_link, measure_pingpong
from repro.mpi.network import LinkModel, Network

__all__ = [
    "LinkFit",
    "LinkModel",
    "Network",
    "SimCommunicator",
    "fit_hockney",
    "fit_link",
    "measure_pingpong",
]
