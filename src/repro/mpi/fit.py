"""Measuring links and fitting Hockney parameters.

The application simulations price communication with the Hockney model
``t = alpha + n / beta``.  On a real platform those parameters come from
measurement -- ping-pong benchmarks over a range of message sizes, followed
by a least-squares fit.  This module provides both halves against the
simulated network, with multiplicative timing noise, so the whole
"benchmark the platform, then predict with the model" workflow is
exercised for communication exactly as it is for computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.network import LinkModel, Network


@dataclass(frozen=True)
class LinkFit:
    """Result of :func:`fit_hockney`.

    Attributes:
        link: the fitted :class:`LinkModel`.
        residual: root-mean-square relative error of the fit over the
            samples it was computed from.
    """

    link: LinkModel
    residual: float


def measure_pingpong(
    network: Network,
    src: int,
    dst: int,
    sizes: Sequence[int],
    reps: int = 5,
    noise_sigma: float = 0.02,
    seed: int = 0,
) -> List[Tuple[int, float]]:
    """Ping-pong measurements of one link over several message sizes.

    Returns ``(nbytes, mean_one_way_time)`` samples.  The round trip is
    timed (as real ping-pong benchmarks do) and halved; multiplicative
    Gaussian noise models timer jitter.
    """
    if not sizes:
        raise CommunicationError("need at least one message size")
    if any(n <= 0 for n in sizes):
        raise CommunicationError(f"message sizes must be positive: {sizes}")
    if reps < 1:
        raise CommunicationError(f"reps must be >= 1, got {reps}")
    rng = np.random.default_rng(seed)
    samples: List[Tuple[int, float]] = []
    for n in sizes:
        one_way = network.time(src, dst, n)
        total = 0.0
        for _ in range(reps):
            jitter = 1.0 + float(rng.normal(0.0, noise_sigma)) if noise_sigma else 1.0
            round_trip = 2.0 * one_way * max(jitter, 0.05)
            total += round_trip / 2.0
        samples.append((n, total / reps))
    return samples


def fit_hockney(samples: Sequence[Tuple[int, float]]) -> LinkFit:
    """Least-squares fit of ``t = alpha + n / beta`` to measured samples.

    Args:
        samples: ``(nbytes, seconds)`` pairs covering at least two distinct
            message sizes.

    Returns:
        A :class:`LinkFit` whose link has non-negative latency and positive
        bandwidth.

    Raises:
        CommunicationError: with degenerate input (fewer than two distinct
            sizes, or a non-increasing fit that implies infinite/negative
            bandwidth).
    """
    if len({n for n, _t in samples}) < 2:
        raise CommunicationError(
            "fit_hockney needs at least two distinct message sizes"
        )
    n = np.asarray([float(s[0]) for s in samples])
    t = np.asarray([float(s[1]) for s in samples])
    design = np.column_stack([np.ones_like(n), n])
    (alpha, inv_beta), *_ = np.linalg.lstsq(design, t, rcond=None)
    if inv_beta <= 0.0:
        raise CommunicationError(
            f"fit implies non-positive inverse bandwidth {inv_beta}; "
            "samples do not look like a Hockney link"
        )
    alpha = max(float(alpha), 0.0)
    link = LinkModel(latency=alpha, bandwidth=1.0 / float(inv_beta))
    predicted = alpha + n * inv_beta
    rel = (predicted - t) / np.maximum(t, 1e-30)
    residual = float(np.sqrt(np.mean(rel * rel)))
    return LinkFit(link=link, residual=residual)


def fit_link(
    network: Network,
    src: int,
    dst: int,
    sizes: Sequence[int],
    reps: int = 5,
    noise_sigma: float = 0.02,
    seed: int = 0,
) -> LinkFit:
    """Measure a link and fit its Hockney parameters in one call."""
    samples = measure_pingpong(network, src, dst, sizes, reps, noise_sigma, seed)
    return fit_hockney(samples)
