"""Bridge from performance models to graph partitioning.

Section 2 of the paper surveys graph-partitioning libraries (ParMETIS,
SCOTCH, Zoltan, ...) that accept *weights of the target subdomains* to
account for platform heterogeneity -- and observes that none of them helps
the programmer find weights that actually balance the load.  FuPerMod's
model-based ratios are exactly those weights.

This package closes the loop:

* :func:`partition_weights` turns performance models into normalised
  subdomain weights via a model-based partitioning algorithm;
* :func:`partition_graph_weighted` is a compact ParMETIS-style weighted
  graph partitioner (multi-source region growing + boundary refinement,
  built on networkx) that consumes those weights for mesh applications;
* :func:`edge_cut` / :func:`weight_balance` are the standard quality
  metrics.
"""

from repro.graphs.mesh import (
    edge_cut,
    grid_graph,
    partition_graph_weighted,
    weight_balance,
)
from repro.graphs.weights import partition_weights

__all__ = [
    "edge_cut",
    "grid_graph",
    "partition_graph_weighted",
    "partition_weights",
    "weight_balance",
]
