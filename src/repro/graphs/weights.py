"""Subdomain weights from computation performance models.

Graph partitioners balance vertex load against *relative weights* of the
target subdomains.  The right weights for a heterogeneous platform are not
the devices' peak speeds but the model-based shares at the problem size at
hand -- a device about to hit its memory cliff must receive a smaller
weight than its small-size speed suggests.  This function therefore runs a
model-based partitioning algorithm at the actual total size and normalises
its integer shares.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.models.base import PerformanceModel
from repro.core.partition.dynamic import PartitionFunction
from repro.core.partition.geometric import partition_geometric
from repro.errors import PartitionError


def partition_weights(
    total: int,
    models: Sequence[PerformanceModel],
    algorithm: Optional[PartitionFunction] = None,
) -> List[float]:
    """Normalised subdomain weights for a problem of ``total`` units.

    Args:
        total: the problem size the mesh application will run at (vertex
            count, in computation units).
        models: one performance model per process.
        algorithm: the model-based partitioning algorithm to derive shares
            from (geometric by default).

    Returns:
        Weights summing to 1.0, one per process, in rank order.
    """
    if total <= 0:
        raise PartitionError(f"total must be positive, got {total}")
    algo = algorithm if algorithm is not None else partition_geometric
    dist = algo(total, models)
    if dist.total != total:
        raise PartitionError(
            f"partitioning algorithm returned total {dist.total}, expected {total}"
        )
    return [part.d / total for part in dist.parts]
