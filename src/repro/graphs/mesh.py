"""A compact weighted graph partitioner for mesh applications.

A ParMETIS-style pipeline in miniature, sufficient to demonstrate (and
test) FuPerMod weights driving a mesh partition:

1. **seeding** -- pick one seed vertex per part, spread apart by repeated
   farthest-first BFS;
2. **region growing** -- multi-source BFS where, at every step, the part
   with the largest remaining *weighted deficit* claims the next frontier
   vertex, so part sizes track the requested weights as they grow;
3. **boundary refinement** -- Kernighan–Lin-flavoured sweeps: boundary
   vertices move to a neighbouring part when that reduces the edge cut
   without pushing either part outside its weight tolerance.

Quality is measured by :func:`edge_cut` (communication volume proxy) and
:func:`weight_balance` (worst relative deviation from the weight targets).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Sequence

import networkx as nx

from repro.errors import PartitionError


def grid_graph(width: int, height: int) -> "nx.Graph":
    """A 2D grid mesh with integer-labelled vertices (row-major order)."""
    if width < 1 or height < 1:
        raise PartitionError(f"grid must be at least 1x1, got {width}x{height}")
    graph = nx.grid_2d_graph(height, width)
    mapping = {(r, c): r * width + c for r, c in graph.nodes}
    return nx.relabel_nodes(graph, mapping)


def _bfs_farthest(graph: "nx.Graph", source: Hashable) -> Hashable:
    """The vertex farthest from ``source`` (ties broken by label order)."""
    dist = {source: 0}
    queue = deque([source])
    farthest = source
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                if (dist[v], str(v)) > (dist[farthest], str(farthest)):
                    farthest = v
                queue.append(v)
    return farthest


def _pick_seeds(graph: "nx.Graph", parts: int) -> List[Hashable]:
    """Farthest-first seed selection."""
    nodes = sorted(graph.nodes, key=str)
    seeds = [_bfs_farthest(graph, nodes[0])]
    while len(seeds) < parts:
        # Multi-source BFS from all current seeds; take the farthest vertex.
        dist: Dict[Hashable, int] = {s: 0 for s in seeds}
        queue = deque(seeds)
        farthest = seeds[0]
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    if (dist[v], str(v)) > (dist.get(farthest, 0), str(farthest)):
                        farthest = v
                    queue.append(v)
        if farthest in seeds:
            # Graph smaller than requested parts; reuse arbitrary nodes.
            spare = [n for n in nodes if n not in seeds]
            if not spare:
                raise PartitionError(
                    f"cannot place {parts} seeds on {len(nodes)} vertices"
                )
            farthest = spare[0]
        seeds.append(farthest)
    return seeds


def partition_graph_weighted(
    graph: "nx.Graph",
    weights: Sequence[float],
    refinement_sweeps: int = 4,
    tolerance: float = 0.05,
) -> Dict[Hashable, int]:
    """Partition a graph into weighted parts.

    Args:
        graph: connected undirected graph (a mesh).
        weights: relative part weights (any positive scale); part ``i``
            targets ``weights[i] / sum(weights)`` of the vertices.
        refinement_sweeps: boundary-refinement passes after growing.
        tolerance: allowed relative overshoot of a part's target during
            refinement moves.

    Returns:
        Mapping vertex -> part index.
    """
    if not weights:
        raise PartitionError("need at least one weight")
    if any(w < 0 for w in weights):
        raise PartitionError(f"weights must be non-negative: {weights}")
    total_w = float(sum(weights))
    if total_w <= 0:
        raise PartitionError("at least one weight must be positive")
    n = graph.number_of_nodes()
    if n == 0:
        raise PartitionError("graph has no vertices")
    parts = len(weights)
    targets = [w / total_w * n for w in weights]

    positive = [i for i, w in enumerate(weights) if w > 0]
    if len(positive) > n:
        raise PartitionError(f"cannot split {n} vertices into {len(positive)} parts")

    seeds = _pick_seeds(graph, len(positive))
    assignment: Dict[Hashable, int] = {}
    frontiers: Dict[int, deque] = {}
    counts = [0] * parts
    for part, seed in zip(positive, seeds):
        assignment[seed] = part
        counts[part] += 1
        frontiers[part] = deque(
            sorted((v for v in graph.neighbors(seed)), key=str)
        )

    # Region growing: the part with the largest weighted deficit claims the
    # next unassigned vertex from its frontier.
    assigned = len(positive)
    while assigned < n:
        candidates = [
            p for p in positive if frontiers[p]
        ]
        grew = False
        for part in sorted(
            candidates, key=lambda p: counts[p] / max(targets[p], 1e-12)
        ):
            frontier = frontiers[part]
            while frontier:
                v = frontier.popleft()
                if v in assignment:
                    continue
                assignment[v] = part
                counts[part] += 1
                assigned += 1
                frontier.extend(
                    sorted((u for u in graph.neighbors(v) if u not in assignment),
                           key=str)
                )
                grew = True
                break
            if grew:
                break
        if not grew:
            # Disconnected remainder: hand it to the most deficient part.
            leftovers = [v for v in sorted(graph.nodes, key=str) if v not in assignment]
            for v in leftovers:
                part = min(positive, key=lambda p: counts[p] / max(targets[p], 1e-12))
                assignment[v] = part
                counts[part] += 1
                assigned += 1

    _refine(graph, assignment, counts, targets, refinement_sweeps, tolerance)
    return assignment


def _refine(
    graph: "nx.Graph",
    assignment: Dict[Hashable, int],
    counts: List[int],
    targets: List[float],
    sweeps: int,
    tolerance: float,
) -> None:
    """Boundary moves that reduce the edge cut within weight tolerance."""
    for _ in range(sweeps):
        moved = False
        for v in sorted(graph.nodes, key=str):
            home = assignment[v]
            # Connectivity of v to each neighbouring part.
            link: Dict[int, int] = {}
            for u in graph.neighbors(v):
                link[assignment[u]] = link.get(assignment[u], 0) + 1
            best_part, best_gain = home, 0
            for part, edges in link.items():
                if part == home:
                    continue
                gain = edges - link.get(home, 0)
                over = (counts[part] + 1) > targets[part] * (1.0 + tolerance) + 1
                under = (counts[home] - 1) < targets[home] * (1.0 - tolerance) - 1
                if gain > best_gain and not over and not under:
                    best_part, best_gain = part, gain
            if best_part != home:
                assignment[v] = best_part
                counts[home] -= 1
                counts[best_part] += 1
                moved = True
        if not moved:
            break


def edge_cut(graph: "nx.Graph", assignment: Dict[Hashable, int]) -> int:
    """Number of edges crossing part boundaries (communication proxy)."""
    return sum(
        1 for u, v in graph.edges if assignment[u] != assignment[v]
    )


def weight_balance(
    assignment: Dict[Hashable, int], weights: Sequence[float]
) -> float:
    """Worst relative deviation of achieved part sizes from their targets.

    0.0 is a perfect match; 0.1 means some part is 10% off its target.
    Parts with zero weight are expected to be empty and contribute their
    achieved share directly.
    """
    n = len(assignment)
    total_w = float(sum(weights))
    counts = [0] * len(weights)
    for part in assignment.values():
        counts[part] += 1
    worst = 0.0
    for count, w in zip(counts, weights):
        target = w / total_w * n
        if target == 0:
            worst = max(worst, count / n)
        else:
            worst = max(worst, abs(count - target) / target)
    return worst
