"""FuPerMod reproduction: model-based data partitioning for heterogeneous HPC.

A Python reproduction of *FuPerMod: A Framework for Optimal Data
Partitioning for Parallel Scientific Applications on Dedicated Heterogeneous
HPC Platforms* (Clarke, Zhong, Rychkov, Lastovetsky -- PaCT 2013).

Quickstart::

    from repro import (
        PlatformBenchmark, PiecewiseModel, build_full_models,
        partition_geometric,
    )
    from repro.platform.presets import heterogeneous_cluster

    platform = heterogeneous_cluster()
    bench = PlatformBenchmark(platform, unit_flops=2.0 * 32**3)
    models, cost = build_full_models(
        bench, PiecewiseModel, sizes=[64, 256, 1024, 4096]
    )
    dist = partition_geometric(100_000, models)
    print(dist.sizes)          # units per process, balanced by the FPMs

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper's
figures reproduced by the benchmark harness.
"""

from repro.core import (
    AdaptiveBuildResult,
    AkimaModel,
    Benchmark,
    CallableKernel,
    ComputationKernel,
    ConstantModel,
    ConvergenceCert,
    DegradedBuildResult,
    Distribution,
    DynamicPartitioner,
    KernelContext,
    LoadBalancer,
    MeasurementPoint,
    Part,
    PerformanceModel,
    PiecewiseModel,
    PlatformBenchmark,
    Precision,
    ResilientBenchmark,
    ResilientBuildResult,
    ResilientPlatformBenchmark,
    RetryPolicy,
    SimulatedKernel,
    build_adaptive_model,
    build_degraded_models,
    build_full_models,
    build_resilient_models,
    leave_one_out_error,
    partition_constant,
    partition_geometric,
    partition_numerical,
    partition_survivors,
    redistribute_to_survivors,
    select_model,
)
from repro.degrade import (
    DegradationPolicy,
    DegradationReport,
    Watchdog,
)
from repro.errors import ConvergenceError, DeadlineExceeded, FuPerModError
from repro.faults import (
    FaultPlan,
    RankFaults,
    ResilienceReport,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveBuildResult",
    "AkimaModel",
    "Benchmark",
    "CallableKernel",
    "ComputationKernel",
    "ConstantModel",
    "ConvergenceCert",
    "ConvergenceError",
    "DeadlineExceeded",
    "DegradationPolicy",
    "DegradationReport",
    "DegradedBuildResult",
    "Distribution",
    "DynamicPartitioner",
    "FaultPlan",
    "FuPerModError",
    "KernelContext",
    "LoadBalancer",
    "MeasurementPoint",
    "Part",
    "PerformanceModel",
    "PiecewiseModel",
    "PlatformBenchmark",
    "Precision",
    "RankFaults",
    "ResilienceReport",
    "ResilientBenchmark",
    "ResilientBuildResult",
    "ResilientPlatformBenchmark",
    "RetryPolicy",
    "SimulatedKernel",
    "Watchdog",
    "__version__",
    "build_adaptive_model",
    "build_degraded_models",
    "build_full_models",
    "build_resilient_models",
    "leave_one_out_error",
    "partition_constant",
    "partition_geometric",
    "partition_numerical",
    "partition_survivors",
    "redistribute_to_survivors",
    "select_model",
]
