"""Command-line tools, mirroring FuPerMod's ``builder`` and ``partitioner``.

* ``fupermod build`` -- benchmark a preset platform over a range of problem
  sizes and write per-process point files (the expensive, once-per-platform
  step of the static workflow);
* ``fupermod partition`` -- read point files back, construct models and run
  a partitioning algorithm for a given total problem size;
* ``fupermod demo-jacobi`` -- dynamic load balancing of the Jacobi method
  (the Fig. 4 scenario), printed as a per-iteration table;
* ``fupermod demo-matmul`` -- heterogeneous matrix multiplication under
  different partitioning strategies;
* ``fupermod demo-mesh`` -- FPM-derived weights driving the mesh (graph)
  partitioner;
* ``fupermod adaptive-build`` -- adaptive model construction to a target
  accuracy for one process of a preset platform;
* ``fupermod list`` -- available models, partitioners and platform presets.

``fupermod partition`` accepts ``--limits`` (comma-separated unit caps,
``none`` = unlimited) to respect device memory capacities.

``fupermod build`` accepts ``--faults plan.json`` (a saved
:class:`~repro.faults.FaultPlan`) to run the sweep through the resilient
benchmark -- crashed or persistently failing ranks are quarantined and the
survivors finish -- and ``--resume`` to continue an interrupted sweep from
the journal at ``<out>/sweep.journal``.

``fupermod build`` and ``fupermod partition`` both accept ``--degrade``
(walk the model/partitioner fallback ladders of
:class:`~repro.degrade.DegradationPolicy` and print what was degraded and
why) and ``--strict`` (fail fast with a typed error instead).  ``build
--deadline SECONDS`` arms a per-measurement watchdog that quarantines hung
ranks; ``partition --max-iter N`` overrides the iterative partitioners'
iteration caps.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import PiecewiseModel
from repro.core.partition.dynamic import LoadBalancer
from repro.core.registry import (
    available_models,
    available_partitioners,
    model_factory,
    partitioner,
)
from repro.errors import FuPerModError, PartitionError, PersistenceError
from repro.core.builder import build_adaptive_model
from repro.core.partition.limits import partition_with_limits
from repro.io.files import save_distribution, save_points
from repro.platform.cluster import Platform
from repro.platform.presets import fig4_trio, heterogeneous_cluster, hybrid_node

_PLATFORM_PRESETS: Dict[str, Callable[[], Platform]] = {
    "heterogeneous": heterogeneous_cluster,
    "fig4": fig4_trio,
    "hybrid": lambda: Platform([hybrid_node()]),
}


def _parse_sizes(text: str) -> List[int]:
    try:
        sizes = [int(tok) for tok in text.split(",") if tok.strip()]
    except ValueError as exc:
        raise FuPerModError(f"bad size list {text!r}: {exc}") from exc
    if not sizes or any(d <= 0 for d in sizes):
        raise FuPerModError(f"sizes must be positive integers: {text!r}")
    return sizes


def _get_platform(name: str) -> Platform:
    try:
        return _PLATFORM_PRESETS[name]()
    except KeyError:
        raise FuPerModError(
            f"unknown platform {name!r}; available: {sorted(_PLATFORM_PRESETS)}"
        ) from None


def _cmd_build(args: argparse.Namespace) -> int:
    platform = _get_platform(args.platform)
    sizes = _parse_sizes(args.sizes)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.degrade or args.strict:
        return _build_degraded(args, platform, sizes, out)
    resilient = args.faults is not None or args.resume
    if resilient:
        from repro.core.benchmark import ResilientPlatformBenchmark
        from repro.core.builder import build_resilient_models
        from repro.faults import FaultPlan
        from repro.io.checkpoint import SweepCheckpoint

        plan = FaultPlan.load(args.faults) if args.faults else FaultPlan()
        checkpoint = SweepCheckpoint(out / "sweep.journal")
        if not args.resume and checkpoint.exists:
            checkpoint.clear()
        elif args.resume and checkpoint.exists:
            print(f"resuming from {checkpoint.path}")
        bench_r = ResilientPlatformBenchmark(
            platform, unit_flops=args.unit_flops, seed=args.seed, plan=plan
        )
        result = build_resilient_models(
            bench_r, model_factory(args.model), sizes, checkpoint=checkpoint
        )
        models, cost = result.models, result.total_cost
    else:
        bench = PlatformBenchmark(
            platform, unit_flops=args.unit_flops, seed=args.seed
        )
        models, cost = build_full_models(bench, model_factory(args.model), sizes)
    for rank, model in enumerate(models):
        device = platform.devices[rank]
        path = out / f"rank{rank:03d}.points"
        save_points(
            path,
            list(model.points),
            metadata={"device": device.name, "model": args.model},
        )
        print(f"rank {rank} ({device.name}): {model.count} points -> {path}")
    print(f"total benchmarking cost: {cost:.3f} kernel-seconds")
    if resilient:
        print(result.report.summary())
    return 0


def _build_degraded(args: argparse.Namespace, platform: Platform,
                    sizes: List[int], out: Path) -> int:
    """The ``build --degrade``/``--strict`` path: sweep, then ladder-fit."""
    from repro.core.benchmark import ResilientPlatformBenchmark
    from repro.core.builder import build_degraded_models
    from repro.degrade import DegradationPolicy
    from repro.faults import FaultPlan
    from repro.io.checkpoint import SweepCheckpoint

    plan = FaultPlan.load(args.faults) if args.faults else FaultPlan()
    checkpoint = SweepCheckpoint(out / "sweep.journal")
    if not args.resume and checkpoint.exists:
        checkpoint.clear()
    elif args.resume and checkpoint.exists:
        print(f"resuming from {checkpoint.path}")
    bench = ResilientPlatformBenchmark(
        platform, unit_flops=args.unit_flops, seed=args.seed, plan=plan,
        deadline_budget=args.deadline,
    )
    policy = DegradationPolicy(strict=args.strict, resilience=bench.report)
    result = build_degraded_models(
        bench, sizes, policy, primary=args.model, checkpoint=checkpoint
    )
    for rank, model in enumerate(result.models):
        device = platform.devices[rank]
        if model is None:
            print(f"rank {rank} ({device.name}): no usable measurements "
                  "(quarantined), no point file written")
            continue
        path = out / f"rank{rank:03d}.points"
        family = result.families[rank]
        save_points(
            path,
            list(model.points),
            metadata={"device": device.name, "model": family},
        )
        note = "" if family == args.model else f" (degraded from {args.model})"
        print(f"rank {rank} ({device.name}): {model.count} points, "
              f"model {family}{note} -> {path}")
    print(f"total benchmarking cost: {result.total_cost:.3f} kernel-seconds")
    print("degradation: " + result.degradation.summary())
    print(result.resilience.summary())
    return 0


def _parse_limits(text: str, size: int) -> List[Optional[int]]:
    tokens = [tok.strip().lower() for tok in text.split(",")]
    if len(tokens) != size:
        raise FuPerModError(f"{len(tokens)} limits for {size} processes")
    out: List[Optional[int]] = []
    for tok in tokens:
        if tok in ("none", "inf", ""):
            out.append(None)
            continue
        try:
            out.append(int(tok))
        except ValueError as exc:
            raise FuPerModError(f"bad limit {tok!r}: {exc}") from exc
    return out


def _point_files(points_dir: Path) -> List[Path]:
    """The sorted rank point files of a build output directory."""
    files = sorted(points_dir.glob("rank*.points"))
    if not files:
        raise FuPerModError(f"no rank*.points files in {points_dir}")
    return files


def _load_rank_points(path: Path, rank: int):
    """Load one rank's points, turning persistence failures actionable.

    A missing, truncated or binary-corrupt point file used to escape as a
    raw traceback; now it is a :class:`~repro.errors.PartitionError`
    naming the rank, the file and the fix, which ``main`` renders as a
    one-line ``error:`` message with a nonzero exit.
    """
    from repro.io.files import load_points

    try:
        return load_points(path)[0]
    except PersistenceError as exc:
        raise PartitionError(
            f"cannot load points for rank {rank}: {exc}; the file is "
            "missing or corrupt -- re-run 'fupermod build' to regenerate it"
        ) from exc


def _cmd_partition(args: argparse.Namespace) -> int:
    points_dir = Path(args.points)
    files = _point_files(points_dir)
    degradation = None
    if args.degrade or args.strict:
        from repro.degrade import DEFAULT_PARTITIONER_LADDER, DegradationPolicy

        ladder = [args.algorithm] + [
            n for n in DEFAULT_PARTITIONER_LADDER if n != args.algorithm
        ]
        policy = DegradationPolicy(
            partitioner_ladder=ladder, strict=args.strict,
            max_iter=args.max_iter,
        )
        models = []
        for rank, path in enumerate(files):
            points = _load_rank_points(path, rank)
            models.append(policy.fit_model(points, rank=rank,
                                           primary=args.model))
        algorithm = policy.partition_function()
        degradation = policy.report
    else:
        factory = model_factory(args.model)
        models = []
        for rank, path in enumerate(files):
            model = factory()
            model.update_many(_load_rank_points(path, rank))
            models.append(model)
        algorithm = partitioner(args.algorithm)
        if args.max_iter is not None:
            import functools
            import inspect

            if "max_iter" not in inspect.signature(algorithm).parameters:
                raise FuPerModError(
                    f"--max-iter is not supported by {args.algorithm!r}"
                )
            algorithm = functools.partial(algorithm, max_iter=args.max_iter)
    if args.limits:
        limits = _parse_limits(args.limits, len(models))
        dist = partition_with_limits(algorithm, args.total, models, limits)
    else:
        dist = algorithm(args.total, models)
    print(f"# {args.algorithm} partitioning of {args.total} units "
          f"over {len(models)} processes")
    for rank, part in enumerate(dist.parts):
        print(f"rank {rank}: d={part.d} predicted_t={part.t:.6f}s")
    print(f"predicted imbalance: {dist.predicted_imbalance * 100.0:.2f}%")
    cert = getattr(dist, "convergence", None)
    if cert is not None:
        print(f"convergence: {cert.summary()}")
    if degradation is not None:
        print("degradation: " + degradation.summary())
    if args.out:
        save_distribution(args.out, dist)
        print(f"written to {args.out}")
    return 0


class _GracefulShutdown(Exception):
    """Raised by the serve command's signal handlers to begin draining."""

    def __init__(self, signum: int) -> None:
        super().__init__(f"signal {signum}")
        self.signum = signum


def _serve_fleet(args: argparse.Namespace) -> int:
    """The ``fupermod serve --workers N`` (N >= 2) path: a sharded fleet.

    N worker processes each own an engine and a per-shard write-ahead
    journal; a router consistent-hashes requests to home shards, fills
    misses from sibling caches, and apportions non-affinitised traffic
    by functional performance models of the workers themselves
    (``--routing fpm``) or plain rotation (``--routing round-robin``).
    """
    import signal
    import threading

    from repro.serve import PlanFleet

    if not (args.http or args.threaded_http):
        raise FuPerModError(
            "a multi-worker fleet serves over HTTP; add --http "
            "(stdio cannot be multiplexed across worker processes)"
        )
    worker_args = ["--cache-size", str(args.cache_size),
                   "--compact-every", str(args.compact_every)]
    if args.ttl is not None:
        worker_args += ["--ttl", str(args.ttl)]
    if args.no_warm:
        worker_args += ["--no-warm"]
    if args.degrade:
        worker_args += ["--degrade"]
    if args.no_breaker:
        worker_args += ["--no-breaker"]
    worker_args += ["--breaker-cooldown", str(args.breaker_cooldown)]
    if args.max_pending is not None:
        worker_args += ["--max-pending", str(args.max_pending)]
    if args.deadline is not None:
        worker_args += ["--deadline", str(args.deadline)]
    if args.no_feedback:
        worker_args += ["--no-feedback"]
    worker_args += ["--refit-every", str(args.refit_every),
                    "--feedback-k", str(args.feedback_k),
                    "--feedback-strikes", str(args.feedback_strikes)]
    if args.feedback_rate is not None:
        worker_args += ["--feedback-rate", str(args.feedback_rate)]
    if args.power is not None:
        worker_args += ["--power", str(args.power)]
    fleet = PlanFleet(
        args.points,
        workers=args.workers,
        model=args.model,
        algorithm=args.algorithm,
        routing=args.routing,
        cache_dir=args.cache_file,
        worker_threads=args.threads,
        host=args.host,
        port=args.port,
        worker_args=worker_args,
        replicas=args.replicas,
        durability_budget=(
            None if args.no_durability_degrade else args.durability_budget
        ),
    )
    previous_handlers = {}
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            raise _GracefulShutdown(signum)

        for sig in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[sig] = signal.signal(sig, _on_signal)
    stop = threading.Event()
    try:
        fleet.start()
        print(f"serving plans over {fleet.url} "
              f"({args.workers} worker shards, {args.routing} balancing); "
              f"Ctrl-C to stop", file=sys.stderr)
        stop.wait()
    except (KeyboardInterrupt, _GracefulShutdown):
        print("shutdown requested; stopping fleet", file=sys.stderr)
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
        fleet.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``fupermod serve`` command: a partition-plan service.

    Models come from a ``build`` output directory; plans are served over
    JSON-lines stdio (default), the asyncio HTTP front end (``--http``),
    or the legacy threaded HTTP front end (``--threaded-http``).
    ``--workers N`` with N >= 2 scales out to a sharded fleet of worker
    processes behind a consistent-hashing router (HTTP only).  Status
    and statistics go to stderr so stdout stays a clean protocol stream.

    Shutdown contract: SIGTERM and SIGINT (and stdio EOF / the
    ``shutdown`` command) drain in-flight computations, flush the plan
    cache to ``--cache-file`` (compacting its write-ahead journal) and
    exit 0.  A SIGKILLed server recovers its cache on the next start
    from ``snapshot + WAL replay`` -- at most the one plan whose journal
    append was interrupted is lost.
    """
    import signal
    import threading

    from repro.serve import DurablePlanCache, PlanCache, PlanEngine, PlanServer
    from repro.serve.aio import AioFrontend
    from repro.serve.frontend import make_http_server, serve_stdio

    if args.workers > 1:
        return _serve_fleet(args)

    files = _point_files(Path(args.points))
    factory = model_factory(args.model)
    models = []
    for rank, path in enumerate(files):
        model = factory()
        model.update_many(_load_rank_points(path, rank))
        models.append(model)
    cache_file = Path(args.cache_file) if args.cache_file else None
    durable = cache_file is not None and not args.no_wal
    if durable:
        def _log_transition(mode: str, reason: str) -> None:
            # One warning line per durability-mode transition -- the
            # operator-facing trace of the degradation ladder.
            print(f"warning: plan cache durability {mode}: {reason}",
                  file=sys.stderr)

        cache: PlanCache = DurablePlanCache(
            cache_file,
            compact_every=args.compact_every,
            capacity=args.cache_size,
            ttl=args.ttl,
            durability_budget=(
                None if args.no_durability_degrade
                else args.durability_budget
            ),
            on_transition=_log_transition,
        )
        snapshot_entries, wal_ops = cache.recover()
        if snapshot_entries or wal_ops:
            print(f"recovered {snapshot_entries} plan(s) from snapshot + "
                  f"{wal_ops} journaled op(s) from {cache_file}",
                  file=sys.stderr)
    else:
        cache = PlanCache(capacity=args.cache_size, ttl=args.ttl)
        if cache_file is not None and cache_file.exists():
            from repro.io.plans import load_plan_cache

            loaded = load_plan_cache(cache_file, cache)
            print(f"loaded {loaded} cached plan(s) from {cache_file}",
                  file=sys.stderr)
    policy = None
    if args.degrade:
        from repro.degrade import DegradationPolicy

        policy = DegradationPolicy()
    breakers = None
    if not args.no_breaker:
        from repro.serve import BreakerBoard

        breakers = BreakerBoard(cooldown=args.breaker_cooldown)
    engine = PlanEngine(
        cache=cache, policy=policy, partitioner=args.algorithm,
        warm=not args.no_warm, breakers=breakers,
    )
    server = PlanServer(
        models, engine=engine, max_workers=args.threads,
        max_pending=args.max_pending, default_deadline=args.deadline,
    )
    if args.power is not None:
        from repro.serve.worker import load_energy_model_set

        server.attach_energy(load_energy_model_set(
            Path(args.points), Path(args.power), args.model))
        print(f"bi-objective plans enabled: {len(server.energy_models)} "
              f"energy model(s) fitted from {args.power}", file=sys.stderr)

    lineage = None
    if not args.no_feedback:
        from repro.serve import FeedbackController, FeedbackQuarantine, ModelLineage

        # The lineage journal sits beside the cache WAL so models and
        # the plans computed from them crash-recover together.
        lineage_path = str(cache_file) + ".lineage" if durable else None
        lineage = ModelLineage(models, wal_path=lineage_path)
        replayed = lineage.recover()
        if replayed:
            print(f"replayed {replayed} lineage op(s); serving model "
                  f"epoch {lineage.epoch}", file=sys.stderr)
        server.models = lineage.models
        server.attach_feedback(FeedbackController(
            server, lineage,
            quarantine=FeedbackQuarantine(
                k=args.feedback_k,
                max_strikes=args.feedback_strikes,
                rate_limit=args.feedback_rate,
            ),
            refit_every=args.refit_every,
        ))

    # Signal handlers can only live in the main thread (tests drive this
    # command from worker threads, where installation must be skipped).
    previous_handlers = {}
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            raise _GracefulShutdown(signum)

        for sig in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[sig] = signal.signal(sig, _on_signal)

    exit_code = 0
    try:
        if args.threaded_http:
            httpd = make_http_server(server, args.host, args.port)
            host, port = httpd.server_address[:2]
            print(f"serving plans over http://{host}:{port} "
                  f"(threaded; POST /plan, GET /stats, GET /metrics); "
                  f"Ctrl-C to stop", file=sys.stderr)
            try:
                httpd.serve_forever()
            except (KeyboardInterrupt, _GracefulShutdown):
                print("shutdown requested; draining", file=sys.stderr)
            finally:
                httpd.server_close()
        elif args.http:
            frontend = AioFrontend(server, args.host, args.port)
            frontend.start()
            print(f"serving plans over {frontend.url} "
                  f"(asyncio; POST /plan, GET /stats, GET /metrics); "
                  f"Ctrl-C to stop", file=sys.stderr)
            try:
                threading.Event().wait()
            except (KeyboardInterrupt, _GracefulShutdown):
                print("shutdown requested; draining", file=sys.stderr)
            finally:
                frontend.stop()
        else:
            print(f"serving plans for {len(models)} rank(s) over stdio; "
                  "one JSON request per line", file=sys.stderr)
            try:
                served = serve_stdio(server, sys.stdin, sys.stdout)
                print(f"served {served} request(s)", file=sys.stderr)
            except (KeyboardInterrupt, _GracefulShutdown):
                print("shutdown requested; draining", file=sys.stderr)
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
        drained = server.drain(timeout=args.drain_timeout)
        if not drained:
            print(f"warning: in-flight computations still running after "
                  f"{args.drain_timeout:.3g}s drain window", file=sys.stderr)
        server.close()
        if lineage is not None:
            lineage.close()
        if durable:
            cache.close()
            print(f"compacted {len(cache)} cached plan(s) to {cache_file}",
                  file=sys.stderr)
        elif cache_file is not None:
            from repro.io.plans import save_plan_cache

            saved = save_plan_cache(cache_file, cache)
            print(f"persisted {saved} cached plan(s) to {cache_file}",
                  file=sys.stderr)
        stats = server.stats()
        print(f"cache: {stats['cache']['hits']} hit(s), "
              f"{stats['cache']['misses']} miss(es); "
              f"serve: {stats['serve']['computations']} computation(s), "
              f"{stats['serve']['coalesced']} coalesced, "
              f"{stats['serve']['warm_starts']} warm-started, "
              f"{stats['serve']['shed']} shed, "
              f"{stats['serve']['short_circuits']} short-circuited",
              file=sys.stderr)
    return exit_code


def _cmd_demo_jacobi(args: argparse.Namespace) -> int:
    from repro.apps.jacobi.distributed import run_balanced_jacobi

    platform = _get_platform(args.platform)
    models = [PiecewiseModel() for _ in range(platform.size)]
    balancer = LoadBalancer(
        partitioner("geometric"), models, total=args.rows, threshold=0.05
    )
    result = run_balanced_jacobi(
        platform, balancer, max_iterations=args.iterations, eps=args.eps
    )
    print(f"# dynamic load balancing of Jacobi, {args.rows} rows on "
          f"{platform.size} processes ({args.platform})")
    print(f"{'iter':>4} {'makespan(s)':>12} {'imbalance':>10} {'sizes':>24}")
    for rec in result.records:
        active = [t for t, d in zip(rec.compute_times, rec.sizes) if d > 0]
        imb = (max(active) - min(active)) / max(active) if active and max(active) > 0 else 0.0
        print(f"{rec.iteration:>4} {rec.makespan:>12.4f} {imb * 100.0:>9.1f}% "
              f"{str(rec.sizes):>24}")
    print(f"final distribution: {result.final_sizes}")
    print(f"solution error vs exact: {result.solution_error:.2e}")
    return 0


def _cmd_demo_matmul(args: argparse.Namespace) -> int:
    from repro.apps.matmul.kernel import gemm_unit_flops
    from repro.apps.matmul.partition2d import partition_columns, sum_half_perimeters
    from repro.apps.matmul.simulation import simulate_matmul

    platform = _get_platform(args.platform)
    unit_flops = gemm_unit_flops(args.block)
    bench = PlatformBenchmark(platform, unit_flops=unit_flops, seed=args.seed)
    sizes = [64, 256, 1024, 4096, 16384]
    models, _cost = build_full_models(bench, model_factory(args.model), sizes)
    total_units = args.nb * args.nb
    dist = partitioner(args.algorithm)(total_units, models)

    fpm_part = partition_columns([float(d) for d in dist.sizes], args.nb)
    even_part = partition_columns([1.0] * platform.size, args.nb)
    fpm = simulate_matmul(platform, fpm_part, b=args.block, seed=args.seed)
    even = simulate_matmul(platform, even_part, b=args.block, seed=args.seed)

    print(f"# {args.nb}x{args.nb} blocks (b={args.block}) on {args.platform}")
    print(f"even partitioning : {even.total_time:>10.3f}s  "
          f"imbalance {even.compute_imbalance * 100.0:5.1f}%  "
          f"half-perimeter {sum_half_perimeters(even_part)}")
    print(f"{args.model}+{args.algorithm:<10}: {fpm.total_time:>10.3f}s  "
          f"imbalance {fpm.compute_imbalance * 100.0:5.1f}%  "
          f"half-perimeter {sum_half_perimeters(fpm_part)}")
    print(f"speedup: {even.total_time / fpm.total_time:.2f}x")
    return 0


def _cmd_demo_stencil(args: argparse.Namespace) -> int:
    from repro.apps.stencil.distributed import run_balanced_stencil

    platform = _get_platform(args.platform)
    models = [PiecewiseModel() for _ in range(platform.size)]
    balancer = LoadBalancer(
        partitioner("geometric"), models, total=args.rows, threshold=0.05
    )
    result = run_balanced_stencil(
        platform, balancer, nx=args.width, eps=args.eps,
        max_iterations=args.iterations,
    )
    print(f"# heat stencil, {args.rows}x{args.width} grid on "
          f"{platform.size} processes ({args.platform})")
    print(f"{'iter':>4} {'makespan(s)':>12} {'change':>10} {'rows':>24}")
    shown = result.records[:8] + result.records[-2:] \
        if len(result.records) > 10 else result.records
    for rec in shown:
        print(f"{rec.iteration:>4} {rec.makespan:>12.6f} {rec.change:>10.4f} "
              f"{str(rec.sizes):>24}")
    print(f"iterations: {len(result.records)}, final rows: {result.final_sizes}")
    return 0


def _cmd_demo_mesh(args: argparse.Namespace) -> int:
    from repro.core.benchmark import build_full_models
    from repro.graphs import (
        edge_cut,
        grid_graph,
        partition_graph_weighted,
        partition_weights,
        weight_balance,
    )

    platform = _get_platform(args.platform)
    mesh = grid_graph(args.width, args.height)
    n = mesh.number_of_nodes()
    bench = PlatformBenchmark(platform, unit_flops=args.unit_flops, seed=args.seed)
    models, _ = build_full_models(
        bench, model_factory("piecewise"), [64, 256, 1024, 4096]
    )
    weights = partition_weights(n, models)
    assignment = partition_graph_weighted(mesh, weights)
    counts = [0] * platform.size
    for part in assignment.values():
        counts[part] += 1
    print(f"# {args.width}x{args.height} mesh on {args.platform} "
          f"({platform.size} processes)")
    print("weights : " + ", ".join(f"{w:.3f}" for w in weights))
    print(f"vertices: {counts}")
    print(f"edge cut: {edge_cut(mesh, assignment)}")
    print(f"weight deviation: {weight_balance(assignment, weights) * 100:.1f}%")
    return 0


def _cmd_adaptive_build(args: argparse.Namespace) -> int:
    platform = _get_platform(args.platform)
    if not 0 <= args.rank < platform.size:
        raise FuPerModError(
            f"rank {args.rank} out of range 0..{platform.size - 1}"
        )
    try:
        lo_text, hi_text = args.range.split(":", 1)
        lo, hi = int(lo_text), int(hi_text)
    except ValueError as exc:
        raise FuPerModError(f"bad --range {args.range!r} (want LO:HI): {exc}") from exc
    bench = PlatformBenchmark(platform, unit_flops=args.unit_flops, seed=args.seed)
    result = build_adaptive_model(
        lambda d: bench.measure(args.rank, d),
        model_factory(args.model),
        (lo, hi),
        accuracy=args.accuracy,
        max_points=args.max_points,
    )
    device = platform.devices[args.rank]
    print(f"rank {args.rank} ({device.name}): {result.points_used} points, "
          f"cost {result.total_cost:.3f} kernel-s, "
          f"max observed error {result.max_observed_error * 100:.1f}%, "
          f"converged={result.converged}")
    if args.out:
        save_points(
            args.out,
            list(result.model.points),
            metadata={"device": device.name, "model": args.model,
                      "builder": "adaptive"},
        )
        print(f"written to {args.out}")
    return 0


def _cmd_select_model(args: argparse.Namespace) -> int:
    from repro.core.selection import select_model
    from repro.io.files import load_points

    points, meta = load_points(args.points)
    result = select_model(points)
    device = meta.get("device", "?")
    print(f"# model selection for {args.points} (device {device}, "
          f"{len(points)} points, leave-one-out)")
    for name in sorted(result.errors, key=lambda n: result.errors[n]):
        err = result.errors[name]
        shown = f"{err * 100:.2f}%" if err != float("inf") else "failed"
        marker = "  <-- best" if name == result.best else ""
        print(f"  {name:<10} {shown:>10}{marker}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.benchmark import Benchmark
    from repro.io.profiles import save_profile
    from repro.platform.calibration import (
        fit_cache_profile,
        fit_gpu_profile,
        speed_samples_from_points,
    )

    platform = _get_platform(args.platform)
    if not 0 <= args.rank < platform.size:
        raise FuPerModError(f"rank {args.rank} out of range 0..{platform.size - 1}")
    try:
        lo_text, hi_text = args.range.split(":", 1)
        lo, hi = int(lo_text), int(hi_text)
    except ValueError as exc:
        raise FuPerModError(f"bad --range {args.range!r} (want LO:HI): {exc}") from exc
    bench = PlatformBenchmark(platform, unit_flops=args.unit_flops, seed=args.seed)
    kernel = bench.kernel(args.rank)
    runner = Benchmark(kernel, bench.precision)
    points = [runner.run(int(d)) for d in np.geomspace(lo, hi, args.points)]
    samples = speed_samples_from_points(points, kernel.complexity)
    if args.family == "cache":
        fit = fit_cache_profile(samples)
    elif args.family == "gpu":
        fit = fit_gpu_profile(samples)
    else:
        raise FuPerModError(f"unknown profile family {args.family!r}")
    device = platform.devices[args.rank]
    print(f"rank {args.rank} ({device.name}): fitted {args.family} profile, "
          f"RMS rel. error {fit.residual * 100:.1f}%")
    if args.out:
        save_profile(args.out, fit.profile)
        print(f"written to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import distribution_report, models_report, platform_report

    platform = _get_platform(args.platform)
    print(platform_report(platform))
    bench = PlatformBenchmark(platform, unit_flops=args.unit_flops, seed=args.seed)
    sizes = _parse_sizes(args.sizes)
    models, cost = build_full_models(bench, model_factory(args.model), sizes)
    print()
    print(models_report(platform, models, sizes,
                        complexity=lambda x: args.unit_flops * x))
    if args.total:
        dist = partitioner(args.algorithm)(args.total, models)
        print()
        print(distribution_report(
            platform, dist, title=f"{args.algorithm} partitioning of {args.total} units"
        ))
    print(f"\n(model construction cost: {cost:.2f} kernel-seconds)")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("models:       " + ", ".join(available_models()))
    print("partitioners: " + ", ".join(available_partitioners()))
    print("platforms:    " + ", ".join(sorted(_PLATFORM_PRESETS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="fupermod",
        description="Model-based data partitioning for heterogeneous platforms "
        "(FuPerMod reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="benchmark a platform, write point files")
    p_build.add_argument("--platform", default="heterogeneous")
    p_build.add_argument("--sizes", default="64,256,1024,4096,16384")
    p_build.add_argument("--model", default="piecewise")
    p_build.add_argument("--unit-flops", type=float, default=2.0 * 32**3,
                         dest="unit_flops")
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--out", required=True)
    p_build.add_argument("--faults", default=None, metavar="PLAN_JSON",
                         help="fault plan; sweep runs through the resilient "
                              "benchmark (quarantine instead of crash)")
    p_build.add_argument("--resume", action="store_true",
                         help="resume an interrupted sweep from "
                              "<out>/sweep.journal")
    p_build.add_argument("--degrade", action="store_true",
                         help="fit through the fallback ladder: the preferred "
                              "model first, simpler models when it cannot fit")
    p_build.add_argument("--strict", action="store_true",
                         help="fail fast with a typed error instead of "
                              "degrading")
    p_build.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-measurement watchdog budget; a hung rank "
                              "is quarantined (reason 'hang')")
    p_build.set_defaults(func=_cmd_build)

    p_part = sub.add_parser("partition", help="partition from saved point files")
    p_part.add_argument("--points", required=True)
    p_part.add_argument("--total", type=int, required=True)
    p_part.add_argument("--model", default="piecewise")
    p_part.add_argument("--algorithm", default="geometric")
    p_part.add_argument("--limits", default=None,
                        help="comma-separated per-process unit caps; 'none' = unlimited")
    p_part.add_argument("--out", default=None)
    p_part.add_argument("--degrade", action="store_true",
                        help="walk the model and partitioner fallback ladders "
                             "instead of failing; always yields a full "
                             "partition and prints the degradation report")
    p_part.add_argument("--strict", action="store_true",
                        help="fail fast with a typed error (ConvergenceError, "
                             "ModelError, ...) instead of degrading")
    p_part.add_argument("--max-iter", type=int, default=None, dest="max_iter",
                        help="iteration cap override for iterative "
                             "partitioners")
    p_part.set_defaults(func=_cmd_partition)

    p_srv = sub.add_parser(
        "serve",
        help="serve partition plans from saved point files (stdio or HTTP)",
    )
    p_srv.add_argument("--points", required=True,
                       help="directory of rank*.points files from 'build'")
    p_srv.add_argument("--model", default="piecewise")
    p_srv.add_argument("--power", default=None,
                       help="per-rank power-profile JSON (see repro.platform."
                            "power); fits energy models alongside the speed "
                            "models and enables bi-objective (pareto) plans")
    p_srv.add_argument("--algorithm", default="geometric",
                       help="default partitioner for requests that name none")
    p_srv.add_argument("--cache-size", type=int, default=128,
                       dest="cache_size", help="plan cache capacity (entries)")
    p_srv.add_argument("--ttl", type=float, default=None,
                       help="plan time-to-live in seconds (default: no expiry)")
    p_srv.add_argument("--cache-file", default=None, dest="cache_file",
                       help="snapshot file for the plan cache: recovered from "
                            "(snapshot + write-ahead journal) at startup and "
                            "compacted to on shutdown; with --workers N >= 2 "
                            "this is a directory of per-shard caches")
    p_srv.add_argument("--no-wal", action="store_true", dest="no_wal",
                       help="disable the write-ahead journal (cache persists "
                            "only at clean shutdown, as before hardening)")
    p_srv.add_argument("--compact-every", type=int, default=256,
                       dest="compact_every",
                       help="journaled operations between automatic snapshot "
                            "compactions")
    p_srv.add_argument("--durability-budget", type=int, default=3,
                       dest="durability_budget",
                       help="consecutive journal-append failures tolerated "
                            "before the durable cache degrades to memory-only "
                            "mode (plans keep serving, acks carry "
                            "'durable': false, a background probe re-syncs "
                            "the disk when it heals)")
    p_srv.add_argument("--no-durability-degrade", action="store_true",
                       dest="no_durability_degrade",
                       help="disable the durability degradation ladder: "
                            "journal failures surface as request errors, the "
                            "pre-hardening behaviour")
    p_srv.add_argument("--no-warm", action="store_true", dest="no_warm",
                       help="disable warm-started solves from nearby plans")
    p_srv.add_argument("--degrade", action="store_true",
                       help="fall back down the partitioner ladder instead of "
                            "failing a request")
    p_srv.add_argument("--workers", type=int, default=1,
                       help="worker processes (shards); 1 serves in-process, "
                            ">= 2 runs a sharded fleet behind a "
                            "consistent-hashing router (requires --http)")
    p_srv.add_argument("--threads", type=int, default=4,
                       help="solver threads per worker for concurrent "
                            "computations")
    p_srv.add_argument("--routing", choices=["fpm", "round-robin"],
                       default="fpm",
                       help="fleet balancing for non-affinitised requests: "
                            "'fpm' partitions the stream over functional "
                            "performance models of the workers; "
                            "'round-robin' rotates")
    p_srv.add_argument("--replicas", type=int, default=2,
                       help="plan replica-set size including the home shard "
                            "(fleet mode): committed plans replicate to "
                            "ring successors so a killed shard's plans keep "
                            "serving; 1 disables replication")
    p_srv.add_argument("--max-pending", type=int, default=None,
                       dest="max_pending",
                       help="admission cap: shed new requests (HTTP 503) once "
                            "this many computations are in flight "
                            "(default: unbounded)")
    p_srv.add_argument("--deadline", type=float, default=None,
                       help="default per-request deadline in seconds; expiry "
                            "answers HTTP 504 (default: wait forever)")
    p_srv.add_argument("--no-breaker", action="store_true", dest="no_breaker",
                       help="disable the per-model-set circuit breakers")
    p_srv.add_argument("--breaker-cooldown", type=float, default=30.0,
                       dest="breaker_cooldown",
                       help="seconds an open circuit breaker waits before "
                            "admitting a trial request")
    p_srv.add_argument("--no-feedback", action="store_true",
                       dest="no_feedback",
                       help="serve without the closed-loop feedback path "
                            "(POST /feedback answers 400)")
    p_srv.add_argument("--refit-every", type=int, default=16,
                       dest="refit_every",
                       help="accepted feedback reports buffered between "
                            "model refits")
    p_srv.add_argument("--feedback-k", type=float, default=8.0,
                       dest="feedback_k",
                       help="outlier ratio bound of the feedback quarantine: "
                            "a reported time outside [pred/k, k*pred] is "
                            "rejected")
    p_srv.add_argument("--feedback-strikes", type=int, default=3,
                       dest="feedback_strikes",
                       help="consecutive rejected reports before a source is "
                            "quarantined (403)")
    p_srv.add_argument("--feedback-rate", type=int, default=None,
                       dest="feedback_rate",
                       help="max feedback reports per source per minute; "
                            "over-rate answers 429 with Retry-After "
                            "(default: unlimited)")
    p_srv.add_argument("--drain-timeout", type=float, default=10.0,
                       dest="drain_timeout",
                       help="seconds to wait for in-flight computations at "
                            "shutdown")
    p_srv.add_argument("--http", action="store_true",
                       help="serve over HTTP (asyncio front end with an "
                            "inline cache-hit fast lane) instead of "
                            "JSON-lines stdio")
    p_srv.add_argument("--threaded-http", action="store_true",
                       dest="threaded_http",
                       help="serve over the legacy threaded HTTP front end "
                            "(one thread per connection)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8755)
    p_srv.set_defaults(func=_cmd_serve)

    p_jac = sub.add_parser("demo-jacobi", help="dynamic load balancing demo (Fig. 4)")
    p_jac.add_argument("--platform", default="fig4")
    p_jac.add_argument("--rows", type=int, default=512)
    p_jac.add_argument("--iterations", type=int, default=12)
    p_jac.add_argument("--eps", type=float, default=0.0)
    p_jac.set_defaults(func=_cmd_demo_jacobi)

    p_mm = sub.add_parser("demo-matmul", help="heterogeneous matmul demo")
    p_mm.add_argument("--platform", default="heterogeneous")
    p_mm.add_argument("--nb", type=int, default=64)
    p_mm.add_argument("--block", type=int, default=32)
    p_mm.add_argument("--model", default="piecewise")
    p_mm.add_argument("--algorithm", default="geometric")
    p_mm.add_argument("--seed", type=int, default=0)
    p_mm.set_defaults(func=_cmd_demo_matmul)

    p_st = sub.add_parser("demo-stencil", help="heat stencil under dynamic balancing")
    p_st.add_argument("--platform", default="fig4")
    p_st.add_argument("--rows", type=int, default=240)
    p_st.add_argument("--width", type=int, default=64)
    p_st.add_argument("--iterations", type=int, default=60)
    p_st.add_argument("--eps", type=float, default=1e-3)
    p_st.set_defaults(func=_cmd_demo_stencil)

    p_mesh = sub.add_parser("demo-mesh", help="FPM weights driving a mesh partitioner")
    p_mesh.add_argument("--platform", default="heterogeneous")
    p_mesh.add_argument("--width", type=int, default=64)
    p_mesh.add_argument("--height", type=int, default=64)
    p_mesh.add_argument("--unit-flops", type=float, default=4.0e6, dest="unit_flops")
    p_mesh.add_argument("--seed", type=int, default=0)
    p_mesh.set_defaults(func=_cmd_demo_mesh)

    p_ad = sub.add_parser("adaptive-build",
                          help="adaptive model construction to a target accuracy")
    p_ad.add_argument("--platform", default="heterogeneous")
    p_ad.add_argument("--rank", type=int, default=0)
    p_ad.add_argument("--range", default="64:65536")
    p_ad.add_argument("--model", default="akima")
    p_ad.add_argument("--accuracy", type=float, default=0.03)
    p_ad.add_argument("--max-points", type=int, default=24, dest="max_points")
    p_ad.add_argument("--unit-flops", type=float, default=2.0 * 32**3,
                      dest="unit_flops")
    p_ad.add_argument("--seed", type=int, default=0)
    p_ad.add_argument("--out", default=None)
    p_ad.set_defaults(func=_cmd_adaptive_build)

    p_sel = sub.add_parser("select-model",
                           help="pick the best model family for a points file")
    p_sel.add_argument("--points", required=True,
                       help="a rank*.points file written by 'build'")
    p_sel.set_defaults(func=_cmd_select_model)

    p_cal = sub.add_parser("calibrate",
                           help="fit a digital-twin profile from measurements")
    p_cal.add_argument("--platform", default="heterogeneous")
    p_cal.add_argument("--rank", type=int, default=0)
    p_cal.add_argument("--family", choices=["cache", "gpu"], default="cache")
    p_cal.add_argument("--range", default="32:65536")
    p_cal.add_argument("--points", type=int, default=16)
    p_cal.add_argument("--unit-flops", type=float, default=2.0 * 32**3,
                       dest="unit_flops")
    p_cal.add_argument("--seed", type=int, default=0)
    p_cal.add_argument("--out", default=None)
    p_cal.set_defaults(func=_cmd_calibrate)

    p_rep = sub.add_parser("report", help="markdown report of a platform and its models")
    p_rep.add_argument("--platform", default="heterogeneous")
    p_rep.add_argument("--model", default="piecewise")
    p_rep.add_argument("--algorithm", default="geometric")
    p_rep.add_argument("--sizes", default="64,256,1024,4096,16384")
    p_rep.add_argument("--total", type=int, default=None)
    p_rep.add_argument("--unit-flops", type=float, default=2.0 * 32**3,
                       dest="unit_flops")
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.set_defaults(func=_cmd_report)

    p_list = sub.add_parser("list", help="list models/partitioners/platforms")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FuPerModError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
