"""Persistence for the serving layer's plan cache.

A plan-cache file is a single JSON document::

    {
      "format": "fupermod-plan-cache",
      "version": 1,
      "fingerprint_version": "fp1",
      "entries": [ {"key": ..., "models_fp": ..., "result": {...}}, ... ]
    }

Entries are stored oldest-first (LRU order), so a round trip preserves
eviction priority.  The fingerprint version is recorded because keys are
only meaningful under the encoding that produced them: a file written
under a different :data:`~repro.serve.fingerprint.FINGERPRINT_VERSION`
is loaded as *empty* (with a count of 0) rather than polluting the cache
with entries that can never match -- and could falsely match if the
canonical encodings collided.

A snapshot is one half of the durability story: between snapshots,
:class:`repro.serve.wal.DurablePlanCache` journals every mutation to a
write-ahead log and recovers from ``snapshot + WAL replay``, so the
whole-file save here only needs to run at compaction points (and
shutdown), not on every insert.

TTL note: entry ages are **not** persisted.  The cache timestamps with a
monotonic clock (immune to wall-clock jumps), and monotonic readings do
not survive a restart, so loaded entries start a fresh TTL window.  This
is documented as part of the cache contract in ``docs/API.md``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.errors import PersistenceError
from repro.serve.cache import PlanCache
from repro.serve.fingerprint import FINGERPRINT_VERSION
from repro.serve.journal import fsync_dir

_FORMAT = "fupermod-plan-cache"
_VERSION = 1

PathLike = Union[str, Path]


def save_plan_cache(path: PathLike, cache: PlanCache) -> int:
    """Atomically write the cache's live entries to ``path``; returns the count.

    The document lands via temp-file + ``os.replace`` (the
    ``SweepCheckpoint.compact`` idiom), fsynced before the rename and
    with the parent directory fsynced after it (so the rename itself
    survives a power cut), so a
    crash mid-save leaves either the old snapshot or the new one --
    never a torn file.  The payload is captured in one locked call
    (:meth:`PlanCache.to_payload`), so saving while serving threads
    insert concurrently snapshots a consistent LRU state.
    """
    payload = cache.to_payload()
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "fingerprint_version": FINGERPRINT_VERSION,
        "entries": payload,
    }
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(doc, indent=2) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        fsync_dir(target.parent)
    except OSError as exc:
        raise PersistenceError(f"cannot save plan cache to {path}: {exc}") from exc
    return len(payload)


def load_plan_cache(path: PathLike, cache: PlanCache) -> int:
    """Load persisted entries into ``cache``; returns how many loaded.

    A file written under a different fingerprint version loads zero
    entries (see module docstring).  A structurally invalid file raises
    :class:`~repro.errors.PersistenceError`.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise PersistenceError(
            f"cannot read {path}: not a UTF-8 text file ({exc})"
        ) from exc
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise PersistenceError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise PersistenceError(f"{path}: not a fupermod plan-cache file")
    if doc.get("version") != _VERSION:
        raise PersistenceError(
            f"{path}: unsupported plan-cache version {doc.get('version')!r}"
        )
    if doc.get("fingerprint_version") != FINGERPRINT_VERSION:
        return 0
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise PersistenceError(f"{path}: 'entries' must be a list")
    try:
        return cache.load_payload(entries)
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"{path}: malformed cache entry: {exc}") from exc
