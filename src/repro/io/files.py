"""Line-oriented text files for points, models and distributions.

Format of a point file (one measurement per line, ``#`` comments allowed)::

    # fupermod-points v1 kernel=gemm-block device=hybrid0-cpu0
    # d  t  reps  ci
    64   0.0123  5  0.0004
    128  0.0240  5  0.0007

Format of a distribution file::

    # fupermod-dist v1 total=1000
    # rank  d  t
    0  400  0.52
    1  350  0.51
    2  250  0.53

The header magic is checked on load; unparseable lines raise
:class:`~repro.errors.PersistenceError` with the offending line number.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.core.models.base import PerformanceModel
from repro.core.partition.dist import Distribution, Part
from repro.core.point import MeasurementPoint
from repro.errors import FuPerModError, PersistenceError

_POINTS_MAGIC = "# fupermod-points v1"
_DIST_MAGIC = "# fupermod-dist v1"

PathLike = Union[str, Path]


def save_points(
    path: PathLike,
    points: List[MeasurementPoint],
    metadata: Optional[Dict[str, str]] = None,
) -> None:
    """Write measurement points to a text file.

    ``metadata`` key=value pairs are recorded in the header line; keys and
    values must not contain whitespace.
    """
    meta = ""
    if metadata:
        for k, v in metadata.items():
            if any(c.isspace() for c in str(k) + str(v)):
                raise PersistenceError(f"metadata must not contain whitespace: {k}={v}")
        meta = " " + " ".join(f"{k}={v}" for k, v in sorted(metadata.items()))
    lines = [f"{_POINTS_MAGIC}{meta}", "# d t reps ci"]
    for p in points:
        lines.append(f"{p.d} {p.t!r} {p.reps} {p.ci!r}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_points(path: PathLike) -> "tuple[List[MeasurementPoint], Dict[str, str]]":
    """Read measurement points and header metadata back from a file."""
    text = _read(path)
    lines = text.splitlines()
    if not lines or not lines[0].startswith(_POINTS_MAGIC):
        raise PersistenceError(f"{path}: not a fupermod points file (bad header)")
    metadata = _parse_metadata(lines[0][len(_POINTS_MAGIC):])
    points: List[MeasurementPoint] = []
    for lineno, line in enumerate(lines[1:], start=2):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        fields = body.split()
        if len(fields) != 4:
            raise PersistenceError(
                f"{path}:{lineno}: expected 'd t reps ci', got {line!r}"
            )
        try:
            points.append(
                MeasurementPoint(
                    d=int(fields[0]),
                    t=float(fields[1]),
                    reps=int(fields[2]),
                    ci=float(fields[3]),
                )
            )
        except (ValueError, FuPerModError) as exc:
            raise PersistenceError(f"{path}:{lineno}: {exc}") from exc
    return points, metadata


def load_model(
    path: PathLike,
    model_factory: Callable[[], PerformanceModel],
) -> PerformanceModel:
    """Build a fresh model from a persisted point file.

    The points are ingested in one :meth:`update_many` call, so the model
    is fitted once -- lazily, at its first evaluation -- no matter how
    many points the file holds.
    """
    points, _meta = load_points(path)
    model = model_factory()
    model.update_many(points)
    return model


def save_distribution(path: PathLike, dist: Distribution) -> None:
    """Write a distribution to a text file."""
    lines = [f"{_DIST_MAGIC} total={dist.total}", "# rank d t"]
    for rank, part in enumerate(dist.parts):
        lines.append(f"{rank} {part.d} {part.t!r}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_distribution(path: PathLike) -> Distribution:
    """Read a distribution back from a file."""
    text = _read(path)
    lines = text.splitlines()
    if not lines or not lines[0].startswith(_DIST_MAGIC):
        raise PersistenceError(f"{path}: not a fupermod distribution file (bad header)")
    entries: List["tuple[int, Part]"] = []
    for lineno, line in enumerate(lines[1:], start=2):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        fields = body.split()
        if len(fields) != 3:
            raise PersistenceError(
                f"{path}:{lineno}: expected 'rank d t', got {line!r}"
            )
        try:
            entries.append((int(fields[0]), Part(int(fields[1]), float(fields[2]))))
        except (ValueError, FuPerModError) as exc:
            raise PersistenceError(f"{path}:{lineno}: {exc}") from exc
    if not entries:
        raise PersistenceError(f"{path}: distribution file has no parts")
    entries.sort(key=lambda e: e[0])
    ranks = [r for r, _p in entries]
    if ranks != list(range(len(ranks))):
        raise PersistenceError(f"{path}: ranks must be 0..{len(ranks) - 1}, got {ranks}")
    return Distribution(p for _r, p in entries)


def _read(path: PathLike) -> str:
    try:
        return Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        # A binary or mis-encoded file is corruption, not a caller bug:
        # surface it as the same typed error the CLI already reports.
        raise PersistenceError(
            f"cannot read {path}: not a UTF-8 text file ({exc})"
        ) from exc


def _parse_metadata(rest: str) -> Dict[str, str]:
    metadata: Dict[str, str] = {}
    for token in rest.split():
        if "=" not in token:
            raise PersistenceError(f"bad metadata token {token!r}")
        k, v = token.split("=", 1)
        metadata[k] = v
    return metadata
