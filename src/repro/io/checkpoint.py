"""Checkpoint/resume of measurement sweeps (atomic write + journal).

A benchmark sweep is the expensive step of the static workflow; losing an
hour of measurements to a crash at point 59 of 60 is not acceptable in
production.  :class:`SweepCheckpoint` journals every *committed*
measurement point as one JSON line, flushed and fsynced, so the on-disk
state is always a durable prefix of the work done:

* :meth:`commit` appends one durable line per measurement;
* :meth:`load` reads the committed points back, tolerating a torn final
  line (the signature of dying mid-write) by ignoring it;
* :meth:`compact` atomically rewrites the journal (write to a temporary
  file in the same directory, then ``os.replace``), dropping duplicates
  from overlapping resumed runs.

An interrupted sweep resumed through
:func:`repro.core.builder.build_resilient_models` skips every committed
``(rank, size)`` pair and measures only the remainder.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from repro.core.point import MeasurementPoint
from repro.errors import FuPerModError, PersistenceError

PathLike = Union[str, Path]

_MAGIC = "fupermod-journal"
_VERSION = 1


class SweepCheckpoint:
    """Append-only journal of committed measurement points.

    Args:
        path: the journal file; created (with its parent directory) on the
            first commit.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    @property
    def exists(self) -> bool:
        """Whether a journal file is present on disk."""
        return self.path.exists()

    def commit(self, rank: int, point: MeasurementPoint) -> None:
        """Durably append one measurement point.

        The line is flushed and fsynced before returning: once
        ``commit`` returns, the point survives a crash.
        """
        if rank < 0:
            raise PersistenceError(f"rank must be non-negative, got {rank}")
        record = {
            "magic": _MAGIC,
            "v": _VERSION,
            "rank": rank,
            "d": point.d,
            "t": point.t,
            "reps": point.reps,
            "ci": point.ci,
        }
        line = json.dumps(record, sort_keys=True)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise PersistenceError(f"cannot journal to {self.path}: {exc}") from exc

    def load(self) -> Dict[int, Dict[int, MeasurementPoint]]:
        """Committed points, as ``{rank: {size: point}}``.

        A missing journal is an empty checkpoint.  A torn *final* line
        (interrupted mid-write) is ignored; corruption anywhere else
        raises :class:`~repro.errors.PersistenceError`.  Duplicate
        ``(rank, size)`` entries keep the latest commit.
        """
        if not self.path.exists():
            return {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise PersistenceError(f"cannot read {self.path}: {exc}") from exc
        out: Dict[int, Dict[int, MeasurementPoint]] = {}
        lines = text.split("\n")
        # A well-formed journal ends with a newline, so the final split
        # element is empty; anything else is a torn tail.
        body, tail = lines[:-1], lines[-1]
        for lineno, line in enumerate(body, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record.get("magic") != _MAGIC:
                    raise PersistenceError(
                        f"{self.path}:{lineno}: not a journal record"
                    )
                point = MeasurementPoint(
                    d=int(record["d"]),
                    t=float(record["t"]),
                    reps=int(record["reps"]),
                    ci=float(record["ci"]),
                )
                rank = int(record["rank"])
            except PersistenceError:
                raise
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    FuPerModError) as exc:
                if lineno == len(body) and not tail:
                    # Torn final line: the crash interrupted this commit;
                    # everything before it is intact.
                    break
                raise PersistenceError(f"{self.path}:{lineno}: {exc}") from exc
            out.setdefault(rank, {})[point.d] = point
        return out

    def compact(self) -> None:
        """Atomically rewrite the journal without duplicates or torn tails."""
        committed = self.load()
        if not committed:
            return
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for rank in sorted(committed):
                    for d in sorted(committed[rank]):
                        point = committed[rank][d]
                        handle.write(json.dumps({
                            "magic": _MAGIC, "v": _VERSION, "rank": rank,
                            "d": point.d, "t": point.t, "reps": point.reps,
                            "ci": point.ci,
                        }, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            raise PersistenceError(f"cannot compact {self.path}: {exc}") from exc

    def clear(self) -> None:
        """Delete the journal (start the sweep from scratch)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise PersistenceError(f"cannot remove {self.path}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepCheckpoint({str(self.path)!r})"
