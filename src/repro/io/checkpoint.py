"""Checkpoint/resume of measurement sweeps (atomic write + journal).

A benchmark sweep is the expensive step of the static workflow; losing an
hour of measurements to a crash at point 59 of 60 is not acceptable in
production.  :class:`SweepCheckpoint` journals every *committed*
measurement point as one JSON line, flushed and fsynced, so the on-disk
state is always a durable prefix of the work done:

* :meth:`commit` appends one durable line per measurement;
* :meth:`load` reads the committed points back, tolerating a torn final
  line (the signature of dying mid-write) by ignoring it;
* :meth:`compact` atomically rewrites the journal (write to a temporary
  file in the same directory, then ``os.replace``, then fsync the
  directory), dropping duplicates from overlapping resumed runs.

The journalling discipline itself -- fsynced appends, torn-tail replay,
the fsyncgate handle rule, the injectable ``opener`` fault seam --
lives in the shared :class:`repro.serve.journal.AppendJournal` base,
which this class rides together with the serving layer's WALs.

An interrupted sweep resumed through
:func:`repro.core.builder.build_resilient_models` skips every committed
``(rank, size)`` pair and measures only the remainder.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from repro.core.point import MeasurementPoint
from repro.errors import FuPerModError, PersistenceError
from repro.serve.journal import (
    AppendJournal,
    JournalFormatError,
    Opener,
    PathLike,
    fsync_dir,
)

_MAGIC = "fupermod-journal"
_VERSION = 1


class SweepCheckpoint(AppendJournal):
    """Append-only journal of committed measurement points.

    Args:
        path: the journal file; created (with its parent directory) on the
            first commit.
        fsync: fsync every committed point (the durability guarantee).
        opener: ``open``-compatible callable used for every file access
            (the storage fault seam; see :mod:`repro.faults.disk`).
    """

    magic = _MAGIC
    version = _VERSION
    record_name = "journal"
    log_name = "journal"
    # Open-per-commit: a sweep commits rarely (once per measured point),
    # and a held handle would dangle across compact()'s os.replace and
    # clear()'s unlink.
    keep_handle = False

    def __init__(
        self,
        path: PathLike,
        fsync: bool = True,
        opener: Optional[Opener] = None,
    ) -> None:
        super().__init__(path, fsync=fsync, opener=opener)

    def commit(self, rank: int, point: MeasurementPoint) -> None:
        """Durably append one measurement point.

        The line is flushed and fsynced before returning: once
        ``commit`` returns, the point survives a crash.
        """
        if rank < 0:
            raise PersistenceError(f"rank must be non-negative, got {rank}")
        self._write_line(self._stamp(
            rank=rank, d=point.d, t=point.t, reps=point.reps, ci=point.ci,
        ))

    def _validate(
        self, record: dict, lineno: int
    ) -> Tuple[int, MeasurementPoint]:
        try:
            point = MeasurementPoint(
                d=int(record["d"]),
                t=float(record["t"]),
                reps=int(record["reps"]),
                ci=float(record["ci"]),
            )
            rank = int(record["rank"])
        except (KeyError, TypeError, ValueError, FuPerModError) as exc:
            raise PersistenceError(
                f"{self.path}:{lineno}: {exc}"
            ) from exc
        return rank, point

    def _tail_forgivable(self, exc: PersistenceError) -> bool:
        """A torn tail of our own is forgivable; a foreign record is not.

        A complete final line of some other file format means the path
        points at the wrong file, not at a crashed append -- refusing it
        is the historical (and safer) behaviour.
        """
        return not isinstance(exc, JournalFormatError)

    def load(self) -> Dict[int, Dict[int, MeasurementPoint]]:
        """Committed points, as ``{rank: {size: point}}``.

        A missing journal is an empty checkpoint.  A torn *final* line
        (interrupted mid-write) is ignored; corruption anywhere else
        raises :class:`~repro.errors.PersistenceError`.  Duplicate
        ``(rank, size)`` entries keep the latest commit.
        """
        entries, _valid_bytes, _dropped = self.replay_lines()
        out: Dict[int, Dict[int, MeasurementPoint]] = {}
        for rank, point in entries:
            out.setdefault(rank, {})[point.d] = point
        return out

    def compact(self) -> None:
        """Atomically rewrite the journal without duplicates or torn tails."""
        committed = self.load()
        if not committed:
            return
        self._discard_handle()
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with self.opener(tmp, "w", encoding="utf-8") as handle:
                for rank in sorted(committed):
                    for d in sorted(committed[rank]):
                        point = committed[rank][d]
                        handle.write(json.dumps(self._stamp(
                            rank=rank, d=point.d, t=point.t,
                            reps=point.reps, ci=point.ci,
                        ), sort_keys=True) + "\n")
                handle.flush()
                self._sync(handle)
            os.replace(tmp, self.path)
        except OSError as exc:
            raise PersistenceError(f"cannot compact {self.path}: {exc}") from exc
        # The rename is not durable until the directory itself is flushed.
        fsync_dir(self.path.parent)

    def clear(self) -> None:
        """Delete the journal (start the sweep from scratch)."""
        self._discard_handle()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise PersistenceError(f"cannot remove {self.path}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepCheckpoint({str(self.path)!r})"
