"""Persistence of measurement points, models and distributions.

FuPerMod separates model *construction* (possibly expensive, done once per
platform) from model *use* (every application run).  That separation needs
files: the ``builder`` tool writes per-process point files, applications
read them back and partition.  This package provides the same workflow with
a simple, versioned, line-oriented text format.
"""

from repro.io.checkpoint import SweepCheckpoint
from repro.io.files import (
    load_distribution,
    load_model,
    load_points,
    save_distribution,
    save_points,
)
from repro.io.plans import load_plan_cache, save_plan_cache
from repro.io.profiles import load_profile, save_profile

__all__ = [
    "SweepCheckpoint",
    "load_distribution",
    "load_model",
    "load_points",
    "load_plan_cache",
    "load_profile",
    "save_distribution",
    "save_plan_cache",
    "save_points",
    "save_profile",
]
