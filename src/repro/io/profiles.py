"""JSON persistence for speed profiles.

Calibrated digital twins (:mod:`repro.platform.calibration`) are only
useful if they survive the session: this module serialises every built-in
profile family to a small, versioned JSON document and back, so a machine
measured once can be simulated forever.

The format is self-describing::

    {"format": "fupermod-profile", "version": 1,
     "type": "cache-hierarchy",
     "params": {"levels": [[1500.0, 5e9]], "paged_flops": 7e8,
                "transition_width": 0.1}}

Unknown types or malformed documents raise
:class:`~repro.errors.PersistenceError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import PersistenceError
from repro.platform.profiles import (
    CacheHierarchyProfile,
    ConstantProfile,
    GpuProfile,
    SpeedProfile,
    TableProfile,
    WigglyProfile,
)

PathLike = Union[str, Path]

_FORMAT = "fupermod-profile"
_VERSION = 1


def _encode(profile: SpeedProfile) -> Dict:
    if isinstance(profile, ConstantProfile):
        return {"type": "constant", "params": {"flops": profile.flops}}
    if isinstance(profile, TableProfile):
        return {
            "type": "table",
            "params": {"points": [[x, y] for x, y in profile.points]},
        }
    if isinstance(profile, CacheHierarchyProfile):
        return {
            "type": "cache-hierarchy",
            "params": {
                "levels": [[c, r] for c, r in profile.levels],
                "paged_flops": profile.paged_flops,
                "transition_width": profile.transition_width,
            },
        }
    if isinstance(profile, GpuProfile):
        return {
            "type": "gpu",
            "params": {
                "peak_flops": profile.peak_flops,
                "ramp_units": profile.ramp_units,
                "memory_limit_units": profile.memory_limit_units,
                "out_of_core_factor": profile.out_of_core_factor,
                "host_flops": profile.host_flops,
            },
        }
    if isinstance(profile, WigglyProfile):
        return {
            "type": "wiggly",
            "params": {
                "peak_flops": profile.peak_flops,
                "rise_units": profile.rise_units,
                "decay_per_unit": profile.decay_per_unit,
                "humps": [[c, a, w] for c, a, w in profile.humps],
                "floor_flops": profile.floor_flops,
            },
        }
    raise PersistenceError(
        f"cannot serialise profile of type {type(profile).__name__}"
    )


_DECODERS = {
    "constant": lambda p: ConstantProfile(p["flops"]),
    "table": lambda p: TableProfile([(x, y) for x, y in p["points"]]),
    "cache-hierarchy": lambda p: CacheHierarchyProfile(
        levels=[(c, r) for c, r in p["levels"]],
        paged_flops=p["paged_flops"],
        transition_width=p["transition_width"],
    ),
    "gpu": lambda p: GpuProfile(
        peak_flops=p["peak_flops"],
        ramp_units=p["ramp_units"],
        memory_limit_units=p.get("memory_limit_units"),
        out_of_core_factor=p.get("out_of_core_factor"),
        host_flops=p.get("host_flops", 0.0),
    ),
    "wiggly": lambda p: WigglyProfile(
        peak_flops=p["peak_flops"],
        rise_units=p["rise_units"],
        decay_per_unit=p.get("decay_per_unit", 0.0),
        humps=[(c, a, w) for c, a, w in p.get("humps", [])],
        floor_flops=p.get("floor_flops", 1.0),
    ),
}


def save_profile(path: PathLike, profile: SpeedProfile) -> None:
    """Serialise a profile to a JSON file."""
    doc = {"format": _FORMAT, "version": _VERSION}
    doc.update(_encode(profile))
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def load_profile(path: PathLike) -> SpeedProfile:
    """Load a profile back from a JSON file."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise PersistenceError(f"{path}: not a fupermod profile file")
    if doc.get("version") != _VERSION:
        raise PersistenceError(
            f"{path}: unsupported version {doc.get('version')}"
        )
    kind = doc.get("type")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise PersistenceError(
            f"{path}: unknown profile type {kind!r}; "
            f"known: {sorted(_DECODERS)}"
        )
    try:
        return decoder(doc.get("params", {}))
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"{path}: malformed {kind} parameters: {exc}") from exc
