"""Isotonic regression (pool adjacent violators).

Execution time grows with problem size on real hardware, but *measured*
times wobble: noise at nearby sizes can make the raw sequence locally
decreasing.  The PCHIP model restores monotonicity before interpolating by
projecting the measurements onto the closest non-decreasing sequence in
the (weighted) least-squares sense -- the classic pool-adjacent-violators
algorithm (PAVA).

Weights are the repetition counts of the measurements, so a time averaged
over many repetitions moves less than a single noisy observation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import InterpolationError


def isotonic_increasing(
    ys: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> List[float]:
    """Project ``ys`` onto the closest non-decreasing sequence.

    Args:
        ys: values in the order of increasing abscissa.
        weights: optional positive weights (defaults to 1.0 each).

    Returns:
        The fitted non-decreasing values, one per input, minimising
        ``sum(w_i * (fit_i - y_i)^2)`` subject to ``fit`` non-decreasing.
    """
    n = len(ys)
    if n == 0:
        return []
    if weights is None:
        w = [1.0] * n
    else:
        if len(weights) != n:
            raise InterpolationError(
                f"{len(weights)} weights for {n} values"
            )
        w = [float(x) for x in weights]
        if any(x <= 0.0 for x in w):
            raise InterpolationError(f"weights must be positive: {weights}")

    # Each block: [mean, weight, count]; merge while order is violated.
    blocks: List[List[float]] = []
    for y, wi in zip(ys, w):
        blocks.append([float(y), wi, 1])
        while len(blocks) >= 2 and blocks[-2][0] > blocks[-1][0]:
            mean2, w2, c2 = blocks.pop()
            mean1, w1, c1 = blocks.pop()
            total_w = w1 + w2
            blocks.append(
                [(mean1 * w1 + mean2 * w2) / total_w, total_w, c1 + c2]
            )
    out: List[float] = []
    for mean, _w, count in blocks:
        out.extend([mean] * count)
    return out
