"""Coarsening of measured speed points to the FPM canonical shape.

The geometrical data partitioning algorithm of Lastovetsky--Reddy (ref. [10]
of the paper) requires the speed functions to satisfy a shape restriction:
*every straight line through the origin of the (problem size, speed) plane
must intersect the speed curve at most once*.  For a continuous piecewise
linear speed curve this holds if and only if the polar angle of the curve,
``s(x) / x``, is strictly decreasing along increasing ``x`` -- equivalently,
the execution-time function ``t(x) = x / s(x)`` is strictly increasing.

Real measured speed functions violate this (speed can grow super-linearly at
small problem sizes, and wiggle).  The paper's piecewise FPM therefore
*coarsens* the real performance data: it replaces the measured speeds by a
nearby curve that satisfies the restriction (Fig. 2(a) of the paper).  We
implement coarsening as a single forward pass that clips each speed from
above so the angle sequence stays strictly decreasing; clipping downward only
ever *underestimates* speed, which keeps the resulting partitioning
conservative rather than over-optimistic.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import InterpolationError

#: Relative margin enforcing *strict* angle decrease between knots.
_STRICT_MARGIN = 1e-9


def satisfies_fpm_shape(
    points: Sequence[Tuple[float, float]],
    strict: bool = True,
) -> bool:
    """Check whether speed points satisfy the Lastovetsky--Reddy restriction.

    ``points`` are ``(x, s)`` pairs with positive ``x`` and ``s``; they are
    sorted internally.  Returns True when the angle sequence ``s/x`` is
    decreasing (strictly, unless ``strict`` is False).
    """
    pts = sorted((float(x), float(s)) for x, s in points)
    angles = []
    for x, s in pts:
        if x <= 0.0 or s <= 0.0:
            raise InterpolationError(f"speed points must be positive, got ({x}, {s})")
        angles.append(s / x)
    for a, b in zip(angles, angles[1:]):
        if strict:
            if b >= a:
                return False
        else:
            if b > a:
                return False
    return True


def coarsen_to_fpm_shape(
    points: Iterable[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """Coarsen speed points so they satisfy the FPM shape restriction.

    ``points`` are ``(x, s)`` pairs: problem size in computation units and
    speed in units per second.  Duplicate abscissae are merged by averaging.
    The result is sorted by ``x``, and its angle sequence ``s/x`` is strictly
    decreasing, so the derived time function ``t(x) = x / s(x)`` is strictly
    increasing and the geometrical partitioning algorithm converges.

    The pass clips each point's speed to just below the previous (coarsened)
    point's ray from the origin.  Points that already respect the restriction
    are returned untouched.
    """
    merged: dict = {}
    counts: dict = {}
    for x, s in points:
        x = float(x)
        s = float(s)
        if x <= 0.0 or s <= 0.0:
            raise InterpolationError(f"speed points must be positive, got ({x}, {s})")
        if x in merged:
            counts[x] += 1
            merged[x] += (s - merged[x]) / counts[x]
        else:
            merged[x] = s
            counts[x] = 1
    if not merged:
        raise InterpolationError("coarsen_to_fpm_shape requires at least one point")

    out: List[Tuple[float, float]] = []
    for x in sorted(merged):
        s = merged[x]
        if out:
            x_prev, s_prev = out[-1]
            # Largest admissible speed at x keeping the angle strictly below
            # the previous knot's angle.
            ceiling = (s_prev / x_prev) * x * (1.0 - _STRICT_MARGIN)
            s = min(s, ceiling)
        out.append((x, s))
    return out
