"""Interpolation substrate.

FuPerMod approximates empirically measured *time functions* ``t(x)`` (and the
derived *speed functions* ``s(x) = complexity(x) / t(x)``) with

* piecewise-linear interpolation (:class:`PiecewiseLinear`), optionally
  *coarsened* so that the speed function satisfies the Lastovetsky--Reddy
  shape restrictions required by the geometrical partitioning algorithm
  (:func:`coarsen_to_fpm_shape`), and
* Akima splines (:class:`AkimaSpline`), which are C1-continuous and avoid the
  overshoot of cubic splines near abrupt changes -- the paper uses them for
  the numerical partitioning algorithm because they provide a continuous
  derivative.
"""

from repro.interp.akima import AkimaSpline
from repro.interp.coarsening import coarsen_to_fpm_shape, satisfies_fpm_shape
from repro.interp.pchip import PchipSpline
from repro.interp.piecewise_linear import PiecewiseLinear

__all__ = [
    "AkimaSpline",
    "PchipSpline",
    "PiecewiseLinear",
    "coarsen_to_fpm_shape",
    "satisfies_fpm_shape",
]
