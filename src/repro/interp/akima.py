"""Akima spline interpolation, implemented from scratch.

Reference: H. Akima, *A New Method of Interpolation and Smooth Curve Fitting
Based on Local Procedures*, JACM 17(4), 1970.

The paper's Akima-spline FPM uses this interpolation for the time function
because it is C1-continuous (the numerical partitioning algorithm needs a
continuous derivative for its Jacobian) and, unlike natural cubic splines,
does not oscillate wildly around abrupt changes such as memory-hierarchy
cliffs in measured speed functions.

The construction is local: the spline slope at a knot depends only on the
four neighbouring secant slopes,

    t_i = (|m_{i+1} - m_i| m_{i-1} + |m_{i-1} - m_{i-2}| m_i)
          / (|m_{i+1} - m_i| + |m_{i-1} - m_{i-2}|)

with the average of the two central secants when the denominator vanishes,
and two quadratically extrapolated secants appended at each boundary.  Each
interval then carries a cubic Hermite polynomial whose coefficients are
precomputed once as arrays, so both scalar calls and
:meth:`evaluate_batch` (one ``searchsorted`` + Horner over the whole input
array) read the same numbers.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InterpolationError
from repro.interp._points import prepare_points


def hermite_interval_coeffs(
    xs: np.ndarray, ys: np.ndarray, slopes: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Per-interval cubic coefficients ``(a, b, c, d)`` for Hermite data.

    The interval-``i`` polynomial is ``a + b u + c u^2 + d u^3`` with
    ``u = x - xs[i]``.  Intervals whose width underflows when squared are
    degraded to their secant line, mirroring the scalar guard.
    """
    h = np.diff(xs)
    dy = np.diff(ys)
    s0 = slopes[:-1]
    s1 = slopes[1:]
    degenerate = h * h == 0.0
    safe_h = np.where(degenerate, 1.0, h)
    secant = np.where(h > 0.0, dy / safe_h, 0.0)
    a = ys[:-1]
    b = np.where(degenerate, secant, s0)
    c = np.where(
        degenerate, 0.0, (3.0 * dy / safe_h - 2.0 * s0 - s1) / safe_h
    )
    d = np.where(degenerate, 0.0, (s0 + s1 - 2.0 * dy / safe_h) / (safe_h * safe_h))
    return a, b, c, d


class AkimaSpline:
    """Akima cubic spline through a set of (x, y) points.

    Requires at least two distinct abscissae.  With exactly two the spline
    degenerates to the straight line through them (Akima's slopes reduce to
    the single secant).  Duplicate ``x`` values are merged by averaging;
    input that is already sorted and duplicate-free takes a fast path that
    skips the merge and sort.

    Evaluation outside the data range continues the boundary cubic
    polynomials (linear in practice, since the Hermite cubic is evaluated
    with the boundary slopes); results are clamped below at ``min_y`` so
    predicted times can never be non-positive.
    """

    def __init__(
        self,
        points: Iterable[Tuple[float, float]],
        min_y: float = 1e-12,
    ) -> None:
        xs, ys = prepare_points(points)
        if len(xs) < 2:
            raise InterpolationError(
                f"AkimaSpline requires at least 2 distinct points, got {len(xs)}"
            )
        self._xs: List[float] = xs
        self._ys: List[float] = ys
        self._min_y = float(min_y)
        self._slopes = self._compute_slopes(self._xs, self._ys)
        self._xs_arr = np.asarray(xs, dtype=float)
        self._ys_arr = np.asarray(ys, dtype=float)
        self._ca, self._cb, self._cc, self._cd = hermite_interval_coeffs(
            self._xs_arr, self._ys_arr, np.asarray(self._slopes, dtype=float)
        )

    @staticmethod
    def _compute_slopes(xs: Sequence[float], ys: Sequence[float]) -> List[float]:
        """Akima slopes at every knot, with quadratic boundary extension."""
        n = len(xs)
        # Secant slopes m[0..n-2]; extend by two on each side:
        # m[-1] = 2 m[0] - m[1], m[-2] = 2 m[-1] - m[0]  (and mirrored right).
        m = [(ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]) for i in range(n - 1)]
        if n == 2:
            return [m[0], m[0]]
        ext = [0.0, 0.0] + m + [0.0, 0.0]
        ext[1] = 2.0 * m[0] - m[1]
        ext[0] = 2.0 * ext[1] - m[0]
        ext[-2] = 2.0 * m[-1] - m[-2]
        ext[-1] = 2.0 * ext[-2] - m[-1]
        slopes: List[float] = []
        for i in range(n):
            # ext index of secant m_{i} is i + 2.
            m_im2 = ext[i]
            m_im1 = ext[i + 1]
            m_i = ext[i + 2]
            m_ip1 = ext[i + 3]
            w1 = abs(m_ip1 - m_i)
            w2 = abs(m_im1 - m_im2)
            if w1 + w2 == 0.0:
                slopes.append(0.5 * (m_im1 + m_i))
            else:
                slopes.append((w1 * m_im1 + w2 * m_i) / (w1 + w2))
        return slopes

    @property
    def xs(self) -> Sequence[float]:
        """The sorted, de-duplicated abscissae."""
        return tuple(self._xs)

    @property
    def ys(self) -> Sequence[float]:
        """Ordinates corresponding to :attr:`xs`."""
        return tuple(self._ys)

    def __len__(self) -> int:
        return len(self._xs)

    def _interval(self, x: float) -> int:
        xs = self._xs
        if x <= xs[0]:
            return 0
        if x >= xs[-1]:
            return len(xs) - 2
        return bisect.bisect_right(xs, x) - 1

    def _hermite_coeffs(self, i: int) -> Tuple[float, float, float, float, float]:
        """Cubic coefficients (x0, a, b, c, d) on interval i.

        The polynomial is ``a + b u + c u^2 + d u^3`` with ``u = x - x0``.
        """
        return (
            self._xs[i],
            float(self._ca[i]),
            float(self._cb[i]),
            float(self._cc[i]),
            float(self._cd[i]),
        )

    def __call__(self, x: float) -> float:
        """Evaluate the spline at ``x``."""
        i = self._interval(x)
        x0, a, b, c, d = self._hermite_coeffs(i)
        u = x - x0
        return max(a + u * (b + u * (c + u * d)), self._min_y)

    def evaluate_batch(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate the spline at an array of abscissae at once.

        Matches scalar evaluation exactly: the same interval rule and the
        same precomputed coefficients, applied with one ``searchsorted``.
        """
        xs = np.asarray(xs, dtype=float)
        n = len(self._xs)
        i = np.clip(np.searchsorted(self._xs_arr, xs, side="right") - 1, 0, n - 2)
        u = xs - self._xs_arr[i]
        y = self._ca[i] + u * (self._cb[i] + u * (self._cc[i] + u * self._cd[i]))
        return np.maximum(y, self._min_y)

    def derivative(self, x: float) -> float:
        """First derivative of the spline at ``x`` (continuous everywhere)."""
        i = self._interval(x)
        x0, _a, b, c, d = self._hermite_coeffs(i)
        u = x - x0
        return b + u * (2.0 * c + 3.0 * d * u)

    def derivative_batch(self, xs: np.ndarray) -> np.ndarray:
        """First derivative at an array of abscissae at once."""
        xs = np.asarray(xs, dtype=float)
        n = len(self._xs)
        i = np.clip(np.searchsorted(self._xs_arr, xs, side="right") - 1, 0, n - 2)
        u = xs - self._xs_arr[i]
        return self._cb[i] + u * (2.0 * self._cc[i] + 3.0 * self._cd[i] * u)

    def with_point(self, x: float, y: float) -> "AkimaSpline":
        """Return a new spline with one extra point added."""
        pts = list(zip(self._xs, self._ys))
        pts.append((x, y))
        return AkimaSpline(pts, min_y=self._min_y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AkimaSpline({len(self._xs)} points, x in [{self._xs[0]}, {self._xs[-1]}])"
