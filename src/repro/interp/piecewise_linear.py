"""Piecewise-linear interpolation of scalar functions.

This is the interpolation used by the piecewise FPM of the paper: the time
function of a device is approximated by straight segments between measured
points, with linear extrapolation beyond the last point (the paper's models
must predict times for problem sizes larger than any benchmarked size when a
partitioning algorithm probes them).
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

from repro.errors import InterpolationError


class PiecewiseLinear:
    """Piecewise-linear interpolant through a set of (x, y) points.

    Points are sorted by ``x`` on construction; duplicate ``x`` values are
    merged by averaging their ``y`` values (repeated benchmarks of the same
    problem size refine rather than contradict the model).

    Behaviour outside the data range:

    * left of the first point: linear continuation of the first segment,
      clamped below at ``min_y`` (times must stay positive);
    * right of the last point: linear continuation of the last segment,
      clamped likewise.

    With a single point the function is constant.
    """

    def __init__(
        self,
        points: Iterable[Tuple[float, float]],
        min_y: float = 1e-12,
    ) -> None:
        merged: dict = {}
        counts: dict = {}
        for x, y in points:
            x = float(x)
            y = float(y)
            if x in merged:
                counts[x] += 1
                merged[x] += (y - merged[x]) / counts[x]
            else:
                merged[x] = y
                counts[x] = 1
        if not merged:
            raise InterpolationError("PiecewiseLinear requires at least one point")
        xs = sorted(merged)
        self._xs: List[float] = xs
        self._ys: List[float] = [merged[x] for x in xs]
        self._min_y = float(min_y)

    @property
    def xs(self) -> Sequence[float]:
        """The sorted, de-duplicated abscissae."""
        return tuple(self._xs)

    @property
    def ys(self) -> Sequence[float]:
        """Ordinates corresponding to :attr:`xs`."""
        return tuple(self._ys)

    def __len__(self) -> int:
        return len(self._xs)

    def __call__(self, x: float) -> float:
        """Evaluate the interpolant at ``x``."""
        xs, ys = self._xs, self._ys
        n = len(xs)
        if n == 1:
            return max(ys[0], self._min_y)
        if x <= xs[0]:
            i = 0
        elif x >= xs[-1]:
            i = n - 2
        else:
            i = bisect.bisect_right(xs, x) - 1
        x0, x1 = xs[i], xs[i + 1]
        y0, y1 = ys[i], ys[i + 1]
        slope = (y1 - y0) / (x1 - x0)
        return max(y0 + slope * (x - x0), self._min_y)

    def derivative(self, x: float) -> float:
        """Slope of the active segment at ``x`` (right-continuous at knots)."""
        xs, ys = self._xs, self._ys
        n = len(xs)
        if n == 1:
            return 0.0
        if x <= xs[0]:
            i = 0
        elif x >= xs[-1]:
            i = n - 2
        else:
            i = bisect.bisect_right(xs, x) - 1
        return (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i])

    def with_point(self, x: float, y: float) -> "PiecewiseLinear":
        """Return a new interpolant with one extra point added."""
        pts = list(zip(self._xs, self._ys))
        pts.append((x, y))
        return PiecewiseLinear(pts, min_y=self._min_y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PiecewiseLinear({len(self._xs)} points, x in [{self._xs[0]}, {self._xs[-1]}])"
