"""Piecewise-linear interpolation of scalar functions.

This is the interpolation used by the piecewise FPM of the paper: the time
function of a device is approximated by straight segments between measured
points, with linear extrapolation beyond the last point (the paper's models
must predict times for problem sizes larger than any benchmarked size when a
partitioning algorithm probes them).

Per-segment slopes are precomputed at construction, so scalar evaluation is
a bisect plus one multiply-add, and :meth:`evaluate_batch` evaluates a whole
array of abscissae with one ``searchsorted`` -- the vectorized fast path the
partitioners run on.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import InterpolationError
from repro.interp._points import prepare_points


class PiecewiseLinear:
    """Piecewise-linear interpolant through a set of (x, y) points.

    Points are sorted by ``x`` on construction; duplicate ``x`` values are
    merged by averaging their ``y`` values (repeated benchmarks of the same
    problem size refine rather than contradict the model).  Already-sorted
    duplicate-free input skips the merge/sort pass.

    Behaviour outside the data range:

    * left of the first point: linear continuation of the first segment,
      clamped below at ``min_y`` (times must stay positive);
    * right of the last point: linear continuation of the last segment,
      clamped likewise.

    With a single point the function is constant.
    """

    def __init__(
        self,
        points: Iterable[Tuple[float, float]],
        min_y: float = 1e-12,
    ) -> None:
        xs, ys = prepare_points(points)
        if not xs:
            raise InterpolationError("PiecewiseLinear requires at least one point")
        self._xs = xs
        self._ys = ys
        self._min_y = float(min_y)
        self._xs_arr = np.asarray(xs, dtype=float)
        self._ys_arr = np.asarray(ys, dtype=float)
        if len(xs) > 1:
            self._slopes_arr = np.diff(self._ys_arr) / np.diff(self._xs_arr)
        else:
            self._slopes_arr = np.zeros(0)

    @property
    def xs(self) -> Sequence[float]:
        """The sorted, de-duplicated abscissae."""
        return tuple(self._xs)

    @property
    def ys(self) -> Sequence[float]:
        """Ordinates corresponding to :attr:`xs`."""
        return tuple(self._ys)

    def __len__(self) -> int:
        return len(self._xs)

    def _interval(self, x: float) -> int:
        xs = self._xs
        if x <= xs[0]:
            return 0
        if x >= xs[-1]:
            return len(xs) - 2
        return bisect.bisect_right(xs, x) - 1

    def __call__(self, x: float) -> float:
        """Evaluate the interpolant at ``x``."""
        if len(self._xs) == 1:
            return max(self._ys[0], self._min_y)
        i = self._interval(x)
        y = self._ys[i] + float(self._slopes_arr[i]) * (x - self._xs[i])
        return max(y, self._min_y)

    def evaluate_batch(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate the interpolant at an array of abscissae at once.

        Bit-identical to calling the interpolant point by point: interval
        lookup uses the same right-bisection rule and the same precomputed
        slopes.
        """
        xs = np.asarray(xs, dtype=float)
        n = len(self._xs)
        if n == 1:
            return np.full(xs.shape, max(self._ys[0], self._min_y))
        i = np.clip(np.searchsorted(self._xs_arr, xs, side="right") - 1, 0, n - 2)
        y = self._ys_arr[i] + self._slopes_arr[i] * (xs - self._xs_arr[i])
        return np.maximum(y, self._min_y)

    def derivative(self, x: float) -> float:
        """Slope of the active segment at ``x`` (right-continuous at knots)."""
        if len(self._xs) == 1:
            return 0.0
        return float(self._slopes_arr[self._interval(x)])

    def with_point(self, x: float, y: float) -> "PiecewiseLinear":
        """Return a new interpolant with one extra point added."""
        pts = list(zip(self._xs, self._ys))
        pts.append((x, y))
        return PiecewiseLinear(pts, min_y=self._min_y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PiecewiseLinear({len(self._xs)} points, x in [{self._xs[0]}, {self._xs[-1]}])"
