"""Shared point preparation for the interpolants.

Every interpolant accepts an iterable of ``(x, y)`` pairs, merges duplicate
abscissae by running average, and sorts by ``x``.  Model rebuilds pass data
that is almost always *already* sorted and duplicate-free (models merge
duplicates themselves), so the common case gets a single-scan fast path
that skips the dict merge and the sort entirely.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def prepare_points(
    points: Iterable[Tuple[float, float]],
) -> "tuple[List[float], List[float]]":
    """Sorted, duplicate-merged ``(xs, ys)`` lists from raw pairs.

    Duplicate ``x`` values are merged by running average (repeated
    measurements of the same size refine rather than contradict).  Input
    that is already strictly increasing in ``x`` is passed through without
    re-sorting or re-averaging.
    """
    xs: List[float] = []
    ys: List[float] = []
    is_sorted = True
    for x, y in points:
        x = float(x)
        y = float(y)
        if xs and x <= xs[-1]:
            is_sorted = False
        xs.append(x)
        ys.append(y)
    if is_sorted:
        return xs, ys
    merged: dict = {}
    counts: dict = {}
    for x, y in zip(xs, ys):
        if x in merged:
            counts[x] += 1
            merged[x] += (y - merged[x]) / counts[x]
        else:
            merged[x] = y
            counts[x] = 1
    order = sorted(merged)
    return order, [merged[x] for x in order]
