"""PCHIP monotone cubic interpolation, implemented from scratch.

Reference: F. N. Fritsch, R. E. Carlson, *Monotone Piecewise Cubic
Interpolation*, SIAM J. Numer. Anal. 17(2), 1980.

Why a third interpolation scheme next to piecewise-linear and Akima: the
geometrical partitioning algorithm needs *strictly increasing* time
functions.  The piecewise FPM gets there by coarsening the data (losing
accuracy); the Akima FPM is accurate but can overshoot into local
non-monotonicity between knots.  PCHIP is the best of both for monotone
data: it interpolates with C1 cubics and *provably preserves the
monotonicity of the data* -- if the measured times increase with problem
size, so does the interpolant, everywhere.

Construction (Fritsch--Carlson):

* interior knot slopes are the weighted harmonic mean of the adjacent
  secants when they share a sign, and zero otherwise (a local extremum of
  the data stays an extremum of the interpolant);
* endpoint slopes use the one-sided three-point formula, clipped to keep
  the boundary interval shape-preserving.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InterpolationError
from repro.interp._points import prepare_points
from repro.interp.akima import hermite_interval_coeffs


class PchipSpline:
    """Monotonicity-preserving cubic interpolant through (x, y) points.

    Requires at least two distinct abscissae; duplicates are merged by
    averaging (already-sorted duplicate-free input skips the merge/sort
    pass).  Outside the data range the boundary cubic is continued
    (effectively linear with the boundary slope); results are clamped
    below at ``min_y``.  Per-interval cubic coefficients are precomputed
    as arrays, shared by scalar calls and :meth:`evaluate_batch`.
    """

    def __init__(
        self,
        points: Iterable[Tuple[float, float]],
        min_y: float = 1e-12,
    ) -> None:
        xs, ys = prepare_points(points)
        if len(xs) < 2:
            raise InterpolationError(
                f"PchipSpline requires at least 2 distinct points, got {len(xs)}"
            )
        self._xs: List[float] = xs
        self._ys: List[float] = ys
        self._min_y = float(min_y)
        self._slopes = self._compute_slopes(self._xs, self._ys)
        self._xs_arr = np.asarray(xs, dtype=float)
        self._ys_arr = np.asarray(ys, dtype=float)
        self._ca, self._cb, self._cc, self._cd = hermite_interval_coeffs(
            self._xs_arr, self._ys_arr, np.asarray(self._slopes, dtype=float)
        )

    @staticmethod
    def _compute_slopes(xs: Sequence[float], ys: Sequence[float]) -> List[float]:
        n = len(xs)
        h = [xs[i + 1] - xs[i] for i in range(n - 1)]
        m = [(ys[i + 1] - ys[i]) / h[i] for i in range(n - 1)]
        if n == 2:
            return [m[0], m[0]]
        slopes: List[float] = [0.0] * n
        # Interior knots: Fritsch-Carlson weighted harmonic mean.
        for i in range(1, n - 1):
            if m[i - 1] * m[i] <= 0.0:
                slopes[i] = 0.0
            else:
                w1 = 2.0 * h[i] + h[i - 1]
                w2 = h[i] + 2.0 * h[i - 1]
                slopes[i] = (w1 + w2) / (w1 / m[i - 1] + w2 / m[i])
        # Endpoints: one-sided three-point formula, shape-clipped.
        slopes[0] = PchipSpline._endpoint_slope(h[0], h[1], m[0], m[1])
        slopes[-1] = PchipSpline._endpoint_slope(h[-1], h[-2], m[-1], m[-2])
        return slopes

    @staticmethod
    def _endpoint_slope(h0: float, h1: float, m0: float, m1: float) -> float:
        d = ((2.0 * h0 + h1) * m0 - h0 * m1) / (h0 + h1)
        if d * m0 <= 0.0:
            return 0.0
        if m0 * m1 < 0.0 and abs(d) > 3.0 * abs(m0):
            return 3.0 * m0
        return d

    @property
    def xs(self) -> Sequence[float]:
        """The sorted, de-duplicated abscissae."""
        return tuple(self._xs)

    @property
    def ys(self) -> Sequence[float]:
        """Ordinates corresponding to :attr:`xs`."""
        return tuple(self._ys)

    def __len__(self) -> int:
        return len(self._xs)

    def _interval(self, x: float) -> int:
        xs = self._xs
        if x <= xs[0]:
            return 0
        if x >= xs[-1]:
            return len(xs) - 2
        return bisect.bisect_right(xs, x) - 1

    def _coeffs(self, i: int) -> Tuple[float, float, float, float, float]:
        return (
            self._xs[i],
            float(self._ca[i]),
            float(self._cb[i]),
            float(self._cc[i]),
            float(self._cd[i]),
        )

    def __call__(self, x: float) -> float:
        """Evaluate the interpolant at ``x``."""
        x0, a, b, c, d = self._coeffs(self._interval(x))
        u = x - x0
        return max(a + u * (b + u * (c + u * d)), self._min_y)

    def evaluate_batch(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate the interpolant at an array of abscissae at once.

        Matches scalar evaluation exactly: same interval rule, same
        precomputed coefficients, one ``searchsorted`` for the whole array.
        """
        xs = np.asarray(xs, dtype=float)
        n = len(self._xs)
        i = np.clip(np.searchsorted(self._xs_arr, xs, side="right") - 1, 0, n - 2)
        u = xs - self._xs_arr[i]
        y = self._ca[i] + u * (self._cb[i] + u * (self._cc[i] + u * self._cd[i]))
        return np.maximum(y, self._min_y)

    def derivative(self, x: float) -> float:
        """First derivative at ``x`` (continuous everywhere)."""
        x0, _a, b, c, d = self._coeffs(self._interval(x))
        u = x - x0
        return b + u * (2.0 * c + 3.0 * d * u)

    def derivative_batch(self, xs: np.ndarray) -> np.ndarray:
        """First derivative at an array of abscissae at once."""
        xs = np.asarray(xs, dtype=float)
        n = len(self._xs)
        i = np.clip(np.searchsorted(self._xs_arr, xs, side="right") - 1, 0, n - 2)
        u = xs - self._xs_arr[i]
        return self._cb[i] + u * (2.0 * self._cc[i] + 3.0 * self._cd[i] * u)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PchipSpline({len(self._xs)} points, x in [{self._xs[0]}, {self._xs[-1]}])"
