"""PCHIP monotone cubic interpolation, implemented from scratch.

Reference: F. N. Fritsch, R. E. Carlson, *Monotone Piecewise Cubic
Interpolation*, SIAM J. Numer. Anal. 17(2), 1980.

Why a third interpolation scheme next to piecewise-linear and Akima: the
geometrical partitioning algorithm needs *strictly increasing* time
functions.  The piecewise FPM gets there by coarsening the data (losing
accuracy); the Akima FPM is accurate but can overshoot into local
non-monotonicity between knots.  PCHIP is the best of both for monotone
data: it interpolates with C1 cubics and *provably preserves the
monotonicity of the data* -- if the measured times increase with problem
size, so does the interpolant, everywhere.

Construction (Fritsch--Carlson):

* interior knot slopes are the weighted harmonic mean of the adjacent
  secants when they share a sign, and zero otherwise (a local extremum of
  the data stays an extremum of the interpolant);
* endpoint slopes use the one-sided three-point formula, clipped to keep
  the boundary interval shape-preserving.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

from repro.errors import InterpolationError


class PchipSpline:
    """Monotonicity-preserving cubic interpolant through (x, y) points.

    Requires at least two distinct abscissae; duplicates are merged by
    averaging.  Outside the data range the boundary cubic is continued
    (effectively linear with the boundary slope); results are clamped
    below at ``min_y``.
    """

    def __init__(
        self,
        points: Iterable[Tuple[float, float]],
        min_y: float = 1e-12,
    ) -> None:
        merged: dict = {}
        counts: dict = {}
        for x, y in points:
            x = float(x)
            y = float(y)
            if x in merged:
                counts[x] += 1
                merged[x] += (y - merged[x]) / counts[x]
            else:
                merged[x] = y
                counts[x] = 1
        if len(merged) < 2:
            raise InterpolationError(
                f"PchipSpline requires at least 2 distinct points, got {len(merged)}"
            )
        xs = sorted(merged)
        self._xs: List[float] = xs
        self._ys: List[float] = [merged[x] for x in xs]
        self._min_y = float(min_y)
        self._slopes = self._compute_slopes(self._xs, self._ys)

    @staticmethod
    def _compute_slopes(xs: Sequence[float], ys: Sequence[float]) -> List[float]:
        n = len(xs)
        h = [xs[i + 1] - xs[i] for i in range(n - 1)]
        m = [(ys[i + 1] - ys[i]) / h[i] for i in range(n - 1)]
        if n == 2:
            return [m[0], m[0]]
        slopes: List[float] = [0.0] * n
        # Interior knots: Fritsch-Carlson weighted harmonic mean.
        for i in range(1, n - 1):
            if m[i - 1] * m[i] <= 0.0:
                slopes[i] = 0.0
            else:
                w1 = 2.0 * h[i] + h[i - 1]
                w2 = h[i] + 2.0 * h[i - 1]
                slopes[i] = (w1 + w2) / (w1 / m[i - 1] + w2 / m[i])
        # Endpoints: one-sided three-point formula, shape-clipped.
        slopes[0] = PchipSpline._endpoint_slope(h[0], h[1], m[0], m[1])
        slopes[-1] = PchipSpline._endpoint_slope(h[-1], h[-2], m[-1], m[-2])
        return slopes

    @staticmethod
    def _endpoint_slope(h0: float, h1: float, m0: float, m1: float) -> float:
        d = ((2.0 * h0 + h1) * m0 - h0 * m1) / (h0 + h1)
        if d * m0 <= 0.0:
            return 0.0
        if m0 * m1 < 0.0 and abs(d) > 3.0 * abs(m0):
            return 3.0 * m0
        return d

    @property
    def xs(self) -> Sequence[float]:
        """The sorted, de-duplicated abscissae."""
        return tuple(self._xs)

    @property
    def ys(self) -> Sequence[float]:
        """Ordinates corresponding to :attr:`xs`."""
        return tuple(self._ys)

    def __len__(self) -> int:
        return len(self._xs)

    def _interval(self, x: float) -> int:
        xs = self._xs
        if x <= xs[0]:
            return 0
        if x >= xs[-1]:
            return len(xs) - 2
        return bisect.bisect_right(xs, x) - 1

    def _coeffs(self, i: int) -> Tuple[float, float, float, float, float]:
        x0, x1 = self._xs[i], self._xs[i + 1]
        y0, y1 = self._ys[i], self._ys[i + 1]
        s0, s1 = self._slopes[i], self._slopes[i + 1]
        h = x1 - x0
        if h * h == 0.0:
            secant = (y1 - y0) / h if h > 0.0 else 0.0
            return x0, y0, secant, 0.0, 0.0
        c = (3.0 * (y1 - y0) / h - 2.0 * s0 - s1) / h
        d = (s0 + s1 - 2.0 * (y1 - y0) / h) / (h * h)
        return x0, y0, s0, c, d

    def __call__(self, x: float) -> float:
        """Evaluate the interpolant at ``x``."""
        x0, a, b, c, d = self._coeffs(self._interval(x))
        u = x - x0
        return max(a + u * (b + u * (c + u * d)), self._min_y)

    def derivative(self, x: float) -> float:
        """First derivative at ``x`` (continuous everywhere)."""
        x0, _a, b, c, d = self._coeffs(self._interval(x))
        u = x - x0
        return b + u * (2.0 * c + 3.0 * d * u)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PchipSpline({len(self._xs)} points, x in [{self._xs[0]}, {self._xs[-1]}])"
