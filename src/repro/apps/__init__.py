"""Data-parallel applications used as the paper's case studies.

* :mod:`repro.apps.matmul` -- heterogeneous parallel matrix multiplication
  with column-based 2D partitioning and the b x b block-update GEMM kernel
  (Section 4.1 of the paper);
* :mod:`repro.apps.jacobi` -- the Jacobi method with row distribution and
  dynamic load balancing (Section 4.4 / Fig. 4 of the paper).
"""
