"""Self-adaptive matrix multiplication.

The paper's Section 4.3 distinguishes applications that can amortise full
model construction from one-shot runs that cannot.  This module is the
one-shot path for the matrix multiplication use case: at startup, the
dynamic partitioning algorithm estimates partial FPMs with a few cheap
kernel benchmarks, the resulting shares drive the column-based 2D
arrangement, and the application runs -- no a-priori platform knowledge
required.

The returned report carries everything an operator would want to inspect:
the startup benchmarking cost, the distribution trace, and the simulated
execution compared against the homogeneous (even) layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.serve.engine import PlanEngine

from repro.apps.matmul.kernel import gemm_unit_flops
from repro.apps.matmul.partition2d import ColumnPartition, partition_columns
from repro.apps.matmul.simulation import MatmulResult, simulate_matmul
from repro.core.benchmark import PlatformBenchmark
from repro.core.models import PiecewiseModel
from repro.core.partition.dynamic import DynamicPartitioner, DynamicResult
from repro.core.partition.geometric import partition_geometric
from repro.core.precision import Precision
from repro.degrade import DegradationPolicy, DegradationReport
from repro.errors import PartitionError
from repro.platform.cluster import Platform


@dataclass(frozen=True)
class AdaptiveMatmulReport:
    """Outcome of :func:`run_adaptive_matmul`.

    Attributes:
        partitioning: trace of the startup dynamic partitioning.
        layout: the column-based 2D arrangement actually used.
        run: the simulated application execution under that layout.
        baseline_run: the same application under the even layout.
        startup_cost: kernel-seconds spent benchmarking at startup.
        degradation: the fallback ladder's audit trail when startup
            partitioning was guarded by a
            :class:`~repro.degrade.DegradationPolicy` (``None``
            otherwise).
    """

    partitioning: DynamicResult
    layout: ColumnPartition
    run: MatmulResult
    baseline_run: MatmulResult
    startup_cost: float
    degradation: Optional[DegradationReport] = None

    @property
    def speedup_over_even(self) -> float:
        """How much the adaptive layout beats the homogeneous one."""
        if self.run.total_time <= 0.0:
            return float("inf")
        return self.baseline_run.total_time / self.run.total_time


def run_adaptive_matmul(
    platform: Platform,
    nb: int,
    b: int = 32,
    eps: float = 0.03,
    precision: Optional[Precision] = None,
    seed: int = 0,
    policy: Optional[DegradationPolicy] = None,
    engine: Optional["PlanEngine"] = None,
) -> AdaptiveMatmulReport:
    """Run the self-adaptive matrix multiplication end to end.

    Args:
        platform: the simulated platform.
        nb: matrix side in b x b blocks (the grid to partition).
        b: blocking factor.
        eps: accuracy of the startup dynamic partitioning.
        precision: benchmark repetition policy for the startup phase
            (defaults to a cheap 1-3 repetition policy -- startup cost is
            the whole point of the adaptive path).
        seed: RNG seed for benchmarking and simulation noise.
        policy: optional :class:`~repro.degrade.DegradationPolicy`
            guarding the startup partitioning: if the geometric algorithm
            fails on the partial models, the ladder (numerical, basic,
            even) takes over instead of aborting the one-shot run, and
            the report's ``degradation`` field says so.
        engine: optional :class:`~repro.serve.PlanEngine`; the startup
            loop's repartitioning steps then flow through the plan
            cache, so the repeated solves on converging partial models
            are warm-started and the final (stable) solve is a cache
            hit.  Composes with ``policy`` as in the jacobi app.

    Returns:
        An :class:`AdaptiveMatmulReport`.
    """
    if nb < 1:
        raise PartitionError(f"nb must be >= 1, got {nb}")
    unit_flops = gemm_unit_flops(b)
    startup_precision = (
        precision
        if precision is not None
        else Precision(reps_min=1, reps_max=3, relative_error=0.05)
    )
    bench = PlatformBenchmark(
        platform, unit_flops=unit_flops, precision=startup_precision, seed=seed
    )
    models = [PiecewiseModel() for _ in range(platform.size)]
    partition_fn = (
        engine.partition_function() if engine is not None
        else partition_geometric
    )
    if policy is not None:
        partition_fn = policy.wrap(partition_fn)
    dyn = DynamicPartitioner(
        partition_fn,
        models,
        nb * nb,
        bench.measure_group,
        eps=eps,
    )
    partitioning = dyn.run()

    layout = partition_columns([float(d) for d in partitioning.final.sizes], nb)
    even_layout = partition_columns([1.0] * platform.size, nb)
    run = simulate_matmul(platform, layout, b=b, seed=seed)
    baseline = simulate_matmul(platform, even_layout, b=b, seed=seed)
    return AdaptiveMatmulReport(
        partitioning=partitioning,
        layout=layout,
        run=run,
        baseline_run=baseline,
        startup_cost=partitioning.total_cost,
        degradation=policy.report if policy is not None else None,
    )
