"""Heterogeneous parallel matrix multiplication.

The application of Section 4.1: square matrices A, B, C are partitioned
over a 2D arrangement of heterogeneous processors so that each rectangle's
area is proportional to the speed of its processor (speeds come from the
functional performance models).  The column-based arrangement of Beaumont
et al. keeps submatrices as square as possible, minimising the total
communication volume.

Pieces:

* :func:`partition_columns` / :class:`ColumnPartition` -- the column-based
  2D matrix partitioning algorithm;
* :class:`GemmBlockKernel` -- the real (numpy) b x b block-update kernel of
  the paper, with the same memory-access pattern as the application;
* :func:`simulate_matmul` -- the full application on a simulated platform:
  per-iteration pivot communication plus the block updates, in virtual
  time.
"""

from repro.apps.matmul.adaptive import AdaptiveMatmulReport, run_adaptive_matmul
from repro.apps.matmul.kernel import GemmBlockKernel, gemm_unit_flops
from repro.apps.matmul.out_of_core import OutOfCoreGemmKernel
from repro.apps.matmul.partition2d import (
    ColumnPartition,
    Rectangle,
    partition_columns,
    partition_rows,
    sum_half_perimeters,
)
from repro.apps.matmul.simulation import MatmulResult, simulate_matmul
from repro.apps.matmul.verification import (
    compute_distributed_matmul,
    verify_partition_math,
)

__all__ = [
    "AdaptiveMatmulReport",
    "ColumnPartition",
    "GemmBlockKernel",
    "compute_distributed_matmul",
    "MatmulResult",
    "OutOfCoreGemmKernel",
    "Rectangle",
    "gemm_unit_flops",
    "partition_columns",
    "partition_rows",
    "run_adaptive_matmul",
    "simulate_matmul",
    "sum_half_perimeters",
    "verify_partition_math",
]
