"""Column-based 2D matrix partitioning (Beaumont et al., ref. [2]).

Given per-processor areas (in b x b blocks, as produced by a model-based
partitioner), arrange the processors into columns of a unit square so that

* each processor owns a rectangle of the requested area, and
* the sum of half-perimeters -- which is proportional to the total
  communication volume of the parallel matrix multiplication -- is small.

Beaumont et al. showed the optimal *column-based* arrangement assigns
processors to columns in non-increasing order of area, contiguously.  With
the areas sorted, the optimal grouping into contiguous columns is found by
dynamic programming: a column containing ``k`` processors of total area
``w`` contributes ``k * w + 1`` to the sum of half-perimeters (each of its
rectangles has width ``w``, and their heights add up to 1).

The continuous arrangement is then snapped to an integer grid of
``nb x nb`` blocks, preserving the total exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.partition.dist import round_preserving_sum
from repro.errors import PartitionError


@dataclass(frozen=True)
class Rectangle:
    """A processor's rectangle on the nb x nb block grid.

    Attributes:
        rank: processor rank owning the rectangle.
        row: first block row.
        col: first block column.
        height: number of block rows (``m_i`` of the paper).
        width: number of block columns (``n_i`` of the paper).
    """

    rank: int
    row: int
    col: int
    height: int
    width: int

    @property
    def area(self) -> int:
        """Number of b x b blocks (= computation units) in the rectangle."""
        return self.height * self.width

    @property
    def half_perimeter(self) -> int:
        """``height + width`` in blocks; drives communication volume."""
        return self.height + self.width


@dataclass(frozen=True)
class ColumnPartition:
    """A column-based partition of the nb x nb block grid.

    Attributes:
        nb: grid side, in blocks.
        column_widths: width of each processor column, in blocks.
        rectangles: one rectangle per processor, in rank order.
    """

    nb: int
    column_widths: List[int]
    rectangles: List[Rectangle]

    @property
    def size(self) -> int:
        """Number of processors."""
        return len(self.rectangles)

    def areas(self) -> List[int]:
        """Block areas per rank (= achievable computation-unit shares)."""
        return [r.area for r in self.rectangles]

    def validate(self) -> None:
        """Check the rectangles tile the grid exactly (raises otherwise)."""
        covered = 0
        for rect in self.rectangles:
            if rect.height < 0 or rect.width < 0:
                raise PartitionError(f"negative rectangle: {rect}")
            if rect.row < 0 or rect.col < 0:
                raise PartitionError(f"rectangle out of grid: {rect}")
            if rect.row + rect.height > self.nb or rect.col + rect.width > self.nb:
                raise PartitionError(f"rectangle exceeds grid: {rect}")
            covered += rect.area
        if covered != self.nb * self.nb:
            raise PartitionError(
                f"rectangles cover {covered} blocks, grid has {self.nb * self.nb}"
            )
        if sum(self.column_widths) != self.nb:
            raise PartitionError(
                f"column widths {self.column_widths} do not sum to {self.nb}"
            )


def sum_half_perimeters(partition: ColumnPartition) -> int:
    """Total half-perimeter of all rectangles, in blocks.

    Proportional to the total volume of pivot-row/column communication in
    the column-based matrix multiplication.
    """
    return sum(r.half_perimeter for r in partition.rectangles)


def _optimal_column_counts(areas_sorted: Sequence[float]) -> List[int]:
    """DP over contiguous groups: minimise sum of (k_j * w_j).

    ``areas_sorted`` are normalised areas in non-increasing order.  Returns
    the sizes of the optimal contiguous groups (columns), left to right.
    """
    p = len(areas_sorted)
    prefix = [0.0]
    for a in areas_sorted:
        prefix.append(prefix[-1] + a)
    # best[i]: minimal cost of grouping the first i processors; the +1 per
    # column is included so the DP also optimises the number of columns.
    best = [0.0] + [float("inf")] * p
    choice = [0] * (p + 1)
    for i in range(1, p + 1):
        for j in range(i):
            k = i - j
            w = prefix[i] - prefix[j]
            cost = best[j] + k * w + 1.0
            if cost < best[i]:
                best[i] = cost
                choice[i] = j
    counts: List[int] = []
    i = p
    while i > 0:
        j = choice[i]
        counts.append(i - j)
        i = j
    counts.reverse()
    return counts


def partition_rows(areas: Sequence[float], nb: int) -> ColumnPartition:
    """The 1D baseline: full-width horizontal slabs with heights ∝ areas.

    What a heterogeneity-aware but arrangement-naive code does.  Its sum of
    half-perimeters is ``nb * p + nb`` -- always at least as large as the
    column-based optimum -- so it serves as the comparison baseline in the
    Fig. 1 experiment and the communication-volume tests.
    """
    if nb < 1:
        raise PartitionError(f"nb must be >= 1, got {nb}")
    if not areas:
        raise PartitionError("need at least one area")
    if any(a < 0 for a in areas):
        raise PartitionError(f"areas must be non-negative: {areas}")
    total = float(sum(areas))
    if total <= 0.0:
        raise PartitionError("at least one area must be positive")
    heights = round_preserving_sum([a / total * nb for a in areas], nb)
    rectangles = []
    row = 0
    for rank, h in enumerate(heights):
        width = nb if h > 0 else 0
        rectangles.append(
            Rectangle(rank=rank, row=row if h > 0 else 0,
                      col=0, height=h, width=width)
        )
        row += h
    partition = ColumnPartition(nb=nb, column_widths=[nb], rectangles=rectangles)
    partition.validate()
    return partition


def partition_columns(areas: Sequence[float], nb: int) -> ColumnPartition:
    """Arrange processors into a column-based partition of an nb x nb grid.

    Args:
        areas: relative areas per rank (any positive scale; zero allowed
            for processors that should receive no work).
        nb: grid side in b x b blocks.

    Returns:
        A validated :class:`ColumnPartition` whose rectangle areas
        approximate the requested proportions and tile the grid exactly.
    """
    if nb < 1:
        raise PartitionError(f"nb must be >= 1, got {nb}")
    if not areas:
        raise PartitionError("need at least one area")
    if any(a < 0 for a in areas):
        raise PartitionError(f"areas must be non-negative: {areas}")
    total = float(sum(areas))
    if total <= 0.0:
        raise PartitionError("at least one area must be positive")

    order = sorted(range(len(areas)), key=lambda i: areas[i], reverse=True)
    sorted_norm = [areas[i] / total for i in order]

    # Processors with zero area are kept out of the DP and attached as
    # zero-size rectangles afterwards.
    positive = [a for a in sorted_norm if a > 0.0]
    counts = _optimal_column_counts(positive)

    # Continuous column widths, then integer widths on the block grid.
    widths_cont: List[float] = []
    idx = 0
    for k in counts:
        widths_cont.append(sum(positive[idx: idx + k]) * nb)
        idx += k
    widths = round_preserving_sum(widths_cont, nb)
    # Every non-empty column needs at least one block column.
    for j in range(len(widths)):
        while widths[j] == 0:
            donor = max(range(len(widths)), key=lambda q: widths[q])
            if widths[donor] <= 1:
                raise PartitionError(
                    f"grid of {nb} columns cannot host {len(widths)} processor columns"
                )
            widths[donor] -= 1
            widths[j] += 1

    rectangles: List[Rectangle] = [None] * len(areas)  # type: ignore[list-item]
    col_start = 0
    idx = 0
    for j, k in enumerate(counts):
        group = positive[idx: idx + k]
        group_ranks = order[idx: idx + k]
        idx += k
        group_total = sum(group)
        heights_cont = [a / group_total * nb for a in group]
        heights = round_preserving_sum(heights_cont, nb)
        row_start = 0
        for rank, h in zip(group_ranks, heights):
            rectangles[rank] = Rectangle(
                rank=rank, row=row_start, col=col_start, height=h, width=widths[j]
            )
            row_start += h
        col_start += widths[j]
    # Zero-area processors: empty rectangles pinned to the grid origin.
    for rank_pos in range(idx, len(order)):
        rank = order[rank_pos]
        rectangles[rank] = Rectangle(rank=rank, row=0, col=0, height=0, width=0)

    partition = ColumnPartition(nb=nb, column_widths=widths, rectangles=rectangles)
    partition.validate()
    return partition
