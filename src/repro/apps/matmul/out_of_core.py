"""An out-of-core GEMM block-update kernel.

Section 4.1 of the paper: "Due to limited GPU memory, the execution time of
GPU kernels can be measured only within some range of problem sizes, unless
out-of-core implementations, which address this limitation, are available
... The performance of out-of-core routines can also be measured from the
host CPU core."

This kernel is the out-of-core counterpart of
:class:`~repro.apps.matmul.kernel.GemmBlockKernel`: the submatrices live in
disk-backed ``numpy.memmap`` arrays and the update ``C_i += A_(b) B_(b)``
streams through C in row panels, touching only ``panel_blocks`` block rows
of C (plus the pivot buffers) in memory at a time.  Measured through the
ordinary :class:`~repro.core.benchmark.Benchmark`, it produces the
characteristic out-of-core speed function -- lower and flatter than the
in-core kernel -- with no special cases anywhere else in the framework.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.apps.matmul.kernel import block_grid_shape
from repro.core.kernel import ComputationKernel, KernelContext
from repro.errors import BenchmarkError


@dataclass
class _OocWorkspace:
    tmpdir: tempfile.TemporaryDirectory
    a_sub: np.ndarray  # memmap, (m*b, n*b)
    b_sub: np.ndarray  # memmap, (m*b, n*b)
    c_sub: np.ndarray  # memmap, (m*b, n*b)
    a_buf: np.ndarray  # in-core, (m*b, b)
    b_buf: np.ndarray  # in-core, (b, n*b)
    m: int
    n: int


class OutOfCoreGemmKernel(ComputationKernel):
    """Disk-backed GEMM block update, streamed in row panels.

    Args:
        b: blocking factor (block side in elements).
        panel_blocks: how many block rows of C are resident at once --
            the kernel's in-core working set is
            ``panel_blocks * b * n * b`` elements plus the pivot buffers.
        workdir: directory for the backing files (a temporary directory
            inside it is created per context; the system default otherwise).
    """

    def __init__(
        self,
        b: int = 32,
        panel_blocks: int = 4,
        workdir: Optional[str] = None,
    ) -> None:
        if b < 1:
            raise BenchmarkError(f"blocking factor must be >= 1, got {b}")
        if panel_blocks < 1:
            raise BenchmarkError(f"panel_blocks must be >= 1, got {panel_blocks}")
        self.b = b
        self.panel_blocks = panel_blocks
        self.workdir = workdir
        self.name = f"gemm-ooc-b{b}-p{panel_blocks}"

    def complexity(self, d: int) -> float:
        m, n = block_grid_shape(d)
        return 2.0 * (m * self.b) * (n * self.b) * self.b

    def initialize(self, d: int) -> KernelContext:
        ctx = super().initialize(d)
        m, n = block_grid_shape(d)
        b = self.b
        tmpdir = tempfile.TemporaryDirectory(
            prefix="fupermod-ooc-", dir=self.workdir
        )
        root = Path(tmpdir.name)

        def backed(name: str, fill: Optional[float]) -> np.ndarray:
            arr = np.memmap(
                root / name, dtype=np.float64, mode="w+", shape=(m * b, n * b)
            )
            if fill is not None:
                arr[:] = fill
            else:
                rng = np.random.default_rng(42)
                # Fill panel-by-panel to keep initialisation out-of-core too.
                for row in range(0, m * b, self.panel_blocks * b):
                    stop = min(row + self.panel_blocks * b, m * b)
                    arr[row:stop] = rng.random((stop - row, n * b))
            arr.flush()
            return arr

        ctx.payload = _OocWorkspace(
            tmpdir=tmpdir,
            a_sub=backed("a.bin", None),
            b_sub=backed("b.bin", None),
            c_sub=backed("c.bin", 0.0),
            a_buf=np.empty((m * b, b)),
            b_buf=np.empty((b, n * b)),
            m=m,
            n=n,
        )
        return ctx

    def execute(self, context: KernelContext) -> float:
        ws: _OocWorkspace = context.payload
        b = self.b
        start = time.perf_counter()
        # Local-communication replica: gather the pivot column/row.
        ws.a_buf[:, :] = ws.a_sub[:, :b]
        ws.b_buf[:, :] = ws.b_sub[:b, :]
        # Stream C in row panels: load, update, write back.
        panel_rows = self.panel_blocks * b
        total_rows = ws.m * b
        for row in range(0, total_rows, panel_rows):
            stop = min(row + panel_rows, total_rows)
            panel = np.asarray(ws.c_sub[row:stop])      # read from disk
            panel += ws.a_buf[row:stop] @ ws.b_buf      # in-core update
            ws.c_sub[row:stop] = panel                  # write back
        ws.c_sub.flush()
        return time.perf_counter() - start

    def finalize(self, context: KernelContext) -> None:
        ws: Optional[_OocWorkspace] = context.payload
        if ws is not None:
            # Release the memmaps before removing their backing files.
            del ws.a_sub, ws.b_sub, ws.c_sub
            ws.tmpdir.cleanup()
        super().finalize(context)
