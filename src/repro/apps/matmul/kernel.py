"""The matrix-multiplication computation kernel of Section 4.1.

One *computation unit* is the update of one b x b block of C with a b-wide
pivot column of A and pivot row of B.  A processor assigned ``d`` units owns
a near-square submatrix of ``m x n`` blocks with ``m = floor(sqrt(d))`` and
``n = d // m`` (the paper's definition), and the kernel performs

    C_i += A_(b) x B_(b)

where ``A_(b)`` is ``(m b) x b`` and ``B_(b)`` is ``b x (n b)``.  To
replicate the local overhead of the application's MPI communication, the
kernel first copies slices of the stored submatrices into the working
buffers, then calls GEMM once -- same memory-access pattern, hence nearly
the same speed as the full application.

The complexity of ``d`` units is ``2 (m b)(n b) b`` arithmetic operations
(the paper's formula); note ``m * n`` can fall slightly below ``d`` because
of the near-square snapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.kernel import ComputationKernel, KernelContext
from repro.errors import BenchmarkError


def block_grid_shape(d: int) -> "tuple[int, int]":
    """Near-square ``(m, n)`` block shape for ``d`` computation units."""
    if d < 1:
        raise BenchmarkError(f"need at least one computation unit, got {d}")
    m = int(math.floor(math.sqrt(d)))
    n = d // m
    return m, n


def gemm_unit_flops(b: int) -> float:
    """Arithmetic operations of one b x b block update (``2 b^3``)."""
    if b < 1:
        raise BenchmarkError(f"blocking factor must be >= 1, got {b}")
    return 2.0 * b * b * b


@dataclass
class _GemmWorkspace:
    a_sub: np.ndarray
    b_sub: np.ndarray
    c_sub: np.ndarray
    a_buf: np.ndarray
    b_buf: np.ndarray


class GemmBlockKernel(ComputationKernel):
    """Real (numpy) GEMM block-update kernel, timed with ``perf_counter``.

    Args:
        b: the blocking factor, adjusting granularity of computations.
        dtype: matrix element type (float64 by default, as in the paper's
            double-precision GEMM).
    """

    def __init__(self, b: int = 32, dtype: type = np.float64) -> None:
        if b < 1:
            raise BenchmarkError(f"blocking factor must be >= 1, got {b}")
        self.b = b
        self.dtype = dtype
        self.name = f"gemm-block-b{b}"

    def complexity(self, d: int) -> float:
        m, n = block_grid_shape(d)
        return 2.0 * (m * self.b) * (n * self.b) * self.b

    def initialize(self, d: int) -> KernelContext:
        ctx = super().initialize(d)
        m, n = block_grid_shape(d)
        b = self.b
        rng = np.random.default_rng(42)
        ctx.payload = _GemmWorkspace(
            a_sub=rng.random((m * b, n * b)).astype(self.dtype),
            b_sub=rng.random((m * b, n * b)).astype(self.dtype),
            c_sub=np.zeros((m * b, n * b), dtype=self.dtype),
            a_buf=np.empty((m * b, b), dtype=self.dtype),
            b_buf=np.empty((b, n * b), dtype=self.dtype),
        )
        return ctx

    def execute(self, context: KernelContext) -> float:
        import time

        ws: _GemmWorkspace = context.payload
        start = time.perf_counter()
        # Replicate the application's local communication overhead: copy
        # the pivot column of A_i and pivot row of B_i into the buffers.
        ws.a_buf[:, :] = ws.a_sub[:, : self.b]
        ws.b_buf[:, :] = ws.b_sub[: self.b, :]
        ws.c_sub += ws.a_buf @ ws.b_buf
        return time.perf_counter() - start
