"""Numerical verification of the 2D matrix partitioning.

The simulation in :mod:`repro.apps.matmul.simulation` models *time*; this
module checks the *mathematics* of the column-based arrangement: if every
processor computes exactly its rectangle of C from its rows of A and
columns of B, the assembled result must equal the full product.  The
examples and tests use it to demonstrate that the partition layouts are
not just well-shaped but actually usable by a real distributed GEMM.
"""

from __future__ import annotations

import numpy as np

from repro.apps.matmul.partition2d import ColumnPartition
from repro.errors import PartitionError


def compute_distributed_matmul(
    a: np.ndarray,
    b: np.ndarray,
    partition: ColumnPartition,
    block: int,
) -> np.ndarray:
    """Compute ``A @ B`` rectangle by rectangle, per the partition.

    Args:
        a, b: square matrices of side ``partition.nb * block``.
        partition: the column-based layout (block coordinates).
        block: the blocking factor ``b`` (elements per block side).

    Returns:
        The assembled product, computed one processor rectangle at a time
        -- rank ``i`` touches only ``A[rows_i, :]`` and ``B[:, cols_i]``,
        exactly the data a real distributed implementation would hold.
    """
    n = partition.nb * block
    if a.shape != (n, n) or b.shape != (n, n):
        raise PartitionError(
            f"matrices must be {n}x{n} for nb={partition.nb}, block={block}; "
            f"got {a.shape} and {b.shape}"
        )
    c = np.zeros((n, n), dtype=np.result_type(a, b))
    covered = np.zeros((partition.nb, partition.nb), dtype=bool)
    for rect in partition.rectangles:
        if rect.area == 0:
            continue
        r0 = rect.row * block
        r1 = (rect.row + rect.height) * block
        c0 = rect.col * block
        c1 = (rect.col + rect.width) * block
        c[r0:r1, c0:c1] = a[r0:r1, :] @ b[:, c0:c1]
        region = covered[rect.row: rect.row + rect.height,
                         rect.col: rect.col + rect.width]
        if region.any():
            raise PartitionError(f"rectangle of rank {rect.rank} overlaps another")
        covered[rect.row: rect.row + rect.height,
                rect.col: rect.col + rect.width] = True
    if not covered.all():
        raise PartitionError("rectangles do not cover the whole grid")
    return c


def verify_partition_math(
    partition: ColumnPartition,
    block: int = 4,
    seed: int = 0,
    atol: float = 1e-10,
) -> float:
    """Check a partition against numpy's full product on random matrices.

    Returns the maximum absolute deviation (raises via assert-like
    :class:`PartitionError` when the layout is inconsistent).
    """
    n = partition.nb * block
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    ours = compute_distributed_matmul(a, b, partition, block)
    reference = a @ b
    deviation = float(np.max(np.abs(ours - reference)))
    if deviation > atol * max(1.0, float(np.max(np.abs(reference)))):
        raise PartitionError(
            f"distributed product deviates by {deviation} from numpy"
        )
    return deviation
