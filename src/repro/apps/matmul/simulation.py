"""Simulation of the heterogeneous parallel matrix multiplication.

One iteration of the main loop (Fig. 1(a) of the paper): the pivot column
of A and pivot row of B are broadcast horizontally and vertically, and each
processor updates its submatrix C_i with one GEMM call.  The simulator
prices, per iteration and per rank:

* communication -- receiving ``m_i * b * b`` elements of the pivot column
  and ``b * n_i * b`` elements of the pivot row from the pivot owner
  (Hockney model over the platform-aware network); the pivot owner rotates
  over ranks, as the pivot moves across the matrix;
* computation -- ``2 m_i n_i b^3`` flops on the rank's device, i.e. the
  computation kernel at problem size ``d_i = m_i * n_i``.

Iterations are separated by a synchronisation (the broadcast of the next
pivot cannot start before it is produced), so the per-iteration time is the
maximum over ranks and the total is the sum over ``nb`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.apps.matmul.kernel import gemm_unit_flops
from repro.apps.matmul.partition2d import ColumnPartition, partition_columns
from repro.errors import PartitionError
from repro.faults.plan import FaultPlan
from repro.faults.report import ResilienceReport
from repro.mpi.network import Network
from repro.platform.cluster import Platform
from repro.platform.trace import TraceRecorder


@dataclass(frozen=True)
class MatmulResult:
    """Outcome of a simulated matrix multiplication run.

    Attributes:
        total_time: virtual makespan in seconds.
        compute_time: per-rank total computation seconds.
        comm_time: per-rank total communication seconds.
        iteration_times: per-iteration makespans.
        areas: per-rank block areas actually assigned (``d_i``); under
            faults, the areas of the *final* (post-crash) partition.
        failed_ranks: ranks that crashed mid-run (empty without faults).
    """

    total_time: float
    compute_time: List[float]
    comm_time: List[float]
    iteration_times: List[float]
    areas: List[int]
    failed_ranks: List[int] = field(default_factory=list)

    @property
    def compute_imbalance(self) -> float:
        """Relative imbalance of total per-rank compute times."""
        active = [t for t, a in zip(self.compute_time, self.areas) if a > 0]
        if not active:
            return 0.0
        tmax = max(active)
        if tmax <= 0.0:
            return 0.0
        return (tmax - min(active)) / tmax


def simulate_matmul(
    platform: Platform,
    partition: ColumnPartition,
    b: int,
    element_bytes: int = 8,
    network: Optional[Network] = None,
    seed: int = 0,
    trace: Optional[TraceRecorder] = None,
    fault_plan: Optional[FaultPlan] = None,
    report: Optional[ResilienceReport] = None,
) -> MatmulResult:
    """Run the simulated parallel matrix multiplication.

    Args:
        platform: the simulated platform; rank ``i`` runs on
            ``platform.devices[i]``.
        partition: 2D column-based partition of the ``nb x nb`` block grid
            (one rectangle per rank).
        b: blocking factor (block side in elements).
        element_bytes: bytes per matrix element.
        network: communication model (platform-aware default).
        seed: seed for per-rank timing noise.
        trace: optional execution-trace recorder (per-iteration comm and
            compute spans; iterations are barrier-separated).
        fault_plan: optional :class:`~repro.faults.FaultPlan`.  A rank
            whose ``crash_at`` is ``k`` (counted in pivot iterations)
            dies before iteration ``k``; the block grid is re-tiled over
            the survivors in proportion to their current areas and the
            remaining iterations complete with the survivors (a real
            implementation would restore the lost submatrix from its last
            checkpoint).  Straggler factors slow the affected ranks.
        report: optional :class:`~repro.faults.ResilienceReport`.

    Returns:
        A :class:`MatmulResult` with virtual times.
    """
    if partition.size != platform.size:
        raise PartitionError(
            f"partition has {partition.size} rectangles for "
            f"{platform.size} devices"
        )
    net = network if network is not None else Network(platform=platform)
    nb = partition.nb
    unit_flops = gemm_unit_flops(b)
    rngs = [np.random.default_rng(seed + 7919 * r) for r in range(platform.size)]

    areas = partition.areas()
    active = [r for r in range(platform.size) if areas[r] > 0]
    failed: List[int] = []
    compute_time = [0.0] * platform.size
    comm_time = [0.0] * platform.size
    iteration_times: List[float] = []

    elapsed = 0.0
    for k in range(nb):
        # --- scripted crashes: re-tile the grid over the survivors -------
        if fault_plan is not None:
            crashed_now = [
                r for r in active
                if fault_plan.for_rank(r).crash_at is not None
                and k >= fault_plan.for_rank(r).crash_at
            ]
            if crashed_now:
                for r in crashed_now:
                    failed.append(r)
                    if report is not None:
                        report.quarantine(
                            r, platform.device(r).name, 0, "crash"
                        )
                weights = [
                    0.0 if r in failed else float(areas[r])
                    for r in range(platform.size)
                ]
                partition = partition_columns(weights, nb)
                areas = partition.areas()
                active = [r for r in range(platform.size) if areas[r] > 0]
                if report is not None:
                    report.record(
                        "repartition", -1, f"iteration {k}: areas {areas}"
                    )

        pivot_owner = active[k % len(active)]
        iter_makespan = 0.0
        for r in active:
            rect = partition.rectangles[r]
            # Pivot data this rank needs for its update.
            recv_bytes = (rect.height + rect.width) * b * b * element_bytes
            c = 0.0
            if r != pivot_owner:
                c = net.time(pivot_owner, r, recv_bytes)
            contention = platform.group_contention(r, active)
            t = platform.device(r).execution_time(
                unit_flops * areas[r], areas[r], rngs[r], contention_factor=contention
            )
            if fault_plan is not None:
                t *= fault_plan.for_rank(r).straggler_factor
            comm_time[r] += c
            compute_time[r] += t
            iter_makespan = max(iter_makespan, c + t)
            if trace is not None:
                if c > 0.0:
                    trace.comm(r, elapsed, elapsed + c, f"pivot {k}")
                trace.compute(r, elapsed + c, elapsed + c + t, f"update {k}")
        iteration_times.append(iter_makespan)
        elapsed += iter_makespan

    return MatmulResult(
        total_time=sum(iteration_times),
        compute_time=compute_time,
        comm_time=comm_time,
        iteration_times=iteration_times,
        areas=areas,
        failed_ranks=sorted(failed),
    )


def even_column_partition(size: int, nb: int) -> ColumnPartition:
    """The homogeneous baseline: equal-width vertical slices.

    What a homogeneity-assuming code would do; used by the ablation
    benches as the "no model" baseline.
    """
    from repro.apps.matmul.partition2d import partition_columns

    return partition_columns([1.0] * size, nb)


def areas_from_sizes(sizes: Sequence[int]) -> List[float]:
    """Adapter: a partitioner's per-rank unit counts as relative areas."""
    return [float(d) for d in sizes]
