"""Explicit 2D heat diffusion with numpy.

The update is the classic 5-point stencil

    u'[i,j] = u[i,j] + alpha * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1]
                                - 4 u[i,j])

with Dirichlet boundaries (the boundary rows/columns are held fixed).
``alpha <= 0.25`` keeps the explicit scheme stable.  Row-sliced variants
let the distributed simulation compute each rank's slab independently,
given the neighbour halo rows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FuPerModError

#: Default diffusion coefficient (stable for the 5-point stencil).
DEFAULT_ALPHA = 0.2


def init_grid(ny: int, nx: int, hot_value: float = 100.0) -> np.ndarray:
    """A cold grid with a hot top boundary (classic heat-plate setup)."""
    if ny < 3 or nx < 3:
        raise FuPerModError(f"grid must be at least 3x3, got {ny}x{nx}")
    grid = np.zeros((ny, nx))
    grid[0, :] = hot_value
    return grid


def heat_step_rows(
    grid: np.ndarray,
    row_start: int,
    row_count: int,
    alpha: float = DEFAULT_ALPHA,
) -> np.ndarray:
    """One stencil update restricted to rows ``[row_start, row_start+row_count)``.

    Rows 0 and ny-1 (the Dirichlet boundary) are returned unchanged.  The
    caller must ensure ``grid`` contains up-to-date values for the rows
    directly above and below the slab (the halo).
    """
    ny, _nx = grid.shape
    if row_count == 0:
        return np.empty((0, grid.shape[1]), dtype=grid.dtype)
    if row_start < 0 or row_start + row_count > ny:
        raise FuPerModError(
            f"slab [{row_start}, {row_start + row_count}) outside grid of {ny} rows"
        )
    if not 0.0 < alpha <= 0.25:
        raise FuPerModError(f"alpha must be in (0, 0.25] for stability, got {alpha}")
    out = grid[row_start: row_start + row_count].copy()
    # Interior rows of the slab (Dirichlet rows 0 and ny-1 stay fixed).
    i0 = max(row_start, 1)
    i1 = min(row_start + row_count, ny - 1)
    if i1 > i0:
        centre = grid[i0:i1, 1:-1]
        update = centre + alpha * (
            grid[i0 - 1: i1 - 1, 1:-1]
            + grid[i0 + 1: i1 + 1, 1:-1]
            + grid[i0:i1, :-2]
            + grid[i0:i1, 2:]
            - 4.0 * centre
        )
        out[i0 - row_start: i1 - row_start, 1:-1] = update
    return out


def heat_step(grid: np.ndarray, alpha: float = DEFAULT_ALPHA) -> np.ndarray:
    """One full stencil sweep (all rows)."""
    out = grid.copy()
    out[0:grid.shape[0]] = heat_step_rows(grid, 0, grid.shape[0], alpha)
    return out


def row_flops(nx: int) -> float:
    """Arithmetic operations to update one grid row (~6 per cell)."""
    return 6.0 * nx
