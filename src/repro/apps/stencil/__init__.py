"""A CFD-style 2D stencil application (explicit heat diffusion).

The paper's introduction motivates data partitioning with "computer
simulations, such as computational fluid dynamics" -- iterative stencil
codes over meshes.  This application is the simplest honest member of that
family: explicit finite-difference heat diffusion on a 2D grid, rows
distributed in contiguous slabs, *halo exchange* with the two neighbouring
ranks each iteration (a fundamentally different communication pattern from
Jacobi's allgather) and an allreduce for the global convergence test.

As with the other applications: the mathematics is real numpy, the timing
is virtual, and the dynamic load balancer from the core framework keeps
the slabs proportional to the devices' measured speeds.
"""

from repro.apps.stencil.distributed import (
    StencilIterationRecord,
    StencilRunResult,
    run_balanced_stencil,
)
from repro.apps.stencil.solver import (
    heat_step,
    heat_step_rows,
    init_grid,
    row_flops,
)

__all__ = [
    "StencilIterationRecord",
    "StencilRunResult",
    "heat_step",
    "heat_step_rows",
    "init_grid",
    "row_flops",
    "run_balanced_stencil",
]
