"""The distributed stencil application under dynamic load balancing.

Each rank owns a contiguous slab of grid rows.  One iteration:

1. **halo exchange** -- every pair of neighbouring slabs swaps one grid
   row (bidirectional :meth:`~repro.mpi.comm.SimCommunicator.exchange`);
2. **local update** -- the 5-point stencil over the slab (real numpy,
   virtual time from the rank's simulated device);
3. **convergence test** -- allreduce of the local max-change (8 bytes);
4. **load balancing** -- the observed compute times feed the framework's
   :class:`~repro.core.LoadBalancer`; when it repartitions, the rows that
   move between slabs are priced as point-to-point transfers.

The communication pattern -- O(1)-sized neighbour halos instead of
Jacobi's O(n) allgather -- is the one CFD codes actually have, which makes
this the substrate for comparing patterns under the same balancing
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.apps.stencil.solver import DEFAULT_ALPHA, heat_step_rows, init_grid, row_flops
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.redistribution import apply_plan_cost, redistribution_plan
from repro.degrade import DegradationPolicy, DegradationReport
from repro.errors import PartitionError
from repro.faults.inject import FaultyCommunicator
from repro.faults.plan import FaultPlan
from repro.faults.report import ResilienceReport
from repro.mpi.comm import SimCommunicator
from repro.mpi.network import Network
from repro.platform.cluster import Platform
from repro.platform.perturbation import PerturbationSchedule
from repro.platform.trace import TraceRecorder


@dataclass(frozen=True)
class StencilIterationRecord:
    """What happened in one stencil iteration.

    Attributes:
        iteration: 1-based iteration number.
        sizes: per-rank row counts used this iteration.
        compute_times: per-rank virtual compute seconds.
        makespan: slowest rank's compute + communication this iteration.
        change: global max-change of the field this iteration.
        rebalanced: whether the balancer issued a new distribution.
    """

    iteration: int
    sizes: List[int]
    compute_times: List[float]
    makespan: float
    change: float
    rebalanced: bool


@dataclass(frozen=True)
class StencilRunResult:
    """Outcome of a balanced distributed stencil run.

    Attributes:
        records: one record per iteration.
        grid: the final field.
        total_time: virtual makespan of the whole run.
        final_sizes: the last distribution's row counts.
        failed_ranks: ranks that crashed mid-run (empty without faults).
        degradation: the fallback ladder's audit trail when the run was
            guarded by a :class:`~repro.degrade.DegradationPolicy`
            (``None`` otherwise).
    """

    records: List[StencilIterationRecord]
    grid: np.ndarray
    total_time: float
    final_sizes: List[int]
    failed_ranks: List[int] = field(default_factory=list)
    degradation: Optional[DegradationReport] = None

    @property
    def iteration_makespans(self) -> List[float]:
        """Per-iteration makespans."""
        return [r.makespan for r in self.records]


def _offsets(sizes: List[int]) -> List[int]:
    out = [0]
    for d in sizes:
        out.append(out[-1] + d)
    return out


def run_balanced_stencil(
    platform: Platform,
    balancer: LoadBalancer,
    nx: int,
    alpha: float = DEFAULT_ALPHA,
    eps: float = 1e-6,
    max_iterations: int = 200,
    element_bytes: int = 8,
    network: Optional[Network] = None,
    noise_seed: int = 0,
    trace: Optional[TraceRecorder] = None,
    perturbations: Optional[PerturbationSchedule] = None,
    fault_plan: Optional[FaultPlan] = None,
    report: Optional[ResilienceReport] = None,
    policy: Optional[DegradationPolicy] = None,
) -> StencilRunResult:
    """Run the row-slab heat stencil under dynamic load balancing.

    Args:
        platform: simulated platform (rank ``i`` = ``platform.devices[i]``).
        balancer: a :class:`~repro.core.LoadBalancer` whose ``total`` is
            the number of grid rows (``ny``).
        nx: grid width; one computation unit = one grid row of ``nx``
            cells.
        alpha: diffusion coefficient (stability requires <= 0.25).
        eps: stop when the global max-change falls below this.
        max_iterations: iteration cap.
        element_bytes: bytes per grid element.
        network: communication model (platform-aware default).
        noise_seed: device timing noise seed.
        trace: optional execution-trace recorder.
        perturbations: optional time-varying speed episodes.
        fault_plan: optional :class:`~repro.faults.FaultPlan`; ranks with
            a ``crash_at`` (counted in application iterations) die before
            starting that iteration, their slab is redistributed to the
            survivors, and the run completes with the survivors.
            Straggler factors slow the affected ranks' compute.
        report: optional :class:`~repro.faults.ResilienceReport`.
        policy: optional :class:`~repro.degrade.DegradationPolicy`
            guarding the balancer's partition function: a mid-run
            repartitioning failure degrades down the ladder (recorded in
            the result's ``degradation`` report) instead of aborting.

    Returns:
        A :class:`StencilRunResult`.
    """
    if policy is not None:
        balancer.partition = policy.wrap(balancer.partition)
    if balancer.dist.size != platform.size:
        raise PartitionError(
            f"balancer has {balancer.dist.size} parts for {platform.size} devices"
        )
    ny = balancer.total
    grid = init_grid(ny, nx)
    net = network if network is not None else Network(platform=platform)
    if fault_plan is not None:
        if report is None:
            report = ResilienceReport(survivors=list(range(platform.size)))
        # Crashes are scheduled here, per application iteration; the
        # communicator only injects the probabilistic collective drops.
        comm: SimCommunicator = FaultyCommunicator(
            platform.size, plan=fault_plan.without_crashes(), network=net,
            report=report,
        )
    else:
        comm = SimCommunicator(platform.size, network=net)
    rngs = [np.random.default_rng(noise_seed + 15485863 * r) for r in range(platform.size)]
    unit_flops = row_flops(nx)
    halo_bytes = nx * element_bytes

    records: List[StencilIterationRecord] = []
    failed: List[int] = []
    sizes = balancer.dist.sizes
    change = float("inf")
    iteration = 0
    while change > eps and iteration < max_iterations:
        iteration += 1

        # --- scripted crashes: quarantine and evacuate -------------------
        if fault_plan is not None:
            for r in range(platform.size):
                spec = fault_plan.for_rank(r)
                if (r not in failed and spec.crash_at is not None
                        and iteration - 1 >= spec.crash_at):
                    failed.append(r)
                    if isinstance(comm, FaultyCommunicator):
                        comm.mark_dead(r)
                    report.quarantine(r, platform.device(r).name, 0, "crash")
                    old_sizes = balancer.dist.sizes
                    new_sizes = balancer.quarantine(r).sizes
                    report.record(
                        "repartition", -1,
                        f"iter {iteration}: rows {old_sizes} -> {new_sizes}",
                    )
                    _price_row_moves(
                        comm, old_sizes, new_sizes, nx, element_bytes,
                        dead=failed,
                    )
            sizes = balancer.dist.sizes

        offsets = _offsets(sizes)
        t_before = comm.max_time()
        active = [r for r in range(platform.size) if sizes[r] > 0]

        # --- halo exchange between neighbouring non-empty slabs ----------
        for left, right in zip(active, active[1:]):
            start = max(comm.time(left), comm.time(right))
            comm.exchange(left, right, halo_bytes)
            if trace is not None:
                trace.comm(left, start, comm.time(left), f"halo {iteration}")
                trace.comm(right, start, comm.time(right), f"halo {iteration}")

        # --- local stencil update (real math, virtual time) --------------
        new_grid = grid.copy()
        compute_times: List[float] = []
        for r in range(platform.size):
            d = sizes[r]
            if d == 0:
                compute_times.append(0.0)
                continue
            new_grid[offsets[r]: offsets[r] + d] = heat_step_rows(
                grid, offsets[r], d, alpha
            )
            contention = platform.group_contention(r, active)
            if perturbations is not None:
                contention *= perturbations.factor(r, comm.time(r))
            t = platform.device(r).execution_time(
                unit_flops * d, d, rngs[r], contention_factor=contention
            )
            if fault_plan is not None:
                t *= fault_plan.for_rank(r).straggler_factor
            compute_times.append(t)
            span_start = comm.time(r)
            comm.compute(r, t)
            if trace is not None:
                trace.compute(r, span_start, comm.time(r), f"iter {iteration}")

        # --- global convergence test (allreduce of one double) -----------
        change = float(np.max(np.abs(new_grid - grid)))
        comm.allreduce(element_bytes)
        grid = new_grid

        # --- load balancing ----------------------------------------------
        old_sizes = sizes
        new_dist = balancer.iterate(compute_times)
        new_sizes = new_dist.sizes
        rebalanced = new_sizes != old_sizes
        if rebalanced:
            if trace is not None:
                for r in range(platform.size):
                    trace.marker(r, comm.time(r), f"rebalance {iteration}")
            _price_row_moves(
                comm, old_sizes, new_sizes, nx, element_bytes, dead=failed
            )
        t_after = comm.barrier()
        records.append(
            StencilIterationRecord(
                iteration=iteration,
                sizes=list(old_sizes),
                compute_times=compute_times,
                makespan=t_after - t_before,
                change=change,
                rebalanced=rebalanced,
            )
        )
        sizes = new_sizes

    return StencilRunResult(
        records=records,
        grid=grid,
        total_time=comm.max_time(),
        final_sizes=list(sizes),
        failed_ranks=sorted(failed),
        degradation=policy.report if policy is not None else None,
    )


def _price_row_moves(
    comm: SimCommunicator,
    old_sizes: List[int],
    new_sizes: List[int],
    nx: int,
    element_bytes: int,
    dead: Optional[List[int]] = None,
) -> None:
    """Charge the transfers of grid rows between consecutive layouts.

    Transfers touching a dead rank are not charged: its slab is restored
    from the last checkpoint, not fetched from the crashed peer.
    """
    plan = redistribution_plan(old_sizes, new_sizes)
    if dead:
        plan = [t for t in plan if t.source not in dead and t.dest not in dead]
    apply_plan_cost(comm, plan, nx * element_bytes)
