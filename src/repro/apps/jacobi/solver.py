"""The Jacobi iterative method, implemented with numpy.

The method solves ``A x = b`` for diagonally dominant ``A`` by

    x_i^{k+1} = (b_i - sum_{j != i} A_ij x_j^k) / A_ii

Row-sliced variants are provided so the distributed simulation can compute
each rank's rows independently, exactly as the row-partitioned MPI
application of the paper does, and allgather the slices afterwards.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import FuPerModError


def generate_system(
    n: int,
    seed: int = 0,
    dominance: float = 2.0,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Generate a strictly diagonally dominant system ``A x* = b``.

    Args:
        n: system size.
        seed: RNG seed.
        dominance: the diagonal is set to ``dominance * sum(|off-diag|)``,
            so values > 1 guarantee Jacobi convergence.

    Returns:
        ``(A, b, x_star)`` where ``x_star`` is the exact solution used to
        manufacture ``b``.
    """
    if n < 1:
        raise FuPerModError(f"system size must be >= 1, got {n}")
    if dominance <= 1.0:
        raise FuPerModError(f"dominance must be > 1 for convergence, got {dominance}")
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    np.fill_diagonal(a, 0.0)
    row_sums = np.sum(np.abs(a), axis=1)
    np.fill_diagonal(a, dominance * np.maximum(row_sums, 1.0))
    x_star = rng.uniform(-1.0, 1.0, size=n)
    b = a @ x_star
    return a, b, x_star


def jacobi_rows(
    a: np.ndarray,
    b: np.ndarray,
    x: np.ndarray,
    row_start: int,
    row_count: int,
) -> np.ndarray:
    """One Jacobi update restricted to rows ``[row_start, row_start+row_count)``.

    Returns the new values of those solution components only -- this is the
    local work of one rank in the row-partitioned application.
    """
    if row_count == 0:
        return np.empty(0, dtype=x.dtype)
    rows = slice(row_start, row_start + row_count)
    a_slice = a[rows, :]
    diag = np.diagonal(a)[rows]
    sigma = a_slice @ x - diag * x[rows]
    return (b[rows] - sigma) / diag


def jacobi_iteration(a: np.ndarray, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One full Jacobi sweep (all rows)."""
    return jacobi_rows(a, b, x, 0, a.shape[0])


def jacobi_solve(
    a: np.ndarray,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    eps: float = 1e-10,
    max_iterations: int = 10000,
) -> "tuple[np.ndarray, int, float]":
    """Solve ``A x = b`` by Jacobi iteration.

    Returns:
        ``(x, iterations, final_error)`` where the error is the infinity
        norm of successive-iterate differences at termination.
    """
    n = a.shape[0]
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    error = float("inf")
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        x_new = jacobi_iteration(a, b, x)
        error = float(np.max(np.abs(x_new - x)))
        x = x_new
        if error <= eps:
            break
    return x, iterations, error


def row_flops(n: int) -> float:
    """Arithmetic operations to update one row of an n x n system (~2n)."""
    return 2.0 * n
