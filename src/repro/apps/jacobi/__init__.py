"""The Jacobi method with dynamic load balancing (Section 4.4, Fig. 4).

The application distributes the matrix and vectors by rows and iteratively
solves the linear system; at each iteration the load balancer feeds the
observed per-rank times into partial functional performance models and
redistributes the rows when the imbalance warrants it.

* :mod:`repro.apps.jacobi.solver` -- the real (numpy) Jacobi iteration and
  system generator: the simulated runs solve genuine linear systems, only
  the *timing* is virtual;
* :mod:`repro.apps.jacobi.distributed` -- the distributed application on a
  simulated platform, wired to :class:`repro.core.LoadBalancer`.
"""

from repro.apps.jacobi.distributed import JacobiIterationRecord, JacobiRunResult, run_balanced_jacobi
from repro.apps.jacobi.solver import generate_system, jacobi_iteration, jacobi_solve

__all__ = [
    "JacobiIterationRecord",
    "JacobiRunResult",
    "generate_system",
    "jacobi_iteration",
    "jacobi_solve",
    "run_balanced_jacobi",
]
