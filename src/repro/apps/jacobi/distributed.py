"""The distributed Jacobi application with dynamic load balancing.

This mirrors the source-code listing at the end of Section 4.4 of the
paper: partial piecewise FPMs are built at runtime from the timings of real
Jacobi iterations; each iteration the load balancer invokes the geometrical
partitioning algorithm and the rows are redistributed accordingly.

The mathematics is real (numpy solves an actual diagonally dominant
system); the *timing* is virtual: each rank's compute time comes from its
simulated device at its current row count, the allgather of solution
slices and the redistribution of matrix rows are priced by the
message-passing simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:
    from repro.serve.engine import PlanEngine

import numpy as np

from repro.apps.jacobi.solver import generate_system, jacobi_rows, row_flops
from repro.core.partition.dist import Distribution
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.redistribution import apply_plan_cost, redistribution_plan
from repro.degrade import DegradationPolicy, DegradationReport
from repro.errors import PartitionError
from repro.faults.inject import FaultyCommunicator
from repro.faults.plan import FaultPlan
from repro.faults.report import ResilienceReport
from repro.mpi.comm import SimCommunicator
from repro.mpi.network import Network
from repro.platform.cluster import Platform
from repro.platform.perturbation import PerturbationSchedule
from repro.platform.trace import TraceRecorder


@dataclass(frozen=True)
class JacobiIterationRecord:
    """What happened in one application iteration.

    Attributes:
        iteration: 1-based iteration number.
        sizes: per-rank row counts used this iteration.
        compute_times: per-rank virtual compute seconds.
        makespan: slowest rank's compute + communication this iteration.
        comm_time: communication seconds (allgather + any redistribution
            that preceded the iteration).
        error: infinity-norm change of the solution this iteration.
        rebalanced: whether the balancer issued a new distribution.
    """

    iteration: int
    sizes: List[int]
    compute_times: List[float]
    makespan: float
    comm_time: float
    error: float
    rebalanced: bool


@dataclass(frozen=True)
class JacobiRunResult:
    """Outcome of a balanced distributed Jacobi run.

    Attributes:
        records: one record per iteration.
        solution: the computed solution vector.
        solution_error: infinity-norm distance to the exact solution.
        total_time: virtual makespan of the whole run.
        final_sizes: the last distribution's row counts.
        failed_ranks: ranks that crashed mid-run (empty without faults);
            the survivors completed the run with their workload.
        degradation: the fallback ladder's audit trail when the run was
            guarded by a :class:`~repro.degrade.DegradationPolicy`
            (``None`` otherwise).
    """

    records: List[JacobiIterationRecord]
    solution: np.ndarray
    solution_error: float
    total_time: float
    final_sizes: List[int]
    failed_ranks: List[int] = field(default_factory=list)
    degradation: Optional[DegradationReport] = None

    @property
    def iteration_makespans(self) -> List[float]:
        """Per-iteration makespans -- the series plotted in Fig. 4."""
        return [r.makespan for r in self.records]


def _row_offsets(sizes: List[int]) -> List[int]:
    offsets = [0]
    for d in sizes:
        offsets.append(offsets[-1] + d)
    return offsets


def run_balanced_jacobi(
    platform: Platform,
    balancer: LoadBalancer,
    n: Optional[int] = None,
    matrix_seed: int = 0,
    eps: float = 1e-8,
    max_iterations: int = 60,
    element_bytes: int = 8,
    network: Optional[Network] = None,
    noise_seed: int = 0,
    trace: Optional[TraceRecorder] = None,
    perturbations: Optional[PerturbationSchedule] = None,
    fault_plan: Optional[FaultPlan] = None,
    report: Optional[ResilienceReport] = None,
    policy: Optional[DegradationPolicy] = None,
    engine: Optional["PlanEngine"] = None,
) -> JacobiRunResult:
    """Run the row-distributed Jacobi method under dynamic load balancing.

    Args:
        platform: simulated platform (rank ``i`` = ``platform.devices[i]``).
        balancer: a :class:`~repro.core.LoadBalancer` whose ``total`` is the
            number of matrix rows to distribute.
        n: system size; defaults to ``balancer.total`` (every row is one
            computation unit).
        matrix_seed: seed for the generated diagonally dominant system.
        eps: convergence threshold on the solution change (infinity norm).
        max_iterations: cap on Jacobi iterations.
        element_bytes: bytes per vector/matrix element.
        network: communication model (platform-aware default).
        noise_seed: seed for device timing noise.
        trace: optional :class:`~repro.platform.trace.TraceRecorder`; when
            given, per-rank compute/communication spans and rebalance
            markers are recorded for rendering.
        perturbations: optional time-varying speed episodes (external
            disturbances); the load balancer reacts to them through the
            observed iteration times, exactly as it would in production.
        fault_plan: optional :class:`~repro.faults.FaultPlan`.  A rank
            whose ``crash_at`` is ``k`` (counted in application
            iterations) dies before starting iteration ``k + 1``; the
            balancer quarantines it, its rows are redistributed to the
            survivors (evacuation is served from checkpointed data, so no
            network cost is charged to the dead rank), and the run
            completes with the survivors.  Straggler factors slow the
            affected ranks' compute, which the balancer sees and corrects.
        report: optional :class:`~repro.faults.ResilienceReport`
            collecting crash/drop events and the surviving rank set.
        policy: optional :class:`~repro.degrade.DegradationPolicy`; the
            balancer's partition function is guarded by the fallback
            ladder, so a repartitioning failure mid-run degrades (and is
            recorded in the result's ``degradation`` report) instead of
            aborting the application.
        engine: optional :class:`~repro.serve.PlanEngine`; the balancer's
            repartitioning then flows through the plan cache (the
            engine's default partitioner replaces the balancer's own),
            so a converged loop -- same refitted models, same total --
            stops recomputing, and warm starts speed up the steps that
            do compute.  Composes with ``policy``: the ladder guards the
            cached path.

    Returns:
        A :class:`JacobiRunResult`; its per-iteration makespans reproduce
        the convergence behaviour of Fig. 4.
    """
    if engine is not None:
        balancer.partition = engine.partition_function()
    if policy is not None:
        balancer.partition = policy.wrap(balancer.partition)
    if balancer.dist.size != platform.size:
        raise PartitionError(
            f"balancer has {balancer.dist.size} parts for {platform.size} devices"
        )
    rows_total = balancer.total
    n_sys = n if n is not None else rows_total
    if n_sys < rows_total:
        raise PartitionError(
            f"system size {n_sys} smaller than distributed rows {rows_total}"
        )
    a, b_vec, x_star = generate_system(n_sys, seed=matrix_seed)
    x = np.zeros(n_sys)
    net = network if network is not None else Network(platform=platform)
    if fault_plan is not None:
        if report is None:
            report = ResilienceReport(survivors=list(range(platform.size)))
        # Crashes are scheduled here, per application iteration; the
        # communicator only injects the probabilistic collective drops.
        comm: SimCommunicator = FaultyCommunicator(
            platform.size, plan=fault_plan.without_crashes(), network=net,
            report=report,
        )
    else:
        comm = SimCommunicator(platform.size, network=net)
    rngs = [np.random.default_rng(noise_seed + 104729 * r) for r in range(platform.size)]
    unit_flops = row_flops(n_sys)

    records: List[JacobiIterationRecord] = []
    failed: List[int] = []
    sizes = balancer.dist.sizes
    error = float("inf")
    iteration = 0
    while error > eps and iteration < max_iterations:
        iteration += 1

        # --- scripted crashes: quarantine and evacuate ------------------
        if fault_plan is not None:
            for r in range(platform.size):
                spec = fault_plan.for_rank(r)
                if (r not in failed and spec.crash_at is not None
                        and iteration - 1 >= spec.crash_at):
                    failed.append(r)
                    if isinstance(comm, FaultyCommunicator):
                        comm.mark_dead(r)
                    report.quarantine(
                        r, platform.device(r).name, 0, "crash"
                    )
                    old_sizes = balancer.dist.sizes
                    new_sizes = balancer.quarantine(r).sizes
                    report.record(
                        "repartition", -1,
                        f"iter {iteration}: rows {old_sizes} -> {new_sizes}",
                    )
                    _price_redistribution(
                        comm, old_sizes, new_sizes, n_sys, element_bytes,
                        dead=failed,
                    )
            sizes = balancer.dist.sizes

        offsets = _row_offsets(sizes)
        comm_before = comm.max_time()

        # --- local computation (real math, virtual time) ---------------
        x_new = x.copy()
        compute_times: List[float] = []
        active = [r for r in range(platform.size) if sizes[r] > 0]
        for r in range(platform.size):
            d = sizes[r]
            if d == 0:
                compute_times.append(0.0)
                continue
            x_new[offsets[r]: offsets[r] + d] = jacobi_rows(
                a, b_vec, x, offsets[r], d
            )
            contention = platform.group_contention(r, active)
            if perturbations is not None:
                contention *= perturbations.factor(r, comm.time(r))
            t = platform.device(r).execution_time(
                unit_flops * d, d, rngs[r], contention_factor=contention
            )
            if fault_plan is not None:
                t *= fault_plan.for_rank(r).straggler_factor
            compute_times.append(t)
            span_start = comm.time(r)
            comm.compute(r, t)
            if trace is not None:
                trace.compute(r, span_start, comm.time(r), f"iter {iteration}")
        # Rows beyond rows_total (when n > rows_total) are updated by the
        # "host" rank 0 at no modelled cost -- only distributed rows are
        # load-balanced.
        if n_sys > rows_total:
            x_new[rows_total:] = jacobi_rows(a, b_vec, x, rows_total, n_sys - rows_total)

        # --- allgather of solution slices -------------------------------
        gather_starts = [comm.time(r) for r in range(platform.size)]
        comm.allgatherv([sizes[r] * element_bytes for r in range(platform.size)])
        if trace is not None:
            for r in range(platform.size):
                trace.comm(r, gather_starts[r], comm.time(r), f"allgather {iteration}")

        error = float(np.max(np.abs(x_new - x)))
        x = x_new

        # --- load balancing ---------------------------------------------
        old_sizes = sizes
        new_dist: Distribution = balancer.iterate(compute_times)
        new_sizes = new_dist.sizes
        rebalanced = new_sizes != old_sizes
        if rebalanced:
            if trace is not None:
                for r in range(platform.size):
                    trace.marker(r, comm.time(r), f"rebalance {iteration}")
            _price_redistribution(
                comm, old_sizes, new_sizes, n_sys, element_bytes, dead=failed
            )
        comm_after = comm.barrier()
        makespan = comm_after - comm_before
        comm_time = makespan - max(compute_times) if compute_times else 0.0
        records.append(
            JacobiIterationRecord(
                iteration=iteration,
                sizes=list(old_sizes),
                compute_times=compute_times,
                makespan=makespan,
                comm_time=max(comm_time, 0.0),
                error=error,
                rebalanced=rebalanced,
            )
        )
        sizes = new_sizes

    return JacobiRunResult(
        records=records,
        solution=x,
        solution_error=float(np.max(np.abs(x - x_star))),
        total_time=comm.max_time(),
        final_sizes=list(sizes),
        failed_ranks=sorted(failed),
        degradation=policy.report if policy is not None else None,
    )


def _price_redistribution(
    comm: SimCommunicator,
    old_sizes: List[int],
    new_sizes: List[int],
    n: int,
    element_bytes: int,
    dead: Optional[List[int]] = None,
) -> None:
    """Charge the cost of moving matrix rows between consecutive layouts.

    A row is ``n`` matrix elements plus the right-hand-side entry; the
    transfers come from the shared contiguous redistribution plan.
    Transfers sourced at a dead rank are not charged on the network: that
    data is restored from the last checkpoint, not fetched from the
    crashed peer.
    """
    plan = redistribution_plan(old_sizes, new_sizes)
    if dead:
        plan = [t for t in plan if t.source not in dead and t.dest not in dead]
    apply_plan_cost(comm, plan, (n + 1) * element_bytes)
