"""Tests for the from-scratch Akima spline."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpolationError
from repro.interp.akima import AkimaSpline


class TestConstruction:
    def test_needs_two_distinct_points(self):
        with pytest.raises(InterpolationError):
            AkimaSpline([(1.0, 2.0)])
        with pytest.raises(InterpolationError):
            AkimaSpline([(1.0, 2.0), (1.0, 3.0)])

    def test_two_points_is_straight_line(self):
        f = AkimaSpline([(0.0, 0.0), (10.0, 20.0)])
        assert f(5.0) == pytest.approx(10.0)
        assert f.derivative(3.0) == pytest.approx(2.0)

    def test_duplicate_x_merged(self):
        f = AkimaSpline([(0.0, 0.0), (1.0, 2.0), (1.0, 4.0)])
        assert f(1.0) == pytest.approx(3.0)

    def test_points_sorted(self):
        f = AkimaSpline([(5.0, 5.0), (1.0, 1.0), (3.0, 3.0)])
        assert f.xs == (1.0, 3.0, 5.0)

    def test_sorted_fast_path_matches_unsorted(self):
        # Pre-sorted input takes a single-scan fast path that skips the
        # merge/sort; the resulting spline must be identical to the one
        # built from the same points in scrambled order.
        pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.0, 5.0), (4.0, 4.0)]
        scrambled = [pts[3], pts[0], pts[4], pts[2], pts[1]]
        fast = AkimaSpline(pts, min_y=-100.0)
        slow = AkimaSpline(scrambled, min_y=-100.0)
        assert fast.xs == slow.xs
        assert fast.ys == slow.ys
        for x in np.linspace(-0.5, 4.5, 41):
            assert fast(float(x)) == slow(float(x))
            assert fast.derivative(float(x)) == slow.derivative(float(x))

    def test_sorted_fast_path_rejects_nothing_valid(self):
        # An equal-x pair disables the fast path (merge still happens).
        f = AkimaSpline([(0.0, 0.0), (1.0, 2.0), (1.0, 4.0), (2.0, 6.0)])
        assert f.xs == (0.0, 1.0, 2.0)
        assert f(1.0) == pytest.approx(3.0)


class TestInterpolation:
    def test_passes_through_knots(self):
        pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.0, 5.0), (4.0, 4.0)]
        f = AkimaSpline(pts, min_y=-100.0)
        for x, y in pts:
            assert f(x) == pytest.approx(y, abs=1e-12)

    def test_reproduces_straight_line_exactly(self):
        pts = [(float(x), 2.0 * x + 1.0) for x in range(8)]
        f = AkimaSpline(pts)
        for x in np.linspace(0.0, 7.0, 40):
            assert f(float(x)) == pytest.approx(2.0 * x + 1.0, abs=1e-9)

    def test_reproduces_quadratic_inside(self):
        # Akima reproduces polynomials up to degree 2 on interior intervals.
        pts = [(float(x), float(x * x)) for x in range(10)]
        f = AkimaSpline(pts, min_y=-1e9)
        for x in np.linspace(2.0, 7.0, 25):
            assert f(float(x)) == pytest.approx(x * x, rel=1e-9, abs=1e-9)

    def test_no_oscillation_on_step_like_data(self):
        # Classic Akima 1970 test: flat, then rising. Cubic splines
        # overshoot here; Akima must stay within a modest band.
        pts = [(0, 10.0), (1, 10.0), (2, 10.0), (3, 10.0), (4, 10.0),
               (5, 10.0), (6, 10.5), (7, 15.0), (8, 50.0), (9, 60.0), (10, 85.0)]
        f = AkimaSpline([(float(x), y) for x, y in pts], min_y=-1e9)
        for x in np.linspace(0.0, 5.0, 30):
            assert 9.5 <= f(float(x)) <= 10.6

    def test_continuity_c0(self):
        pts = [(0.0, 0.0), (1.0, 5.0), (2.0, -3.0), (3.0, 7.0), (4.0, 1.0)]
        f = AkimaSpline(pts, min_y=-1e9)
        for knot in [1.0, 2.0, 3.0]:
            left = f(knot - 1e-9)
            right = f(knot + 1e-9)
            assert left == pytest.approx(right, abs=1e-6)

    def test_continuity_c1(self):
        pts = [(0.0, 0.0), (1.0, 5.0), (2.0, -3.0), (3.0, 7.0), (4.0, 1.0)]
        f = AkimaSpline(pts, min_y=-1e9)
        for knot in [1.0, 2.0, 3.0]:
            left = f.derivative(knot - 1e-9)
            right = f.derivative(knot + 1e-9)
            assert left == pytest.approx(right, abs=1e-5)

    def test_derivative_matches_finite_difference(self):
        pts = [(float(x), math.sin(x)) for x in range(8)]
        f = AkimaSpline(pts, min_y=-1e9)
        for x in [0.7, 2.3, 4.9, 6.1]:
            h = 1e-6
            fd = (f(x + h) - f(x - h)) / (2 * h)
            assert f.derivative(x) == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_min_y_clamp(self):
        f = AkimaSpline([(0.0, 1.0), (1.0, 1.0)], min_y=0.5)
        assert f(0.5) == 1.0
        g = AkimaSpline([(0.0, -5.0), (1.0, -5.0)], min_y=0.5)
        assert g(0.5) == 0.5

    def test_with_point(self):
        f = AkimaSpline([(0.0, 0.0), (2.0, 2.0)])
        g = f.with_point(1.0, 10.0)
        assert len(g) == 3
        assert g(1.0) == pytest.approx(10.0)
        assert len(f) == 2

    def test_approximates_smooth_function_well(self):
        pts = [(x, math.exp(-x / 3.0)) for x in np.linspace(0.0, 9.0, 15)]
        f = AkimaSpline([(float(x), float(y)) for x, y in pts])
        for x in np.linspace(0.5, 8.5, 33):
            assert f(float(x)) == pytest.approx(math.exp(-x / 3.0), abs=5e-3)


@st.composite
def _spline_points(draw):
    # Abscissae are integer problem sizes -- the library's actual domain
    # (computation units); ys are arbitrary finite times/speeds.
    n = draw(st.integers(min_value=2, max_value=15))
    xs = sorted(
        float(x)
        for x in draw(
            st.lists(
                st.integers(min_value=0, max_value=100_000),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    ys = draw(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0), min_size=n, max_size=n
        )
    )
    return list(zip(xs, ys))


class TestProperties:
    @given(_spline_points())
    @settings(max_examples=60)
    def test_interpolation_property(self, pts):
        f = AkimaSpline(pts, min_y=-1e9)
        for x, y in pts:
            assert f(x) == pytest.approx(y, rel=1e-7, abs=1e-7)

    @given(_spline_points())
    @settings(max_examples=40)
    def test_c0_continuity_at_interior_knots(self, pts):
        f = AkimaSpline(pts, min_y=-1e9)
        xs = sorted(x for x, _ in pts)
        for knot in xs[1:-1]:
            eps = max(abs(knot), 1.0) * 1e-9
            assert f(knot - eps) == pytest.approx(f(knot + eps), rel=1e-4, abs=1e-4)

    @given(st.floats(min_value=-3.0, max_value=3.0),
           st.floats(min_value=-10.0, max_value=10.0))
    def test_linear_reproduction(self, slope, intercept):
        xs = [0.0, 1.0, 2.5, 4.0, 7.0, 11.0]
        f = AkimaSpline([(x, slope * x + intercept) for x in xs], min_y=-1e9)
        for x in [0.5, 3.0, 9.0]:
            assert f(x) == pytest.approx(slope * x + intercept, rel=1e-7, abs=1e-7)
