"""Tests for piecewise-linear interpolation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InterpolationError
from repro.interp.piecewise_linear import PiecewiseLinear


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(InterpolationError):
            PiecewiseLinear([])

    def test_single_point_constant(self):
        f = PiecewiseLinear([(2.0, 5.0)])
        assert f(0.0) == 5.0
        assert f(2.0) == 5.0
        assert f(100.0) == 5.0

    def test_points_sorted_on_construction(self):
        f = PiecewiseLinear([(3.0, 30.0), (1.0, 10.0), (2.0, 20.0)])
        assert f.xs == (1.0, 2.0, 3.0)
        assert f.ys == (10.0, 20.0, 30.0)

    def test_duplicate_x_merged_by_average(self):
        f = PiecewiseLinear([(1.0, 10.0), (1.0, 20.0), (2.0, 5.0)])
        assert len(f) == 2
        assert f(1.0) == pytest.approx(15.0)

    def test_len(self):
        f = PiecewiseLinear([(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        assert len(f) == 3


class TestEvaluation:
    def test_passes_through_knots(self):
        pts = [(1.0, 2.0), (3.0, -1.0), (7.0, 4.0)]
        f = PiecewiseLinear(pts, min_y=-100.0)
        for x, y in pts:
            assert f(x) == pytest.approx(y)

    def test_midpoint_linear(self):
        f = PiecewiseLinear([(0.0, 0.0), (10.0, 100.0)])
        assert f(5.0) == pytest.approx(50.0)

    def test_left_extrapolation_continues_first_segment(self):
        f = PiecewiseLinear([(1.0, 10.0), (2.0, 20.0)])
        assert f(0.5) == pytest.approx(5.0)

    def test_right_extrapolation_continues_last_segment(self):
        f = PiecewiseLinear([(1.0, 10.0), (2.0, 20.0)])
        assert f(3.0) == pytest.approx(30.0)

    def test_min_y_clamp(self):
        f = PiecewiseLinear([(1.0, 10.0), (2.0, 1.0)], min_y=0.5)
        # Extrapolation would go negative; clamp holds.
        assert f(5.0) == 0.5

    def test_derivative_on_segments(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 2.0), (3.0, 0.0)])
        assert f.derivative(0.5) == pytest.approx(2.0)
        assert f.derivative(2.0) == pytest.approx(-1.0)

    def test_derivative_single_point_zero(self):
        f = PiecewiseLinear([(1.0, 5.0)])
        assert f.derivative(10.0) == 0.0

    def test_with_point_returns_new_interpolant(self):
        f = PiecewiseLinear([(0.0, 0.0), (2.0, 2.0)])
        g = f.with_point(1.0, 5.0)
        assert f(1.0) == pytest.approx(1.0)
        assert g(1.0) == pytest.approx(5.0)
        assert len(f) == 2
        assert len(g) == 3


@st.composite
def _distinct_points(draw):
    # Integer abscissae: problem sizes are computation-unit counts.
    xs = [
        float(x)
        for x in draw(
            st.lists(
                st.integers(min_value=1, max_value=10_000),
                min_size=2,
                max_size=20,
                unique=True,
            )
        )
    ]
    ys = draw(
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4),
            min_size=len(xs),
            max_size=len(xs),
        )
    )
    return list(zip(xs, ys))


class TestProperties:
    @given(_distinct_points())
    def test_interpolates_all_knots(self, pts):
        f = PiecewiseLinear(pts, min_y=-1e9)
        for x, y in pts:
            assert f(x) == pytest.approx(y, rel=1e-9, abs=1e-9)

    @given(_distinct_points(), st.floats(min_value=0.1, max_value=1e4))
    def test_within_hull_bounded_by_neighbours(self, pts, x):
        f = PiecewiseLinear(pts, min_y=-1e9)
        xs = sorted(p[0] for p in pts)
        if not xs[0] <= x <= xs[-1]:
            return
        lo = min(y for _x, y in pts)
        hi = max(y for _x, y in pts)
        assert lo - 1e-6 <= f(x) <= hi + 1e-6

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=-5.0, max_value=5.0))
    def test_reproduces_linear_function(self, slope, intercept):
        pts = [(x, slope * x + intercept) for x in [1.0, 2.0, 5.0, 9.0]]
        f = PiecewiseLinear(pts, min_y=-1e9)
        for x in [1.5, 3.0, 7.0]:
            assert f(x) == pytest.approx(slope * x + intercept, rel=1e-9, abs=1e-9)
