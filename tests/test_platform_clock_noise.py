"""Tests for virtual clocks and noise models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PlatformError
from repro.platform.clock import VirtualClock
from repro.platform.noise import GaussianNoise, NoNoise, bound_process_noise, unbound_process_noise


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(PlatformError):
            VirtualClock(-1.0)

    def test_advance(self):
        c = VirtualClock()
        assert c.advance(2.5) == 2.5
        assert c.advance(0.5) == 3.0
        assert c.now == 3.0

    def test_advance_zero_ok(self):
        c = VirtualClock(1.0)
        c.advance(0.0)
        assert c.now == 1.0

    def test_negative_advance_rejected(self):
        with pytest.raises(PlatformError):
            VirtualClock().advance(-0.1)

    def test_advance_to_future(self):
        c = VirtualClock(1.0)
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_advance_to_past_is_noop(self):
        c = VirtualClock(5.0)
        c.advance_to(2.0)
        assert c.now == 5.0

    def test_reset(self):
        c = VirtualClock(9.0)
        c.reset()
        assert c.now == 0.0
        c.reset(3.0)
        assert c.now == 3.0

    def test_reset_negative_rejected(self):
        with pytest.raises(PlatformError):
            VirtualClock().reset(-1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=30))
    def test_monotone_under_any_advances(self, deltas):
        c = VirtualClock()
        prev = 0.0
        for dt in deltas:
            c.advance(dt)
            assert c.now >= prev
            prev = c.now


class TestNoiseModels:
    def test_no_noise_is_one(self):
        rng = np.random.default_rng(0)
        assert NoNoise().factor(rng) == 1.0

    def test_zero_sigma_is_one(self):
        rng = np.random.default_rng(0)
        assert GaussianNoise(0.0).factor(rng) == 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(PlatformError):
            GaussianNoise(-0.1)

    def test_factors_positive(self):
        rng = np.random.default_rng(1)
        noise = GaussianNoise(0.5)
        for _ in range(500):
            assert noise.factor(rng) > 0.0

    def test_factors_clipped_at_three_sigma(self):
        rng = np.random.default_rng(2)
        noise = GaussianNoise(0.1)
        samples = [noise.factor(rng) for _ in range(2000)]
        assert min(samples) >= 1.0 - 0.3 - 1e-12
        assert max(samples) <= 1.0 + 0.3 + 1e-12

    def test_mean_near_one(self):
        rng = np.random.default_rng(3)
        noise = GaussianNoise(0.05)
        samples = [noise.factor(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)

    def test_deterministic_given_seed(self):
        noise = GaussianNoise(0.1)
        a = [noise.factor(np.random.default_rng(7)) for _ in range(1)]
        b = [noise.factor(np.random.default_rng(7)) for _ in range(1)]
        assert a == b

    def test_unbound_noisier_than_bound(self):
        assert unbound_process_noise().sigma > bound_process_noise().sigma
