"""Property tests: the ladder always yields a valid partition.

Randomised pathological speed functions -- non-monotone, flat,
single-point, near-zero and near-overflow timings -- are fed through
:class:`~repro.degrade.DegradationPolicy`.  Whatever rung the ladder
lands on, the outcome must be a full partition: parts sum to ``n``,
every part is a non-negative integer, one part per rank.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.point import MeasurementPoint
from repro.degrade import DegradationPolicy

# Timings span from denormal-adjacent to astronomically large: the exact
# values models must survive without manufacturing NaNs or negatives.
_times = st.floats(min_value=1e-9, max_value=1e9, allow_nan=False,
                   allow_infinity=False)
_sizes = st.integers(min_value=1, max_value=10_000)


@st.composite
def _rank_points(draw):
    """One rank's measurements: 1..6 points at distinct sizes."""
    sizes = draw(st.lists(_sizes, min_size=1, max_size=6, unique=True))
    return [MeasurementPoint(d, draw(_times)) for d in sorted(sizes)]


@st.composite
def _flat_rank_points(draw):
    """A flat speed function: the same time at every size."""
    sizes = draw(st.lists(_sizes, min_size=2, max_size=5, unique=True))
    t = draw(_times)
    return [MeasurementPoint(d, t) for d in sorted(sizes)]


def _assert_valid(dist, total, ranks):
    sizes = dist.sizes
    assert len(sizes) == ranks
    assert sum(sizes) == total
    assert all(isinstance(d, int) and d >= 0 for d in sizes)
    assert getattr(dist, "convergence", None) is not None


class TestLadderAlwaysPartitions:
    @given(
        points_per_rank=st.lists(_rank_points(), min_size=1, max_size=4),
        total=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_pathological_speed_functions(self, points_per_rank, total):
        policy = DegradationPolicy()
        models = [
            policy.fit_model(pts, rank=r)
            for r, pts in enumerate(points_per_rank)
        ]
        dist = policy.partition(total, models)
        _assert_valid(dist, total, len(points_per_rank))

    @given(
        points_per_rank=st.lists(_flat_rank_points(), min_size=1, max_size=3),
        total=st.integers(min_value=1, max_value=2000),
    )
    @settings(max_examples=25, deadline=None)
    def test_flat_speed_functions(self, points_per_rank, total):
        policy = DegradationPolicy()
        models = [
            policy.fit_model(pts, rank=r)
            for r, pts in enumerate(points_per_rank)
        ]
        dist = policy.partition(total, models)
        _assert_valid(dist, total, len(points_per_rank))

    @given(
        size=_sizes,
        time=_times,
        ranks=st.integers(min_value=1, max_value=4),
        total=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=25, deadline=None)
    def test_single_point_models(self, size, time, ranks, total):
        policy = DegradationPolicy()
        models = [
            policy.fit_model([MeasurementPoint(size, time)], rank=r)
            for r in range(ranks)
        ]
        dist = policy.partition(total, models)
        _assert_valid(dist, total, ranks)

    @given(
        points_per_rank=st.lists(_rank_points(), min_size=2, max_size=3),
        total=st.integers(min_value=1, max_value=2000),
        max_iter=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_tiny_iteration_caps(self, points_per_rank, total, max_iter):
        # Starving the iterative rungs forces descents; the floor still
        # holds.
        policy = DegradationPolicy(max_iter=max_iter)
        models = [
            policy.fit_model(pts, rank=r)
            for r, pts in enumerate(points_per_rank)
        ]
        dist = policy.partition(total, models)
        _assert_valid(dist, total, len(points_per_rank))

    @given(
        points_per_rank=st.lists(_rank_points(), min_size=1, max_size=3),
        total=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_step_has_a_trigger(self, points_per_rank, total):
        policy = DegradationPolicy()
        models = [
            policy.fit_model(pts, rank=r)
            for r, pts in enumerate(points_per_rank)
        ]
        policy.partition(total, models)
        for step in policy.report.steps:
            assert step.trigger  # a fallback without a reason is a bug
