"""Tests for scalar bisection utilities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solver.bisect import bisect_monotone_inverse, bisect_root


class TestBisectRoot:
    def test_simple_root(self):
        root = bisect_root(lambda x: x * x - 4.0, 0.0, 10.0)
        assert root == pytest.approx(2.0, abs=1e-9)

    def test_root_at_endpoint_lo(self):
        assert bisect_root(lambda x: x, 0.0, 5.0) == 0.0

    def test_root_at_endpoint_hi(self):
        assert bisect_root(lambda x: x - 5.0, 0.0, 5.0) == 5.0

    def test_swapped_bracket(self):
        root = bisect_root(lambda x: x - 1.0, 3.0, 0.0)
        assert root == pytest.approx(1.0, abs=1e-9)

    def test_no_bracket_raises(self):
        with pytest.raises(SolverError):
            bisect_root(lambda x: x * x + 1.0, -1.0, 1.0)

    def test_decreasing_function(self):
        root = bisect_root(lambda x: 3.0 - x, 0.0, 10.0)
        assert root == pytest.approx(3.0, abs=1e-9)

    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_finds_linear_root(self, r):
        root = bisect_root(lambda x: x - r, -100.0, 100.0)
        assert root == pytest.approx(r, abs=1e-6)


class TestMonotoneInverse:
    def test_inverse_of_square(self):
        x = bisect_monotone_inverse(lambda v: v * v, 9.0, 0.0, 10.0)
        assert x == pytest.approx(3.0, abs=1e-9)

    def test_expands_upper_bound(self):
        x = bisect_monotone_inverse(lambda v: v, 1000.0, 0.0, 1.0, expand=True)
        assert x == pytest.approx(1000.0, rel=1e-9)

    def test_no_expand_clamps_to_hi(self):
        x = bisect_monotone_inverse(lambda v: v, 1000.0, 0.0, 1.0, expand=False)
        assert x == 1.0

    def test_target_below_range_returns_lo(self):
        x = bisect_monotone_inverse(lambda v: v + 10.0, 5.0, 0.0, 1.0, expand=False)
        assert x == 0.0

    def test_empty_bracket_raises(self):
        with pytest.raises(SolverError):
            bisect_monotone_inverse(lambda v: v, 1.0, 5.0, 0.0)

    def test_exact_at_endpoint(self):
        x = bisect_monotone_inverse(lambda v: v, 0.0, 0.0, 1.0)
        assert x == 0.0

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_round_trip(self, slope, target):
        f = lambda v: slope * v  # noqa: E731 - tiny local function
        x = bisect_monotone_inverse(f, target, 0.0, 1.0)
        assert f(x) == pytest.approx(target, rel=1e-6, abs=1e-6)

    def test_step_function_inverse(self):
        # Piecewise-constant-ish steep transition: inverse lands in the jump.
        f = lambda v: 0.0 if v < 5.0 else 10.0  # noqa: E731
        x = bisect_monotone_inverse(f, 5.0, 0.0, 10.0)
        assert x == pytest.approx(5.0, abs=1e-6)
