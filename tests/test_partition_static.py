"""Tests for the three static partitioning algorithms.

The invariants, for every algorithm:

* parts sum exactly to the total;
* parts are non-negative integers;
* the load is balanced: predicted per-process times are (near-)equal.

Plus algorithm-specific behaviour: proportionality for the basic algorithm,
agreement between geometric and numerical on smooth models, and correct
handling of memory cliffs (the scenario where CPM must lose).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.partition.basic import partition_constant
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.errors import PartitionError

from tests.conftest import model_from_time_fn


def _linear_models(model_cls, speeds, sizes=(10, 100, 1000, 5000)):
    """Models over constant-speed devices with the given unit rates."""
    return [
        model_from_time_fn(model_cls, lambda d, s=s: d / s, list(sizes))
        for s in speeds
    ]


class TestBasic:
    def test_proportional_to_speeds(self):
        models = _linear_models(ConstantModel, [300.0, 100.0])
        dist = partition_constant(4000, models)
        assert dist.sizes == [3000, 1000]

    def test_sum_exact(self):
        models = _linear_models(ConstantModel, [3.0, 7.0, 11.0])
        dist = partition_constant(1000, models)
        assert dist.total == 1000

    def test_equal_speeds_even_split(self):
        models = _linear_models(ConstantModel, [5.0, 5.0, 5.0, 5.0])
        dist = partition_constant(100, models)
        assert dist.sizes == [25, 25, 25, 25]

    def test_zero_total(self):
        models = _linear_models(ConstantModel, [1.0, 2.0])
        assert partition_constant(0, models).sizes == [0, 0]

    def test_single_process(self):
        models = _linear_models(ConstantModel, [2.0])
        assert partition_constant(42, models).sizes == [42]

    def test_predicted_times_filled(self):
        models = _linear_models(ConstantModel, [100.0, 50.0])
        dist = partition_constant(300, models)
        assert dist.parts[0].t == pytest.approx(2.0)
        assert dist.parts[1].t == pytest.approx(2.0)

    def test_empty_models_rejected(self):
        with pytest.raises(PartitionError):
            partition_constant(10, [])

    def test_negative_total_rejected(self):
        models = _linear_models(ConstantModel, [1.0])
        with pytest.raises(PartitionError):
            partition_constant(-1, models)


class TestGeometric:
    def test_constant_speeds_proportional(self):
        models = _linear_models(PiecewiseModel, [300.0, 100.0])
        dist = partition_geometric(4000, models)
        assert dist.sizes == [3000, 1000]

    def test_balances_times(self):
        models = _linear_models(PiecewiseModel, [7.0, 3.0, 2.0])
        dist = partition_geometric(12000, models)
        times = [m.time(p.d) for m, p in zip(models, dist.parts)]
        assert max(times) - min(times) <= max(times) * 0.01

    def test_sum_exact(self):
        models = _linear_models(PiecewiseModel, [1.0, 2.0, 3.0, 4.0, 5.0])
        assert partition_geometric(9999, models).total == 9999

    def test_cliff_device_capped(self):
        # Device A is fast until 1000 units, then 10x slower; device B is
        # steady.  At a large total, A must not be given much beyond the
        # cliff.
        cliff = PiecewiseModel()
        for d, t in [(100, 100 / 1000.0), (1000, 1.0), (1100, 2.0), (2000, 11.0)]:
            from repro.core.point import MeasurementPoint

            cliff.update(MeasurementPoint(d=d, t=t))
        steady = model_from_time_fn(
            PiecewiseModel, lambda d: d / 500.0, [100, 1000, 4000]
        )
        dist = partition_geometric(4000, [cliff, steady])
        times = [m.time(p.d) for m, p in zip([cliff, steady], dist.parts)]
        assert max(times) - min(times) <= max(times) * 0.02
        # The steady device absorbs most of the work.
        assert dist.sizes[1] > dist.sizes[0]

    def test_zero_total(self):
        models = _linear_models(PiecewiseModel, [1.0, 2.0])
        assert partition_geometric(0, models).sizes == [0, 0]

    def test_single_process(self):
        models = _linear_models(PiecewiseModel, [2.0])
        dist = partition_geometric(77, models)
        assert dist.sizes == [77]
        assert dist.parts[0].t == pytest.approx(77 / 2.0)

    def test_very_heterogeneous(self):
        models = _linear_models(PiecewiseModel, [1000.0, 1.0])
        dist = partition_geometric(10010, models)
        assert dist.sizes[0] == pytest.approx(10000, abs=2)

    @given(
        st.lists(st.floats(min_value=0.5, max_value=500.0), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_property(self, speeds, total):
        models = _linear_models(PiecewiseModel, speeds, sizes=(10, 1000))
        dist = partition_geometric(total, models)
        assert dist.total == total
        assert all(p.d >= 0 for p in dist.parts)
        if total >= 100 * len(speeds):
            times = [m.time(p.d) for m, p in zip(models, dist.parts)]
            # Integer rounding can shift any part by one unit, which costs
            # up to 1/min(speed) seconds on the slowest device.
            granularity = 1.0 / min(speeds)
            assert max(times) - min(times) <= max(times) * 0.02 + granularity


class TestNumerical:
    def test_constant_speeds_proportional(self):
        models = _linear_models(AkimaModel, [300.0, 100.0])
        dist = partition_numerical(4000, models)
        assert dist.sizes == [3000, 1000]

    def test_balances_times_nonlinear(self):
        # Quadratic-ish time functions: t = d/s + c d^2.
        def tf(s):
            return lambda d: d / s + 1e-7 * d * d

        models = [
            model_from_time_fn(AkimaModel, tf(s), [10, 100, 500, 1000, 3000, 6000])
            for s in [10.0, 5.0, 2.0]
        ]
        dist = partition_numerical(6000, models)
        times = [m.time(p.d) for m, p in zip(models, dist.parts)]
        assert max(times) - min(times) <= max(times) * 0.01

    def test_agrees_with_geometric_on_smooth_models(self):
        speeds = [9.0, 5.0, 2.5, 1.0]
        akima = _linear_models(AkimaModel, speeds)
        pw = _linear_models(PiecewiseModel, speeds)
        total = 35000
        dn = partition_numerical(total, akima)
        dg = partition_geometric(total, pw)
        for a, g in zip(dn.sizes, dg.sizes):
            assert abs(a - g) <= max(2, 0.01 * total)

    def test_sum_exact(self):
        models = _linear_models(AkimaModel, [2.0, 3.0, 4.0])
        assert partition_numerical(1234, models).total == 1234

    def test_zero_total(self):
        models = _linear_models(AkimaModel, [1.0, 2.0])
        assert partition_numerical(0, models).sizes == [0, 0]

    def test_single_process(self):
        models = _linear_models(AkimaModel, [2.0])
        assert partition_numerical(55, models).sizes == [55]

    def test_works_with_piecewise_models_via_fd(self):
        # Models without time_derivative fall back to finite differences.
        models = _linear_models(PiecewiseModel, [4.0, 1.0])
        dist = partition_numerical(5000, models)
        assert dist.total == 5000
        assert dist.sizes[0] == pytest.approx(4000, abs=10)

    @given(
        st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=6),
        st.integers(min_value=1000, max_value=50_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_property(self, speeds, total):
        models = _linear_models(AkimaModel, speeds, sizes=(10, 100, 1000, 5000))
        dist = partition_numerical(total, models)
        assert dist.total == total
        assert all(p.d >= 0 for p in dist.parts)
        times = [m.time(p.d) for m, p in zip(models, dist.parts)]
        granularity = 1.0 / min(speeds)
        assert max(times) - min(times) <= max(times) * 0.02 + granularity
