"""Tests for dynamic data partitioning and load balancing."""

from __future__ import annotations

import pytest

from repro.core.benchmark import PlatformBenchmark
from repro.core.models import PiecewiseModel
from repro.core.partition.dist import Distribution
from repro.core.partition.dynamic import DynamicPartitioner, LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.core.point import MeasurementPoint
from repro.errors import PartitionError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import CacheHierarchyProfile, ConstantProfile


def _platform(speeds):
    nodes = [
        Node(f"n{i}", [Device(f"d{i}", ConstantProfile(s), noise=NoNoise())])
        for i, s in enumerate(speeds)
    ]
    return Platform(nodes)


def _dyn(platform, total, eps=0.02, max_iterations=20):
    bench = PlatformBenchmark(platform, unit_flops=1.0e6)
    models = [PiecewiseModel() for _ in range(platform.size)]
    return DynamicPartitioner(
        partition_geometric,
        models,
        total,
        bench.measure_group,
        eps=eps,
        max_iterations=max_iterations,
    )


class TestDynamicPartitioner:
    def test_starts_even(self):
        dyn = _dyn(_platform([1.0e9, 1.0e9]), 100)
        assert dyn.dist.sizes == [50, 50]

    def test_converges_on_constant_speeds(self):
        dyn = _dyn(_platform([3.0e9, 1.0e9]), 4000)
        result = dyn.run()
        assert result.converged
        assert result.final.sizes == [3000, 1000]

    def test_converges_quickly_for_constant_speeds(self):
        dyn = _dyn(_platform([2.0e9, 1.0e9, 1.0e9]), 8000)
        result = dyn.run()
        assert result.converged
        assert result.iterations <= 4

    def test_partial_models_much_smaller_than_full(self):
        dyn = _dyn(_platform([4.0e9, 2.0e9, 1.0e9]), 30000)
        result = dyn.run()
        # Dynamic estimation needs only a handful of points per rank.
        assert all(n <= result.iterations + 1 for n in result.points_per_rank)

    def test_cost_accounted(self):
        dyn = _dyn(_platform([1.0e9, 1.0e9]), 1000)
        result = dyn.run()
        assert result.total_cost > 0.0
        assert result.total_cost == pytest.approx(dyn.total_cost)

    def test_cliff_device_eventually_detected(self):
        # A device that collapses beyond 1000 units: the dynamic algorithm
        # probes at the even share (2000), sees the collapsed speed, and
        # shifts work away.
        cliff = Device(
            "cliff",
            CacheHierarchyProfile(
                levels=[(1000.0, 8.0e9)], paged_flops=0.4e9, transition_width=0.02
            ),
            noise=NoNoise(),
        )
        steady = Device("steady", ConstantProfile(2.0e9), noise=NoNoise())
        platform = Platform([Node("n0", [cliff]), Node("n1", [steady])])
        dyn = _dyn(platform, 4000, eps=0.01, max_iterations=30)
        result = dyn.run()
        # The steady device must carry most of the load despite the cliff
        # device's higher nominal peak.
        assert result.final.sizes[1] > result.final.sizes[0]

    def test_trace_records_every_iteration(self):
        dyn = _dyn(_platform([2.0e9, 1.0e9]), 600)
        result = dyn.run()
        assert len(result.distributions) == result.iterations
        assert result.distributions[-1] == result.final

    def test_validation(self):
        platform = _platform([1.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0)
        with pytest.raises(PartitionError):
            DynamicPartitioner(partition_geometric, [], 10, bench.measure_group)
        with pytest.raises(PartitionError):
            DynamicPartitioner(
                partition_geometric, [PiecewiseModel()], -1, bench.measure_group
            )
        with pytest.raises(PartitionError):
            DynamicPartitioner(
                partition_geometric, [PiecewiseModel()], 10, bench.measure_group,
                eps=0.0,
            )
        with pytest.raises(PartitionError):
            DynamicPartitioner(
                partition_geometric, [PiecewiseModel()], 10, bench.measure_group,
                max_iterations=0,
            )


class TestLoadBalancer:
    def _balancer(self, total=120, size=3, threshold=0.05):
        models = [PiecewiseModel() for _ in range(size)]
        return LoadBalancer(partition_geometric, models, total, threshold=threshold)

    def test_starts_even(self):
        lb = self._balancer(total=90, size=3)
        assert lb.dist.sizes == [30, 30, 30]

    def test_rebalances_on_imbalance(self):
        lb = self._balancer(total=120, size=2)
        # Rank 0 is twice as fast: even split times are [0.5, 1.0].
        dist = lb.iterate([0.5, 1.0])
        assert dist.sizes[0] > dist.sizes[1]
        assert lb.history[-1].rebalanced

    def test_keeps_distribution_when_balanced(self):
        lb = self._balancer(total=100, size=2, threshold=0.1)
        before = lb.dist.sizes
        dist = lb.iterate([1.0, 1.05])
        assert dist.sizes == before
        assert not lb.history[-1].rebalanced

    def test_converges_to_speed_ratio(self):
        # Speeds 2:1, perfectly deterministic observations.
        speeds = [200.0, 100.0]
        lb = self._balancer(total=300, size=2, threshold=0.02)
        for _ in range(6):
            times = [d / s for d, s in zip(lb.dist.sizes, speeds)]
            lb.iterate(times)
        assert lb.dist.sizes == [200, 100]
        final_times = [d / s for d, s in zip(lb.dist.sizes, speeds)]
        assert max(final_times) - min(final_times) <= 0.02 * max(final_times)

    def test_imbalance_recorded(self):
        lb = self._balancer(total=100, size=2)
        lb.iterate([1.0, 2.0])
        assert lb.history[0].imbalance == pytest.approx(0.5)

    def test_observed_times_feed_models(self):
        lb = self._balancer(total=100, size=2)
        lb.iterate([1.0, 2.0])
        assert all(m.count == 1 for m in lb.models)
        assert lb.models[0].points[0] == MeasurementPoint(d=50, t=1.0, reps=1, ci=0.0)

    def test_zero_size_ranks_skipped(self):
        models = [PiecewiseModel() for _ in range(2)]
        initial = Distribution.from_sizes([100, 0])
        lb = LoadBalancer(partition_geometric, models, 100, initial=initial)
        lb.iterate([1.0, 0.0])
        assert models[1].count == 0

    def test_times_length_checked(self):
        lb = self._balancer(size=2)
        with pytest.raises(PartitionError):
            lb.iterate([1.0])

    def test_initial_distribution_size_checked(self):
        with pytest.raises(PartitionError):
            LoadBalancer(
                partition_geometric,
                [PiecewiseModel()],
                10,
                initial=Distribution.from_sizes([5, 5]),
            )

    def test_negative_threshold_rejected(self):
        with pytest.raises(PartitionError):
            LoadBalancer(partition_geometric, [PiecewiseModel()], 10, threshold=-1.0)

    def test_history_grows(self):
        lb = self._balancer(size=2)
        lb.iterate([1.0, 1.0])
        lb.iterate([1.0, 1.0])
        assert [s.iteration for s in lb.history] == [1, 2]
