"""FaultyKernel, DegradedDevice and FaultyCommunicator behaviour."""

import math

import numpy as np
import pytest

from repro.core.kernel import SimulatedKernel
from repro.errors import CommunicationError, FaultInjectionError
from repro.faults import FaultPlan, RankFaults
from repro.faults.inject import DegradedDevice, FaultyCommunicator, FaultyKernel
from repro.faults.report import ResilienceReport
from repro.platform.device import Device
from repro.platform.profiles import ConstantProfile

UNIT_FLOPS = 1e6


def _device(name="dev", flops=1e9):
    return Device(name, ConstantProfile(flops), noise=None)


def _kernel(spec, seed=0):
    inner = SimulatedKernel(_device(), UNIT_FLOPS, rng=np.random.default_rng(seed))
    return FaultyKernel(inner, spec, rng=np.random.default_rng(seed))


def _run_once(kernel, d=32):
    ctx = kernel.initialize(d)
    try:
        return kernel.execute(ctx)
    finally:
        kernel.finalize(ctx)


# -- FaultyKernel ---------------------------------------------------------

def test_benign_spec_is_transparent():
    healthy = SimulatedKernel(_device(), UNIT_FLOPS, rng=np.random.default_rng(1))
    faulty = _kernel(RankFaults(), seed=1)
    assert _run_once(faulty, 32) == pytest.approx(_run_once(healthy, 32))


def test_crash_at_counts_executions_and_is_permanent():
    kernel = _kernel(RankFaults(crash_at=2), seed=0)
    _run_once(kernel)
    _run_once(kernel)
    for _ in range(2):  # execution 2 and every later one
        with pytest.raises(FaultInjectionError) as excinfo:
            _run_once(kernel)
        assert excinfo.value.fatal
        assert excinfo.value.kind == "crash"


def test_transient_failures_are_non_fatal_and_seeded():
    spec = RankFaults(transient_rate=0.5)

    def failure_pattern(seed):
        kernel = _kernel(spec, seed=seed)
        pattern = []
        for _ in range(20):
            try:
                _run_once(kernel)
                pattern.append(False)
            except FaultInjectionError as exc:
                assert not exc.fatal
                assert exc.kind == "transient"
                pattern.append(True)
        return pattern

    pattern = failure_pattern(seed=3)
    assert any(pattern) and not all(pattern)
    assert pattern == failure_pattern(seed=3)  # same seed, same faults


def test_nan_rate_reports_garbage_timing():
    kernel = _kernel(RankFaults(nan_rate=1.0), seed=0)
    assert math.isnan(_run_once(kernel))


def test_straggler_scales_elapsed_time():
    healthy = SimulatedKernel(_device(), UNIT_FLOPS, rng=np.random.default_rng(5))
    slow = _kernel(RankFaults(straggler_factor=4.0), seed=5)
    assert _run_once(slow, 64) == pytest.approx(4.0 * _run_once(healthy, 64))


def test_wrapper_delegates_complexity_and_contention():
    kernel = _kernel(RankFaults(), seed=0)
    assert kernel.complexity(10) == kernel.inner.complexity(10)
    kernel.contention_factor = 0.5
    assert kernel.inner.contention_factor == 0.5


# -- DegradedDevice -------------------------------------------------------

def test_degraded_device_scales_ideal_time():
    healthy = _device()
    degraded = DegradedDevice(healthy, slowdown=3.0)
    assert degraded.ideal_time(UNIT_FLOPS, 10) == pytest.approx(
        3.0 * healthy.ideal_time(UNIT_FLOPS, 10)
    )


@pytest.mark.parametrize("slowdown", [0.5, 0.0, float("inf"), float("nan")])
def test_degraded_device_rejects_bad_slowdown(slowdown):
    with pytest.raises(FaultInjectionError):
        DegradedDevice(_device(), slowdown)


# -- FaultyCommunicator ---------------------------------------------------

def test_dead_peer_point_to_point_raises():
    comm = FaultyCommunicator(4)
    comm.mark_dead(2)
    assert comm.alive == [0, 1, 3]
    assert comm.is_dead(2)
    with pytest.raises(CommunicationError, match="rank 2 has crashed"):
        comm.send(0, 2, 64.0)
    with pytest.raises(CommunicationError, match="rank 2 has crashed"):
        comm.exchange(2, 3, 64.0)


def test_collectives_complete_with_survivors():
    comm = FaultyCommunicator(4)
    comm.compute(3, 5.0)
    comm.mark_dead(3)
    t = comm.barrier()
    # the dead rank's clock no longer gates the others
    assert t < 5.0
    assert math.isfinite(comm.allreduce(8.0))
    assert math.isfinite(comm.allgatherv([8.0, 8.0, 8.0, 8.0]))


def test_dead_root_raises():
    comm = FaultyCommunicator(3)
    comm.mark_dead(0)
    with pytest.raises(CommunicationError, match="root 0"):
        comm.bcast(0, 8.0)
    with pytest.raises(CommunicationError, match="root 0"):
        comm.scatterv(0, [8.0, 8.0, 8.0])
    with pytest.raises(CommunicationError, match="root 0"):
        comm.gatherv(0, [8.0, 8.0, 8.0])


def test_all_dead_collective_raises():
    comm = FaultyCommunicator(2)
    comm.mark_dead(0)
    comm.mark_dead(1)
    with pytest.raises(CommunicationError, match="no surviving participants"):
        comm.barrier()


def test_scripted_crash_counts_collectives():
    plan = FaultPlan({1: RankFaults(crash_at=2)})
    report = ResilienceReport(survivors=[0, 1, 2])
    comm = FaultyCommunicator(3, plan=plan, network=None, report=report)
    comm.barrier()   # collective 0
    comm.barrier()   # collective 1
    assert not comm.is_dead(1)
    comm.barrier()   # collective 2: rank 1 dies on schedule
    assert comm.is_dead(1)
    assert any(e.kind == "crash" and e.rank == 1 for e in report.events)


def test_probabilistic_drops_are_seeded_and_recorded():
    plan = FaultPlan({2: RankFaults(drop_collective_rate=0.5)}, seed=11)

    def run():
        report = ResilienceReport(survivors=[0, 1, 2, 3])
        comm = FaultyCommunicator(4, plan=plan, report=report)
        for _ in range(20):
            comm.allreduce(8.0)
        return [(e.kind, e.rank, e.detail) for e in report.events]

    events = run()
    drops = [e for e in events if e[0] == "collective-drop"]
    assert drops and len(drops) < 20
    assert all(rank == 2 for _, rank, _ in drops)
    assert events == run()  # same seed, same drop schedule
    # dropping out of collectives never kills the rank
    comm = FaultyCommunicator(4, plan=plan)
    for _ in range(20):
        comm.allreduce(8.0)
    assert comm.alive == [0, 1, 2, 3]


def test_vector_collective_sizes_follow_surviving_group():
    comm = FaultyCommunicator(3)
    comm.mark_dead(1)
    # three sizes for the requested full group; the dead rank's entry is
    # discarded along with the rank, and the call still completes
    assert math.isfinite(comm.allgatherv([64.0, 1e12, 64.0]))
    with pytest.raises(CommunicationError, match="allgatherv: 2 sizes"):
        comm.allgatherv([64.0, 64.0])
