"""Tests for contiguous redistribution plans."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition.redistribution import (
    Transfer,
    apply_plan_cost,
    moved_units,
    redistribution_plan,
)
from repro.errors import PartitionError
from repro.mpi.comm import SimCommunicator
from repro.mpi.network import LinkModel, Network


class TestTransfer:
    def test_fields(self):
        t = Transfer(source=0, dest=1, units=5)
        assert t.units == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(source=-1, dest=0, units=1),
            dict(source=0, dest=0, units=1),
            dict(source=0, dest=1, units=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PartitionError):
            Transfer(**kwargs)


class TestRedistributionPlan:
    def test_identical_layouts_empty_plan(self):
        assert redistribution_plan([3, 4, 5], [3, 4, 5]) == []

    def test_simple_shift(self):
        # [10, 0] -> [4, 6]: rows 4..9 move from rank 0 to rank 1.
        plan = redistribution_plan([10, 0], [4, 6])
        assert plan == [Transfer(source=0, dest=1, units=6)]

    def test_boundary_move_between_neighbours(self):
        plan = redistribution_plan([5, 5], [7, 3])
        assert plan == [Transfer(source=1, dest=0, units=2)]

    def test_three_way_cascade(self):
        # [9, 0, 0] -> [3, 3, 3]: rank 0 feeds both others.
        plan = redistribution_plan([9, 0, 0], [3, 3, 3])
        assert Transfer(source=0, dest=1, units=3) in plan
        assert Transfer(source=0, dest=2, units=3) in plan
        assert moved_units(plan) == 6

    def test_rank_count_mismatch(self):
        with pytest.raises(PartitionError):
            redistribution_plan([1, 2], [3])

    def test_total_mismatch(self):
        with pytest.raises(PartitionError):
            redistribution_plan([1, 2], [2, 2])

    def test_negative_sizes_rejected(self):
        with pytest.raises(PartitionError):
            redistribution_plan([-1, 2], [1, 0])

    def test_apply_plan_cost(self):
        link = LinkModel(1e-3, 1e6)
        comm = SimCommunicator(2, network=Network(inter_node=link, intra_node=link))
        plan = redistribution_plan([10, 0], [4, 6])
        apply_plan_cost(comm, plan, bytes_per_unit=1e5)
        # 6 units x 1e5 bytes = 6e5 bytes -> 1e-3 + 0.6 s.
        assert comm.time(1) == pytest.approx(0.601)

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=100)
    def test_plan_conservation_property(self, old_sizes, seed):
        """Whatever the two layouts, the plan conserves ownership exactly."""
        import random

        total = sum(old_sizes)
        rng = random.Random(seed)
        # Random new layout with the same total.
        cuts = sorted(rng.randint(0, total) for _ in range(len(old_sizes) - 1))
        new_sizes = []
        prev = 0
        for c in cuts:
            new_sizes.append(c - prev)
            prev = c
        new_sizes.append(total - prev)

        plan = redistribution_plan(old_sizes, new_sizes)
        outflow = [0] * len(old_sizes)
        inflow = [0] * len(old_sizes)
        for t in plan:
            outflow[t.source] += t.units
            inflow[t.dest] += t.units
        for r in range(len(old_sizes)):
            assert old_sizes[r] - outflow[r] + inflow[r] == new_sizes[r]
            # A rank never sends more than it had.
            assert outflow[r] <= old_sizes[r]

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=6))
    @settings(max_examples=60)
    def test_unit_moves_only_if_owner_changes(self, old_sizes):
        """Minimality: moved units equal the owner-change count exactly."""
        total = sum(old_sizes)
        # Reverse the layout: a deterministic, generally different one.
        new_sizes = list(reversed(old_sizes))
        plan = redistribution_plan(old_sizes, new_sizes)

        def owner(offsets, idx):
            for r in range(len(offsets) - 1):
                if offsets[r] <= idx < offsets[r + 1]:
                    return r
            raise AssertionError("index outside layout")

        def offsets(sizes):
            out = [0]
            for d in sizes:
                out.append(out[-1] + d)
            return out

        old_off, new_off = offsets(old_sizes), offsets(new_sizes)
        changed = sum(
            1 for idx in range(total)
            if owner(old_off, idx) != owner(new_off, idx)
        )
        assert moved_units(plan) == changed
