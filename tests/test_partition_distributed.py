"""Tests for the distributed dynamic partitioning protocol."""

from __future__ import annotations

import pytest

from repro.core.benchmark import PlatformBenchmark
from repro.core.models import PiecewiseModel
from repro.core.partition.distributed import distributed_partition
from repro.core.partition.dynamic import DynamicPartitioner
from repro.core.partition.geometric import partition_geometric
from repro.errors import PartitionError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


def _platform(speeds):
    return Platform(
        [
            Node(f"n{i}", [Device(f"d{i}", ConstantProfile(s), noise=NoNoise())])
            for i, s in enumerate(speeds)
        ]
    )


class TestDistributedPartition:
    def test_converges_to_speed_proportions(self):
        platform = _platform([3.0e9, 1.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        result = distributed_partition(
            bench, partition_geometric, PiecewiseModel, 4000, eps=0.02
        )
        assert result.converged
        assert result.final.sizes == [3000, 1000]
        assert result.final.total == 4000

    def test_agrees_with_centralised_dynamic(self):
        platform = _platform([4.0e9, 2.0e9, 1.0e9])
        total = 14_000
        d_bench = PlatformBenchmark(platform, unit_flops=1.0e6, seed=0)
        distributed = distributed_partition(
            d_bench, partition_geometric, PiecewiseModel, total, eps=0.02
        )
        c_bench = PlatformBenchmark(platform, unit_flops=1.0e6, seed=0)
        central = DynamicPartitioner(
            partition_geometric,
            [PiecewiseModel() for _ in range(platform.size)],
            total,
            c_bench.measure_group,
            eps=0.02,
        ).run()
        # Same measurements, same deterministic algorithm -> same answer.
        assert distributed.final.sizes == central.final.sizes

    def test_protocol_time_accounted_and_small(self):
        platform = _platform([2.0e9, 1.0e9, 1.0e9, 1.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        result = distributed_partition(
            bench, partition_geometric, PiecewiseModel, 8000, eps=0.02
        )
        assert result.protocol_time > 0.0
        # Exchanging a few dozen bytes per round is negligible next to the
        # benchmark time itself.
        assert result.protocol_time < 0.05 * result.total_time

    def test_benchmark_cost_positive(self):
        platform = _platform([1.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        result = distributed_partition(
            bench, partition_geometric, PiecewiseModel, 500
        )
        assert result.benchmark_cost > 0.0
        assert result.final.sizes == [500]

    def test_iteration_cap_respected(self):
        platform = _platform([2.0e9, 1.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        # eps < 0 can never be met, so the loop must stop at the cap.
        result = distributed_partition(
            bench, partition_geometric, PiecewiseModel, 3000,
            eps=-1.0, max_iterations=3,
        )
        assert result.iterations == 3
        assert not result.converged

    def test_negative_total_rejected(self):
        platform = _platform([1.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        with pytest.raises(PartitionError):
            distributed_partition(
                bench, partition_geometric, PiecewiseModel, -1
            )

    def test_total_time_includes_benchmarks(self):
        platform = _platform([1.0e9, 1.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        result = distributed_partition(
            bench, partition_geometric, PiecewiseModel, 2000
        )
        # Virtual clocks advanced by at least the per-rank kernel time.
        assert result.total_time > 0.0
        assert result.total_time >= result.protocol_time
