"""Power profiles and the energy-model family.

Covers the platform layer (watts-vs-size profiles, joule pricing of
measured timing points, GPU transfer energy through the Hockney link
model) and the ``EnergyModel`` mixin contract: same lazy-rebuild /
batch-evaluation surface as the speed families, but fingerprinting
that can never collide with a speed model fitted to the same points.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.models import (
    ConstantEnergyModel,
    ConstantModel,
    LinearEnergyModel,
    PiecewiseEnergyModel,
    PiecewiseModel,
    energy_model_for,
    is_energy_model,
)
from repro.core.point import MeasurementPoint
from repro.errors import PlatformError
from repro.platform.power import (
    ConstantPower,
    GpuPower,
    LinearPower,
    LinkModel,
    energy_points_from_power,
    load_power_profiles,
    power_profile_from_dict,
)

pytestmark = pytest.mark.energy


def timing_points(speed: float, sizes=(64, 128, 256, 512, 1024)):
    return [MeasurementPoint(d, d / speed) for d in sizes]


class TestPowerProfiles:
    def test_constant_power_energy_is_watts_times_seconds(self):
        p = ConstantPower(idle_watts=10.0, dynamic_watts=30.0)
        assert p.watts_at(1) == 40.0
        assert p.energy_joules(100, 2.5) == pytest.approx(100.0)

    def test_zero_size_costs_zero_joules(self):
        for p in (
            ConstantPower(idle_watts=10.0, dynamic_watts=30.0),
            LinearPower(idle_watts=5.0, base_watts=20.0, watts_per_unit=0.1),
        ):
            assert p.energy_joules(0, 1.0) == 0.0

    def test_linear_power_ramps_and_saturates(self):
        p = LinearPower(idle_watts=10.0, base_watts=50.0,
                        watts_per_unit=0.1, peak_watts=100.0)
        assert p.watts_at(100) == pytest.approx(70.0)
        # 10 + min(50 + 0.1 * d, 100) caps at 110 total.
        assert p.watts_at(10_000) == pytest.approx(110.0)

    def test_gpu_power_transfer_priced_through_link(self):
        link = LinkModel(latency=1e-6, bandwidth=1e9)
        p = GpuPower(idle_watts=20.0, base_watts=50.0, peak_watts=200.0,
                     ramp_units=256, transfer_watts=15.0,
                     bytes_per_unit=8.0, link=link)
        d = 1000
        expected_seconds = 1e-6 + (8.0 * d) / 1e9
        assert p.transfer_joules(d) == pytest.approx(15.0 * expected_seconds)
        # Transfer joules are folded into the total energy price.
        e = p.energy_joules(d, 1.0)
        assert e > p.watts_at(d) * 1.0

    def test_gpu_power_saturates_past_ramp(self):
        p = GpuPower(idle_watts=0.0, base_watts=50.0, peak_watts=250.0,
                     ramp_units=512, transfer_watts=0.0, bytes_per_unit=0.0)
        # Asymptotic saturation: monotone in d, never exceeding peak.
        samples = [p.watts_at(d) for d in (0, 256, 512, 5120, 512_000)]
        assert samples == sorted(samples)
        assert all(w <= 250.0 for w in samples)
        assert p.watts_at(512_000) == pytest.approx(250.0, rel=2e-3)

    def test_spec_round_trip(self):
        profiles = [
            ConstantPower(idle_watts=5.0, dynamic_watts=20.0),
            LinearPower(idle_watts=10.0, base_watts=40.0,
                        watts_per_unit=0.05, peak_watts=150.0),
            GpuPower(idle_watts=25.0, base_watts=60.0, peak_watts=250.0,
                     ramp_units=512, transfer_watts=10.0, bytes_per_unit=8.0),
        ]
        for p in profiles:
            q = power_profile_from_dict(p.spec())
            assert q.spec() == p.spec()
            for d in (0, 1, 100, 5000):
                assert q.energy_joules(d, 1.5) == pytest.approx(
                    p.energy_joules(d, 1.5))

    def test_load_power_profiles_list_and_ranks_forms(self, tmp_path):
        specs = [ConstantPower(idle_watts=1.0, dynamic_watts=2.0).spec(),
                 LinearPower(idle_watts=3.0, base_watts=4.0).spec()]
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps(specs))
        keyed = tmp_path / "keyed.json"
        keyed.write_text(json.dumps({"ranks": specs}))
        for path in (flat, keyed):
            loaded = load_power_profiles(path)
            assert [p.spec() for p in loaded] == specs

    def test_unknown_kind_is_typed_error(self):
        with pytest.raises(PlatformError):
            power_profile_from_dict({"kind": "fusion-reactor"})


class TestEnergyPricing:
    def test_energy_points_price_in_joules(self):
        pts = timing_points(100.0)
        profile = ConstantPower(idle_watts=10.0, dynamic_watts=40.0)
        priced = energy_points_from_power(pts, profile)
        assert len(priced) == len(pts)
        for raw, joule in zip(pts, priced):
            assert joule.d == raw.d
            assert joule.t == pytest.approx(50.0 * raw.t)

    def test_non_positive_joules_rejected(self):
        class BrokenProfile(ConstantPower):
            def energy_joules(self, d, seconds):
                return 0.0

        pts = timing_points(100.0)
        with pytest.raises(PlatformError):
            energy_points_from_power(
                pts, BrokenProfile(idle_watts=1.0, dynamic_watts=1.0))


class TestEnergyModelFamily:
    def test_registry_twins(self):
        assert energy_model_for("constant") is ConstantEnergyModel
        assert energy_model_for("linear") is LinearEnergyModel
        assert energy_model_for("piecewise") is PiecewiseEnergyModel
        # Unknown speed families fall back to the piecewise energy model.
        assert energy_model_for("akima") is PiecewiseEnergyModel

    def test_is_energy_model(self):
        assert is_energy_model(PiecewiseEnergyModel())
        assert not is_energy_model(PiecewiseModel())

    def test_energy_aliases_time(self):
        em = PiecewiseEnergyModel()
        pts = timing_points(100.0)
        profile = ConstantPower(idle_watts=10.0, dynamic_watts=40.0)
        em.update_many(energy_points_from_power(pts, profile))
        assert em.objective == "energy"
        d = 256
        assert em.energy(d) == pytest.approx(em.time(d))
        batch = em.energy_batch(np.array([64, 256, 1024]))
        single = [em.energy(64), em.energy(256), em.energy(1024)]
        assert np.allclose(batch, single)

    def test_energy_fingerprint_never_collides_with_speed_parent(self):
        """The aliasing hazard at the root of the cache-key design.

        An energy model fitted to the *same* (d, t) pairs as a speed
        model must fingerprint differently, or a joules plan could be
        served for a seconds request.
        """
        pairs = [
            (ConstantModel, ConstantEnergyModel),
            (PiecewiseModel, PiecewiseEnergyModel),
        ]
        pts = timing_points(100.0)
        for speed_cls, energy_cls in pairs:
            speed, energy = speed_cls(), energy_cls()
            speed.update_many(pts)
            energy.update_many(pts)
            assert speed.fingerprint_state() != energy.fingerprint_state()

    def test_energy_model_predictions_match_profile(self):
        pts = timing_points(200.0)
        profile = LinearPower(idle_watts=10.0, base_watts=30.0,
                              watts_per_unit=0.01)
        em = PiecewiseEnergyModel()
        em.update_many(energy_points_from_power(pts, profile))
        for p in pts:
            expected = profile.energy_joules(p.d, p.t)
            assert em.energy(p.d) == pytest.approx(expected, rel=1e-9)
