"""Tests for watchdog deadlines (wall-clock and virtual time)."""

from __future__ import annotations

import pytest

from repro.degrade import Deadline, Watchdog
from repro.errors import DeadlineExceeded


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadlineWallClock:
    def test_fresh_deadline_not_expired(self):
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        assert not dl.expired
        assert dl.elapsed == 0.0
        assert dl.remaining == 1.0
        dl.check()  # no raise

    def test_expiry_raises_typed_error(self):
        clock = FakeClock()
        dl = Deadline(1.0, stage="benchmark", rank=2, clock=clock)
        clock.advance(1.5)
        assert dl.expired
        with pytest.raises(DeadlineExceeded) as exc_info:
            dl.check(partial=[1, 2, 3])
        exc = exc_info.value
        assert exc.budget == 1.0
        assert exc.elapsed == pytest.approx(1.5)
        assert exc.stage == "benchmark"
        assert exc.rank == 2
        assert exc.partial == [1, 2, 3]

    def test_exactly_at_budget_not_expired(self):
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        assert not dl.expired
        dl.check()

    def test_remaining_clamps_at_zero(self):
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        assert dl.remaining == 0.0

    def test_consume_ignored_in_wall_mode(self):
        # The wall clock is authoritative; consume() only checks.
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        dl.consume(10.0)  # clock has not moved, so no expiry
        assert dl.elapsed == 0.0


class TestDeadlineVirtual:
    def test_consume_accumulates(self):
        dl = Deadline(1.0, clock=None)
        dl.consume(0.4)
        dl.consume(0.4)
        assert dl.elapsed == pytest.approx(0.8)
        assert not dl.expired

    def test_consume_past_budget_raises(self):
        dl = Deadline(1.0, stage="benchmark", clock=None)
        dl.consume(0.9)
        with pytest.raises(DeadlineExceeded) as exc_info:
            dl.consume(0.5, partial="partial-result")
        assert exc_info.value.partial == "partial-result"
        assert exc_info.value.elapsed == pytest.approx(1.4)

    def test_negative_consume_rejected(self):
        dl = Deadline(1.0, clock=None)
        with pytest.raises(ValueError):
            dl.consume(-0.1)

    def test_message_names_stage_and_rank(self):
        dl = Deadline(0.5, stage="model-fit", rank=3, clock=None)
        with pytest.raises(DeadlineExceeded, match="model-fit"):
            dl.consume(1.0)


class TestDeadlineValidation:
    @pytest.mark.parametrize("budget", [0.0, -1.0, float("nan")])
    def test_bad_budget_rejected(self, budget):
        with pytest.raises(ValueError):
            Deadline(budget)


class TestWatchdog:
    def test_deadline_factory_mints_fresh_deadlines(self):
        clock = FakeClock()
        wd = Watchdog(1.0, clock=clock)
        a = wd.deadline(stage="x")
        clock.advance(0.8)
        b = wd.deadline(stage="y")
        assert a.elapsed == pytest.approx(0.8)
        assert b.elapsed == 0.0

    def test_call_injects_deadline_kwarg(self):
        clock = FakeClock()
        wd = Watchdog(1.0, clock=clock)
        seen = {}

        def fn(x, deadline=None):
            seen["deadline"] = deadline
            return x * 2

        assert wd.call(fn, 21, stage="s", rank=1) == 42
        assert seen["deadline"] is not None
        assert seen["deadline"].stage == "s"

    def test_call_without_deadline_param(self):
        clock = FakeClock()
        wd = Watchdog(1.0, clock=clock)
        assert wd.call(lambda x: x + 1, 1) == 2

    def test_call_checks_after_return(self):
        clock = FakeClock()
        wd = Watchdog(1.0, clock=clock)

        def slow():
            clock.advance(2.0)
            return "partial"

        with pytest.raises(DeadlineExceeded) as exc_info:
            wd.call(slow, stage="slow-stage")
        assert exc_info.value.partial == "partial"
