"""Closed-loop chaos: feedback storms, routed feedback, crash recovery.

The acceptance criteria of the closed loop under fire:

* an **honest-drift** storm converges served plans toward the drifted
  platform (epochs commit, work shifts off the slowed rank);
* **adversarial** storms -- lying ranks, NaN floods, slow-drip poisoners
  -- never change a served plan at all: the epoch stays put, the same
  request returns bit-identical plans, and every poisoned source is
  named in the :class:`QuarantineReport`;
* through a real fleet, ``POST /feedback`` relays to the home shard and
  unknown verbs surface the *shard's* error taxonomy verbatim (never a
  router 500);
* a SIGKILLed worker -- including one killed mid-commit, leaving a torn
  lineage record -- recovers a consistent epoch from its lineage WAL.
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import model_from_time_fn
from repro.cli import main as cli_main
from repro.core.models import PiecewiseModel
from repro.errors import FeedbackRejected, QuarantineError
from repro.faults import FeedbackStorm
from repro.serve import (
    FeedbackController,
    FeedbackQuarantine,
    ModelLineage,
    PlanFleet,
    PlanServer,
    ShardClient,
    handle_request,
)

pytestmark = [pytest.mark.chaos, pytest.mark.feedback]

SIZES = [16, 128, 1024, 4096]


def make_models(speeds):
    return [
        model_from_time_fn(PiecewiseModel, lambda d, s=s: d / s, SIZES)
        for s in speeds
    ]


def make_loop(speeds=(100.0, 200.0, 400.0), refit_every=8, **quarantine_kw):
    server = PlanServer(make_models(speeds), max_workers=2)
    lineage = ModelLineage(server.models)
    server.attach_feedback(FeedbackController(
        server, lineage,
        quarantine=FeedbackQuarantine(**quarantine_kw),
        refit_every=refit_every,
    ))
    return server, lineage


def run_storm(server, storm, plans, truth):
    """Feed every storm payload through the front-end dispatch."""
    return [
        handle_request(server, payload)
        for payload in storm.payloads(plans, truth)
    ]


class TestHonestDrift:
    def test_converging_plans_follow_the_platform(self):
        # Served models think rank 1 runs at speed 200; the platform
        # (truth) has it degraded to 100.  Honest reports must commit an
        # epoch and shift work off the slowed rank.
        server, lineage = make_loop(speeds=(100.0, 200.0, 400.0),
                                    refit_every=8)
        truth = make_models((100.0, 100.0, 400.0))
        before = server.request(2800)
        storm = FeedbackStorm(source="honest0", behaviour="honest",
                              jitter=0.02, seed=7)
        outs = run_storm(server, storm, [before.sizes] * 8, truth)
        assert all(out.get("status") == "accepted" for out in outs)
        assert lineage.epoch >= 1
        after = server.request(2800)
        assert sum(after.sizes) == 2800
        assert after.sizes[1] < before.sizes[1]  # the slowed rank sheds work
        # Staleness bound: the commit re-keyed the cache, so the served
        # plan reflects the new epoch immediately, not lazily.
        assert after.key != before.key

    def test_storm_payloads_are_reproducible(self):
        truth = make_models((100.0, 200.0, 400.0))
        storm = FeedbackStorm(source="s", behaviour="slow-drip", seed=3,
                              lie_factor=64.0)
        plans = [(100, 200, 400)] * 6
        assert storm.payloads(plans, truth) == storm.payloads(plans, truth)


class TestAdversarialStorms:
    @pytest.mark.parametrize("behaviour,lying_ranks", [
        ("lying", ()),         # every rank misreports 64x
        ("lying", (1,)),       # one rank lies to steal work
        ("nan-flood", (0,)),   # NaN arrives through JSON intact
    ])
    def test_storm_never_changes_served_plans(self, behaviour, lying_ranks):
        server, lineage = make_loop(refit_every=4, max_strikes=3)
        before = server.request(2800)
        baseline = before.to_dict()
        storm = FeedbackStorm(source="evil0", behaviour=behaviour,
                              lying_ranks=lying_ranks, seed=11)
        outs = run_storm(server, storm, [before.sizes] * 6, server.models)
        assert all(out["code"] in (400, 403) for out in outs)
        # Rejected feedback never advances the epoch: the same request
        # returns the same plan, byte for byte.
        assert lineage.epoch == 0
        after = server.request(2800)
        assert after.to_dict() == {**baseline, "cached": True}
        # The poisoner is named and, after three straight strikes,
        # quarantined outright.
        report = server.feedback.quarantine.report
        assert "evil0" in report.sources_named
        assert server.feedback.quarantine.quarantined_sources() == ["evil0"]

    def test_slow_drip_is_rejected_without_widening_any_gate(self):
        # A poisoner nursing its reputation: honest reports between
        # lies, so strikes never go consecutive.  The lies still bounce
        # -- the fixed-k gate cannot be trained open -- and every one is
        # on the record even though the source avoids quarantine.
        server, lineage = make_loop(refit_every=100, max_strikes=3)
        before = server.request(2800)
        storm = FeedbackStorm(source="drip0", behaviour="slow-drip",
                              drip_every=3, lie_factor=64.0, seed=5)
        outs = run_storm(server, storm, [before.sizes] * 9, server.models)
        rejected = [out for out in outs if "code" in out]
        accepted = [out for out in outs if out.get("status") == "accepted"]
        assert len(rejected) == 3 and len(accepted) == 6
        assert all(out["rejected"] == ["outlier"] for out in rejected)
        report = server.feedback.quarantine.report
        assert report.sources_named == ["drip0"]
        assert server.feedback.quarantine.quarantined_sources() == []
        # No refit ran (buffer below refit_every): plans untouched.
        assert lineage.epoch == 0
        assert server.request(2800).sizes == before.sizes

    def test_mixed_storms_name_every_poisoned_source(self):
        server, _ = make_loop(refit_every=100, max_strikes=2)
        plan = server.request(2800)
        for storm in (
            FeedbackStorm(source="liar", behaviour="lying", seed=1),
            FeedbackStorm(source="flood", behaviour="nan-flood", seed=2),
            FeedbackStorm(source="honest", behaviour="honest", seed=3),
        ):
            run_storm(server, storm, [plan.sizes] * 3, server.models)
        report = server.feedback.quarantine.report
        assert report.sources_named == ["flood", "liar"]
        assert server.feedback.quarantine.quarantined_sources() == [
            "flood", "liar"
        ]
        assert report.accepted == 3  # the honest bystander got through


@pytest.mark.fleet
class TestFleetFeedback:
    @pytest.fixture(scope="class")
    def points_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("feedback-points")
        assert cli_main([
            "build", "--platform", "fig4", "--sizes", "32,128,512",
            "--out", str(out),
        ]) == 0
        return out

    def feedback_via_router(self, fleet, payload):
        client = ShardClient(fleet.url)
        try:
            status, decoded = client._json("POST", "/feedback", payload)
        finally:
            client.close()
        return status, decoded

    def honest_payload(self, fleet, total, source="app0", factor=1.0):
        """A report echoing the fleet's own plan -- honest by construction."""
        client = ShardClient(fleet.url)
        try:
            plan = client.plan({"cmd": "plan", "total": total})
        finally:
            client.close()
        return {
            "source": source,
            "total": total,
            "sizes": list(plan["sizes"]),
            # The wire carries repr'd floats (bit-exact round-trips).
            "times": [factor * float(t) for t in plan["times"]],
        }

    def test_feedback_relays_to_the_home_shard(self, points_dir, tmp_path):
        with PlanFleet(points_dir, workers=2, probe=False,
                       cache_dir=tmp_path / "caches",
                       worker_args=["--refit-every", "64"]) as fleet:
            payload = self.honest_payload(fleet, 4000)
            status, out = self.feedback_via_router(fleet, payload)
            assert status == 200
            assert out["status"] == "accepted" and out["epoch"] == 0
            # The shard's taxonomy relays verbatim too: a 64x lie is the
            # worker's 400, reasons and all, not a router 500.
            lie = dict(payload, times=[t * 64 for t in payload["times"]])
            status, out = self.feedback_via_router(fleet, lie)
            assert status == 400
            assert out["rejected"] == ["outlier"]
            relayed = fleet.router.counters["feedback_relayed"]
            assert relayed == 2

    def test_unknown_verb_surfaces_the_shards_taxonomy(self, points_dir):
        # Satellite contract: the router is a relay, not an interpreter.
        # A verb it has never heard of must come back as the shard's own
        # 400 ("unknown command ..."), never a router-made 500.
        with PlanFleet(points_dir, workers=2, probe=False) as fleet:
            client = ShardClient(fleet.url)
            try:
                reply = client.plan({"cmd": "bogus-verb", "total": 100})
            finally:
                client.close()
            assert reply["code"] == 400
            assert "unknown command 'bogus-verb'" in reply["error"]

    def test_sigkill_mid_refit_recovers_a_consistent_lineage(
        self, points_dir, tmp_path
    ):
        cache_dir = tmp_path / "caches"
        with PlanFleet(points_dir, workers=1, probe=False,
                       cache_dir=cache_dir,
                       worker_args=["--refit-every", "4"]) as fleet:
            payload = self.honest_payload(fleet, 4000)
            epoch = 0
            for i in range(4):
                status, out = self.feedback_via_router(
                    fleet, dict(payload, source=f"app{i}")
                )
                assert status == 200
                epoch = out["epoch"]
            assert epoch == 1  # the fourth report committed a refit

            # SIGKILL, then simulate dying *mid-commit*: a torn final
            # lineage record, exactly what an interrupted fsync leaves.
            fleet.kill_shard("shard0")
            lineage_wal = cache_dir / "shard0.plans.lineage"
            assert lineage_wal.exists()
            with open(lineage_wal, "a", encoding="utf-8") as handle:
                handle.write('{"magic": "fupermod-lineage-wal", "v": 1,')

            ready = fleet.restart_shard("shard0")
            # The torn commit never happened; epoch 1 is the consistent
            # recovered state, reported on the READY line.
            assert ready["epoch"] == 1
            status, out = self.feedback_via_router(
                fleet, dict(payload, source="app-after")
            )
            assert status == 200
            assert out["epoch"] == 1

    def test_feedback_survives_json_nan_on_the_wire(self, points_dir):
        # Python's json emits/accepts bare NaN tokens; the quarantine --
        # not a parser error -- must be what stops a NaN flood over HTTP.
        with PlanFleet(points_dir, workers=1, probe=False) as fleet:
            payload = self.honest_payload(fleet, 4000, source="nan-app")
            payload["times"][0] = float("nan")
            status, out = self.feedback_via_router(fleet, payload)
            assert status == 400
            assert out["rejected"] == ["non-finite"]
