"""Tests for profile calibration and distributed-matmul verification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.matmul.partition2d import ColumnPartition, Rectangle, partition_columns
from repro.apps.matmul.verification import (
    compute_distributed_matmul,
    verify_partition_math,
)
from repro.errors import PartitionError, PlatformError
from repro.platform.calibration import (
    fit_cache_profile,
    fit_gpu_profile,
    speed_samples_from_points,
)
from repro.platform.profiles import CacheHierarchyProfile, GpuProfile


class TestFitGpuProfile:
    def test_recovers_known_parameters(self):
        truth = GpuProfile(peak_flops=8.0e10, ramp_units=2500.0)
        sizes = [50, 200, 800, 3000, 12000, 50000]
        samples = [(d, truth.flops_at(d)) for d in sizes]
        fit = fit_gpu_profile(samples)
        assert fit.profile.peak_flops == pytest.approx(8.0e10, rel=0.02)
        assert fit.profile.ramp_units == pytest.approx(2500.0, rel=0.05)
        assert fit.residual < 1e-6

    def test_recovers_under_noise(self):
        truth = GpuProfile(peak_flops=5.0e10, ramp_units=1000.0)
        rng = np.random.default_rng(0)
        sizes = np.geomspace(20, 60000, 20)
        samples = [
            (float(d), truth.flops_at(d) * (1.0 + 0.03 * rng.standard_normal()))
            for d in sizes
        ]
        fit = fit_gpu_profile(samples)
        assert fit.profile.peak_flops == pytest.approx(5.0e10, rel=0.1)
        assert fit.residual < 0.1

    def test_needs_three_samples(self):
        with pytest.raises(PlatformError):
            fit_gpu_profile([(10, 1.0), (20, 2.0)])

    def test_rejects_non_positive(self):
        with pytest.raises(PlatformError):
            fit_gpu_profile([(10, 1.0), (20, -2.0), (30, 3.0)])


class TestFitCacheProfile:
    def test_recovers_cliff(self):
        truth = CacheHierarchyProfile(
            levels=[(2000.0, 6.0e9)], paged_flops=1.0e9, transition_width=0.1
        )
        sizes = np.geomspace(50, 100000, 25)
        samples = [(float(d), truth.flops_at(d)) for d in sizes]
        fit = fit_cache_profile(samples, transition_width=0.1)
        profile = fit.profile
        assert profile.levels[0][1] == pytest.approx(6.0e9, rel=0.05)
        assert profile.paged_flops == pytest.approx(1.0e9, rel=0.1)
        assert profile.levels[0][0] == pytest.approx(2000.0, rel=0.2)
        assert fit.residual < 0.02

    def test_needs_four_samples(self):
        with pytest.raises(PlatformError):
            fit_cache_profile([(1, 1.0), (2, 1.0), (3, 1.0)])

    def test_round_trip_through_measurement(self):
        # Device -> benchmark -> points -> samples -> fitted profile.
        from repro.core.benchmark import Benchmark
        from repro.core.kernel import SimulatedKernel
        from repro.core.precision import Precision
        from repro.platform.device import Device
        from repro.platform.noise import NoNoise

        truth = CacheHierarchyProfile(
            levels=[(1000.0, 4.0e9)], paged_flops=0.5e9, transition_width=0.1
        )
        device = Device("d", truth, noise=NoNoise())
        kernel = SimulatedKernel(device, unit_flops=1.0e6)
        bench = Benchmark(kernel, Precision(reps_min=2, reps_max=2))
        points = [bench.run(int(d)) for d in np.geomspace(20, 50000, 16)]
        samples = speed_samples_from_points(points, kernel.complexity)
        fit = fit_cache_profile(samples, transition_width=0.1)
        for d in [100, 5000, 40000]:
            assert fit.profile.flops_at(d) == pytest.approx(
                truth.flops_at(d), rel=0.1
            )


class TestDistributedMatmul:
    def test_matches_numpy_for_even_layout(self):
        partition = partition_columns([1.0] * 4, nb=6)
        deviation = verify_partition_math(partition, block=4)
        assert deviation < 1e-10

    def test_matches_numpy_for_skewed_layout(self):
        partition = partition_columns([5.0, 1.0, 2.0], nb=8)
        deviation = verify_partition_math(partition, block=3)
        assert deviation < 1e-9

    def test_zero_area_rank_ok(self):
        partition = partition_columns([1.0, 0.0, 1.0], nb=4)
        verify_partition_math(partition, block=2)

    def test_shape_mismatch_rejected(self):
        partition = partition_columns([1.0], nb=4)
        a = np.zeros((5, 5))
        with pytest.raises(PartitionError):
            compute_distributed_matmul(a, a, partition, block=2)

    def test_gap_detected(self):
        # A hand-built partition that misses a region must be caught.
        bad = ColumnPartition(
            nb=2,
            column_widths=[2],
            rectangles=[Rectangle(rank=0, row=0, col=0, height=1, width=2)],
        )
        a = np.ones((4, 4))
        with pytest.raises(PartitionError, match="cover"):
            compute_distributed_matmul(a, a, bad, block=2)

    def test_overlap_detected(self):
        bad = ColumnPartition(
            nb=2,
            column_widths=[2],
            rectangles=[
                Rectangle(rank=0, row=0, col=0, height=2, width=2),
                Rectangle(rank=1, row=1, col=0, height=1, width=2),
            ],
        )
        a = np.ones((4, 4))
        with pytest.raises(PartitionError, match="overlap"):
            compute_distributed_matmul(a, a, bad, block=2)

    @given(
        st.lists(st.floats(min_value=0.5, max_value=8.0), min_size=1, max_size=6),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_generated_partition_computes_correctly(self, areas, nb):
        if len(areas) > nb:
            return
        partition = partition_columns(areas, nb)
        deviation = verify_partition_math(partition, block=2)
        assert deviation < 1e-9
