"""Tests for the public API surface and the end-to-end workflows.

These are the integration tests: they exercise exactly the code paths a
downstream user follows (the quickstart, the static workflow, the dynamic
workflow) through the top-level ``repro`` namespace only.
"""

from __future__ import annotations

import pytest

import repro
from repro import (
    AkimaModel,
    ConstantModel,
    DynamicPartitioner,
    LoadBalancer,
    PiecewiseModel,
    PlatformBenchmark,
    Precision,
    build_full_models,
    partition_constant,
    partition_geometric,
    partition_numerical,
)
from repro.platform.presets import fig4_trio, heterogeneous_cluster


class TestApiSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_error_hierarchy_exposed(self):
        assert issubclass(repro.FuPerModError, Exception)


class TestStaticWorkflow:
    """Full models built in advance, then static partitioning."""

    @pytest.fixture(scope="class")
    def built(self):
        platform = heterogeneous_cluster(noisy=False)
        bench = PlatformBenchmark(platform, unit_flops=2.0 * 32**3)
        sizes = [64, 256, 1024, 4096, 16384]
        pw, _ = build_full_models(bench, PiecewiseModel, sizes)
        ak, _ = build_full_models(bench, AkimaModel, sizes)
        cm, _ = build_full_models(bench, ConstantModel, [1024])
        return platform, pw, ak, cm

    def test_all_algorithms_partition_exactly(self, built):
        _platform, pw, ak, cm = built
        total = 50_000
        for dist in (
            partition_geometric(total, pw),
            partition_numerical(total, ak),
            partition_constant(total, cm),
        ):
            assert dist.total == total
            assert all(p.d >= 0 for p in dist.parts)

    def test_fpm_gives_gpu_most_work(self, built):
        platform, pw, _ak, _cm = built
        dist = partition_geometric(50_000, pw)
        gpu_rank = max(range(platform.size), key=lambda r: dist.sizes[r])
        assert "gpu" in platform.devices[gpu_rank].name

    def test_fpm_predicted_balance_tight(self, built):
        _platform, pw, _ak, _cm = built
        dist = partition_geometric(50_000, pw)
        active = [p.t for p in dist.parts if p.d > 0]
        assert (max(active) - min(active)) / max(active) < 0.05

    def test_geometric_and_numerical_agree(self, built):
        _platform, pw, ak, _cm = built
        total = 50_000
        dg = partition_geometric(total, pw)
        dn = partition_numerical(total, ak)
        for a, b in zip(dg.sizes, dn.sizes):
            assert abs(a - b) <= 0.05 * total


class TestDynamicWorkflow:
    def test_dynamic_partitioner_end_to_end(self):
        platform = fig4_trio(noisy=False)
        bench = PlatformBenchmark(
            platform, unit_flops=1.0e6, precision=Precision(reps_min=1, reps_max=3)
        )
        models = [PiecewiseModel() for _ in range(platform.size)]
        dyn = DynamicPartitioner(
            partition_geometric, models, 3600, bench.measure_group, eps=0.02
        )
        result = dyn.run()
        assert result.converged
        # fig4 speeds 16:11:9 -> 1600/1100/900.
        assert result.final.sizes[0] == pytest.approx(1600, abs=40)
        assert result.final.sizes[1] == pytest.approx(1100, abs=40)

    def test_load_balancer_with_simulated_times(self):
        platform = fig4_trio(noisy=False)
        models = [PiecewiseModel() for _ in range(platform.size)]
        lb = LoadBalancer(partition_geometric, models, 360, threshold=0.05)
        import numpy as np

        rngs = [np.random.default_rng(i) for i in range(platform.size)]
        for _ in range(8):
            times = [
                platform.device(r).execution_time(1.0e6 * d, d, rngs[r])
                if d > 0 else 0.0
                for r, d in enumerate(lb.dist.sizes)
            ]
            lb.iterate(times)
        assert lb.dist.sizes == [160, 110, 90]
