"""Tests for the PCHIP model and time-varying perturbations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import PchipModel
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.core.point import MeasurementPoint
from repro.errors import ModelError, PlatformError
from repro.platform.perturbation import PerturbationSchedule, SpeedStep

from tests.conftest import model_from_time_fn


class TestPchipModel:
    def test_linear_time_reproduced(self):
        m = model_from_time_fn(PchipModel, lambda d: d / 50.0, [10, 100, 1000])
        for x in [5.0, 55.0, 500.0]:
            assert m.time(x) == pytest.approx(x / 50.0, rel=1e-9)

    def test_origin_anchor(self):
        m = model_from_time_fn(PchipModel, lambda d: d / 10.0, [100])
        assert m.time(0) == 0.0
        assert m.time(50) == pytest.approx(5.0)

    def test_time_monotone_even_with_noisy_data(self):
        # Non-monotone measured times: PCHIP flattens, never decreases.
        m = PchipModel()
        for d, t in [(10, 0.10), (20, 0.30), (30, 0.28), (40, 0.50)]:
            m.update(MeasurementPoint(d=d, t=t))
        xs = np.linspace(1.0, 60.0, 120)
        times = [m.time(float(x)) for x in xs]
        for a, b in zip(times, times[1:]):
            assert b >= a - 1e-12

    def test_usable_by_geometric_partitioner(self):
        models = [
            model_from_time_fn(PchipModel, lambda d, s=s: d / s, [10, 100, 1000, 5000])
            for s in (30.0, 10.0)
        ]
        dist = partition_geometric(8000, models)
        assert dist.sizes == [6000, 2000]

    def test_usable_by_numerical_partitioner(self):
        models = [
            model_from_time_fn(PchipModel, lambda d, s=s: d / s, [10, 100, 1000, 5000])
            for s in (30.0, 10.0)
        ]
        dist = partition_numerical(8000, models)
        assert dist.total == 8000
        assert abs(dist.sizes[0] - 6000) <= 20

    def test_extrapolation_increasing(self):
        m = model_from_time_fn(PchipModel, lambda d: d / 10.0, [10, 40])
        assert m.time(100) > m.time(40)

    def test_needs_distinct_sizes_without_origin(self):
        # Rebuilds are lazy: the unfittable data surfaces at first evaluation.
        m = PchipModel(include_origin=False)
        m.update(MeasurementPoint(d=5, t=1.0))
        with pytest.raises(ModelError):
            m.time(5)

    def test_registered(self):
        from repro.core.registry import available_models

        assert "pchip" in available_models()


class TestSpeedStep:
    def test_active_window(self):
        step = SpeedStep(rank=0, start_time=1.0, factor=0.5, end_time=2.0)
        assert not step.active_at(0.5)
        assert step.active_at(1.0)
        assert step.active_at(1.5)
        assert not step.active_at(2.0)

    def test_permanent(self):
        step = SpeedStep(rank=0, start_time=1.0, factor=0.5)
        assert step.active_at(100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rank=-1, start_time=0.0, factor=0.5),
            dict(rank=0, start_time=-1.0, factor=0.5),
            dict(rank=0, start_time=0.0, factor=0.0),
            dict(rank=0, start_time=0.0, factor=1.5),
            dict(rank=0, start_time=2.0, factor=0.5, end_time=1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PlatformError):
            SpeedStep(**kwargs)


class TestPerturbationSchedule:
    def test_empty_is_identity(self):
        schedule = PerturbationSchedule()
        assert schedule.factor(0, 10.0) == 1.0
        assert not schedule

    def test_single_step(self):
        schedule = PerturbationSchedule([SpeedStep(1, 5.0, 0.5)])
        assert schedule.factor(1, 4.0) == 1.0
        assert schedule.factor(1, 6.0) == 0.5
        assert schedule.factor(0, 6.0) == 1.0

    def test_overlapping_steps_multiply(self):
        schedule = PerturbationSchedule(
            [SpeedStep(0, 0.0, 0.5), SpeedStep(0, 1.0, 0.4)]
        )
        assert schedule.factor(0, 2.0) == pytest.approx(0.2)

    def test_add(self):
        schedule = PerturbationSchedule()
        schedule.add(SpeedStep(0, 0.0, 0.9))
        assert schedule
        assert schedule.factor(0, 1.0) == 0.9


class TestJacobiUnderPerturbation:
    def test_balancer_reacts_to_slowdown(self):
        from repro.apps.jacobi.distributed import run_balanced_jacobi
        from repro.core.models import PiecewiseModel
        from repro.platform.presets import fig4_trio

        platform = fig4_trio(noisy=False)
        models = [PiecewiseModel() for _ in range(platform.size)]
        balancer = LoadBalancer(partition_geometric, models, 360, threshold=0.05)
        # Rank 0 (fastest) halves in speed almost immediately.
        schedule = PerturbationSchedule([SpeedStep(0, 1e-6, 0.5)])
        result = run_balanced_jacobi(
            platform,
            balancer,
            eps=1e-13,
            max_iterations=15,
            perturbations=schedule,
        )
        # Effective speeds become 8:11:9 -> the balancer must demote rank 0
        # below rank 1.
        final = result.final_sizes
        assert final[1] > final[0]
        assert sum(final) == 360
