"""Tests for the geometric bisection trace and outlier-robust measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro._stats import mad_filter
from repro.core.benchmark import Benchmark
from repro.core.kernel import CallableKernel
from repro.core.models import PiecewiseModel
from repro.core.partition.geometric import BisectionStep, partition_geometric
from repro.core.precision import Precision
from repro.errors import BenchmarkError

from tests.conftest import model_from_time_fn


class TestGeometricTrace:
    def _models(self):
        return [
            model_from_time_fn(
                PiecewiseModel, lambda d, s=s: d / s, [10, 1000, 100000]
            )
            for s in (3.0, 1.0)
        ]

    def test_trace_recorded(self):
        trace = []
        partition_geometric(4000, self._models(), trace=trace)
        assert trace
        assert all(isinstance(step, BisectionStep) for step in trace)

    def test_trace_levels_bracket_solution(self):
        trace = []
        dist = partition_geometric(4000, self._models(), trace=trace)
        # The final equal time is 1000 units/speed-unit = 1000s on both.
        final_time = dist.parts[0].t
        assert min(s.level for s in trace) <= final_time
        assert max(s.level for s in trace) >= final_time * 0.99

    def test_slope_is_inverse_level(self):
        trace = []
        partition_geometric(600, self._models(), trace=trace)
        for step in trace:
            assert step.slope == pytest.approx(1.0 / step.level)

    def test_excess_signs_converge(self):
        trace = []
        partition_geometric(600, self._models(), trace=trace)
        # The residual of the last probe is essentially zero.
        assert abs(trace[-1].excess) <= 1.0

    def test_allocations_lengths(self):
        trace = []
        partition_geometric(600, self._models(), trace=trace)
        assert all(len(s.allocations) == 2 for s in trace)

    def test_no_trace_by_default(self):
        # Just exercising the default path (no crash, no side effects).
        dist = partition_geometric(600, self._models())
        assert dist.total == 600


class TestMadFilter:
    def test_keeps_clean_samples(self):
        samples = [1.0, 1.01, 0.99, 1.02, 0.98]
        assert mad_filter(samples) == samples

    def test_drops_spike(self):
        samples = [1.0, 1.01, 0.99, 1.02, 5.0]
        kept = mad_filter(samples)
        assert 5.0 not in kept
        assert len(kept) == 4

    def test_identical_samples_kept(self):
        samples = [2.0] * 5
        assert mad_filter(samples) == samples

    def test_fewer_than_three_kept(self):
        assert mad_filter([1.0, 100.0]) == [1.0, 100.0]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            mad_filter([1.0, 2.0, 3.0], threshold=0.0)

    def test_never_returns_empty(self):
        # Extremely scattered data must still yield something.
        kept = mad_filter([1.0, 100.0, 10000.0, 1e6, 1e8])
        assert kept


class TestBenchmarkOutlierRejection:
    def _spiky_kernel(self, spike_every=4, spike_factor=50.0):
        """A kernel returning 1ms, with a huge spike every N runs."""
        counter = {"n": 0}

        def run(_payload):
            counter["n"] += 1

        kernel = CallableKernel(complexity_fn=lambda d: d, run_fn=run)

        # Override timing deterministically instead of using perf_counter.
        def execute(context):
            counter["n"] += 1
            if counter["n"] % spike_every == 0:
                return 0.001 * spike_factor
            return 0.001 * (1.0 + 0.001 * (counter["n"] % 3))

        kernel.execute = execute  # type: ignore[method-assign]
        return kernel

    def test_spikes_inflate_mean_without_filter(self):
        bench = Benchmark(
            self._spiky_kernel(),
            Precision(reps_min=12, reps_max=12),
        )
        point = bench.run(10)
        assert point.t > 0.004  # spikes dominate the mean

    def test_filter_recovers_true_mean(self):
        bench = Benchmark(
            self._spiky_kernel(),
            Precision(reps_min=12, reps_max=12, outlier_threshold=3.5),
        )
        point = bench.run(10)
        assert point.t == pytest.approx(0.001, rel=0.01)
        # reps still reports what was actually executed.
        assert point.reps == 12

    def test_invalid_threshold_rejected(self):
        with pytest.raises(BenchmarkError):
            Precision(outlier_threshold=-1.0)

    def test_filter_noop_on_clean_data(self):
        rng = np.random.default_rng(0)
        samples = list(1.0 + 0.01 * rng.standard_normal(20))
        assert len(mad_filter(samples)) >= 18
