"""Chaos suite: kill -9 recovery, WAL damage, floods, seeded fault storms.

These tests exercise the hardening invariants end to end (marker
``chaos``; they also run in the default suite, kept fast enough to):

* **kill-and-restart** -- a ``fupermod serve`` subprocess SIGKILLed
  mid-stream recovers every *acknowledged* plan from snapshot + WAL
  replay, fingerprint-identical, dropping at most the torn tail of an
  unacknowledged commit;
* **graceful shutdown** -- SIGTERM drains, compacts and exits 0;
* **WAL damage** -- :func:`repro.faults.corrupt_wal`'s tail modes are
  tolerated, its interior mode is refused loudly;
* **overload floods** -- every request is either served or shed with a
  typed error; the counters account for all of them;
* **seeded fault storms** -- with a degradation policy, a partitioner
  failing on a seeded schedule still yields a full-coverage plan for
  every request, and the breaker's short circuits are visible in stats.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.registry import partitioner
from repro.degrade import DegradationPolicy
from repro.errors import PersistenceError, ServiceOverloadError
from repro.faults import SolveFaults, chaotic_partitioner, corrupt_wal
from repro.serve import BreakerBoard, DurablePlanCache, PlanEngine, PlanServer

from tests.test_serve_cache import FakeClock
from tests.test_serve_server import make_models, scratch_partitioner  # noqa: F401

pytestmark = [pytest.mark.serve, pytest.mark.chaos]

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def points_dir(tmp_path_factory):
    """A small build output shared by the subprocess chaos tests."""
    out = tmp_path_factory.mktemp("chaos-points")
    code = main(
        ["build", "--platform", "fig4", "--sizes", "32,128,512",
         "--out", str(out)]
    )
    assert code == 0
    return out


def spawn_serve(points_dir, cache_file, *extra):
    """Start a ``fupermod serve`` subprocess speaking stdio."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--points", str(points_dir), "--cache-file", str(cache_file),
         *extra],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True, env=env, cwd=str(REPO_ROOT),
    )


def ask(proc, total):
    """Send one plan request and read its acknowledged response."""
    proc.stdin.write(json.dumps({"total": total}) + "\n")
    proc.stdin.flush()
    line = proc.stdout.readline()
    assert line, "server died before answering"
    response = json.loads(line)
    assert "error" not in response, response
    return response


def recovered_payload(cache_file):
    """Recover the on-disk cache the way a restarted server would."""
    cache = DurablePlanCache(cache_file)
    cache.recover()
    payload = {entry["key"]: entry for entry in cache.to_payload()}
    cache.wal.close()
    return payload


class TestKillAndRestart:
    """SIGKILL loses nothing that was acknowledged."""

    def test_sigkill_mid_stream_recovers_every_acked_plan(
        self, points_dir, tmp_path
    ):
        cache_file = tmp_path / "plans.json"
        proc = spawn_serve(points_dir, cache_file)
        try:
            acked = [ask(proc, total) for total in (1000, 1500, 2000, 2500)]
            # One more request, killed before the ack comes back: it may
            # or may not have committed -- recovery must cope either way.
            proc.stdin.write(json.dumps({"total": 3000}) + "\n")
            proc.stdin.flush()
        finally:
            proc.kill()
            proc.wait(timeout=30)

        entries = recovered_payload(cache_file)
        for response in acked:
            entry = entries[response["key"]]
            # Fingerprint-identical: same key, same plan, bit-exact times.
            assert entry["result"]["sizes"] == response["sizes"]
            assert entry["result"]["times"] == response["times"]
            assert entry["result"]["total"] == response["total"]
            assert entry["result"]["algorithm"] == response["algorithm"]

    def test_sigkill_then_warm_restart_serves_from_cache(
        self, points_dir, tmp_path
    ):
        cache_file = tmp_path / "plans.json"
        proc = spawn_serve(points_dir, cache_file)
        try:
            first = ask(proc, 1800)
            assert first["cached"] is False
        finally:
            proc.kill()
            proc.wait(timeout=30)

        second = spawn_serve(points_dir, cache_file)
        try:
            again = ask(second, 1800)
            assert again["cached"] is True
            assert again["sizes"] == first["sizes"]
            assert again["times"] == first["times"]
        finally:
            second.kill()
            second.wait(timeout=30)

    def test_repeated_kill_restart_cycles_accumulate(
        self, points_dir, tmp_path
    ):
        cache_file = tmp_path / "plans.json"
        seen = {}
        for round_no, total in enumerate((1100, 1200, 1300)):
            proc = spawn_serve(points_dir, cache_file)
            try:
                response = ask(proc, total)
                seen[response["key"]] = response
            finally:
                proc.kill()
                proc.wait(timeout=30)
        entries = recovered_payload(cache_file)
        assert set(entries) == set(seen)

    def test_sigterm_drains_compacts_and_exits_zero(
        self, points_dir, tmp_path
    ):
        cache_file = tmp_path / "plans.json"
        proc = spawn_serve(points_dir, cache_file)
        try:
            ask(proc, 1000)
            ask(proc, 2000)
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert code == 0
        # Graceful exit compacted: journal empty, snapshot holds the plans.
        wal_path = cache_file.with_name(cache_file.name + ".wal")
        assert wal_path.stat().st_size == 0
        assert len(recovered_payload(cache_file)) == 2


class TestWALDamage:
    """corrupt_wal's modes against recovery's contract."""

    def seeded_cache(self, tmp_path, n=3):
        from tests.test_serve_cache import plan

        cache = DurablePlanCache(tmp_path / "plans.json")
        for i in range(n):
            cache.put(f"k{i}", plan(f"k{i}", total=100 + i), "m1")
        cache.wal.close()
        return cache.wal.path

    def test_torn_tail_tolerated(self, tmp_path):
        wal_path = self.seeded_cache(tmp_path)
        corrupt_wal(wal_path, "torn-tail")
        entries = recovered_payload(tmp_path / "plans.json")
        assert set(entries) == {"k0", "k1"}  # tail commit dropped

    def test_garbage_tail_tolerated(self, tmp_path):
        wal_path = self.seeded_cache(tmp_path)
        corrupt_wal(wal_path, "garbage-tail")
        entries = recovered_payload(tmp_path / "plans.json")
        assert set(entries) == {"k0", "k1", "k2"}  # all commits intact

    def test_interior_flip_refused(self, tmp_path):
        wal_path = self.seeded_cache(tmp_path)
        corrupt_wal(wal_path, "flip-byte")
        with pytest.raises(PersistenceError):
            recovered_payload(tmp_path / "plans.json")

    def test_unknown_mode_rejected(self, tmp_path):
        from repro.errors import FaultInjectionError

        wal_path = self.seeded_cache(tmp_path)
        with pytest.raises(FaultInjectionError):
            corrupt_wal(wal_path, "set-on-fire")


class TestOverloadFlood:
    """Every request in a flood is served or shed -- none vanish."""

    def test_flood_accounting(self, scratch_partitioner):  # noqa: F811
        gate = threading.Event()
        geometric = partitioner("geometric")

        def slow(total, models, **kwargs):
            assert gate.wait(timeout=30.0)
            return geometric(total, models)

        scratch_partitioner("slow-solver", slow)
        outcomes = {"served": 0, "shed": 0}
        lock = threading.Lock()
        with PlanServer(make_models(), max_workers=2,
                        max_pending=2) as server:
            def hammer(total):
                try:
                    future = server.submit(total, partitioner="slow-solver")
                except ServiceOverloadError:
                    with lock:
                        outcomes["shed"] += 1
                    return
                future.result(timeout=30.0)
                with lock:
                    outcomes["served"] += 1

            threads = [
                threading.Thread(target=hammer, args=(1000 + i,))
                for i in range(12)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let the flood pile up against the gate
            gate.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert outcomes["served"] + outcomes["shed"] == 12
            assert outcomes["shed"] >= 1  # the cap actually bit
            assert server.engine.counters.shed == outcomes["shed"]

    def test_single_flight_survives_chaos(self, scratch_partitioner):  # noqa: F811
        """Concurrent identical requests + failing solver: one computation."""
        from repro.errors import SolverError

        gate = threading.Event()
        calls = {"n": 0}

        def failing(total, models, **kwargs):
            calls["n"] += 1
            assert gate.wait(timeout=30.0)
            raise SolverError("chaos")

        scratch_partitioner("failing-solver", failing)
        with PlanServer(make_models(), policy=DegradationPolicy()) as server:
            futures = [
                server.submit(4000, partitioner="failing-solver")
                for _ in range(6)
            ]
            gate.set()
            results = [f.result(timeout=30.0) for f in futures]
            assert calls["n"] == 1
            assert server.engine.counters.coalesced == 5
            assert all(sum(r.sizes) == 4000 for r in results)


class TestSeededFaultStorm:
    """Randomised (but seeded) schedules keep the serving invariants."""

    def test_every_request_gets_full_coverage(self, scratch_partitioner):  # noqa: F811
        spec = SolveFaults(fail_rate=0.4, seed=1234)
        chaotic = chaotic_partitioner(partitioner("geometric"), spec)
        scratch_partitioner("chaotic-geometric", chaotic)
        clock = FakeClock()
        engine = PlanEngine(
            policy=DegradationPolicy(),
            breakers=BreakerBoard(window=4, min_calls=4, cooldown=5.0,
                                  clock=clock),
        )
        models = make_models()
        degraded = 0
        for i in range(40):
            total = 1000 + 13 * i
            result = engine.plan(models, total,
                                 partitioner="chaotic-geometric")
            assert sum(result.sizes) == total  # full coverage, always
            degraded += bool(result.degraded)
            clock.now += 1.0
        assert degraded >= 1  # the storm actually fired
        snap = engine.breakers.to_dict()
        assert snap["short_circuits"] == engine.counters.short_circuits
        # Deterministic schedule: the same seed replays the same storm.
        draws_a = [spec.rng().uniform() for _ in range(5)]
        draws_b = [spec.rng().uniform() for _ in range(5)]
        assert draws_a == draws_b

    def test_breaker_opens_and_recovers_under_storm(self, scratch_partitioner):  # noqa: F811
        spec = SolveFaults(fail_first=6, seed=0)
        chaotic = chaotic_partitioner(partitioner("geometric"), spec)
        scratch_partitioner("heals-later", chaotic)
        clock = FakeClock()
        engine = PlanEngine(
            policy=DegradationPolicy(),
            breakers=BreakerBoard(window=4, min_calls=4, cooldown=10.0,
                                  clock=clock),
        )
        models = make_models()
        for i in range(6):
            engine.plan(models, 1000 + i, partitioner="heals-later")
        # The breaker opened after 4 failures: solver calls stopped early.
        assert chaotic.calls == 4
        assert engine.counters.short_circuits == 2
        clock.now += 10.0  # cooldown over; schedule still in fail_first
        engine.plan(models, 2000, partitioner="heals-later")
        assert chaotic.calls == 5  # the trial ran (and failed: reopened)
        clock.now += 10.0
        result = engine.plan(models, 2001, partitioner="heals-later")
        assert chaotic.calls == 6  # second trial: schedule exhausted...
        clock.now += 10.0
        healed = engine.plan(models, 2002, partitioner="heals-later")
        assert healed.degraded == ""  # ...third trial heals the breaker
        assert engine.breakers.breaker(
            engine.request(models, 1).models_fp
        ).state == "closed"

    def test_slowdown_storm_trips_deadlines(self, scratch_partitioner):  # noqa: F811
        spec = SolveFaults(slow_seconds=0.2, slow_rate=1.0)
        chaotic = chaotic_partitioner(partitioner("geometric"), spec)
        scratch_partitioner("straggler", chaotic)
        from repro.errors import DeadlineExceeded

        with PlanServer(make_models()) as server:
            with pytest.raises(DeadlineExceeded):
                server.request(1000, partitioner="straggler", deadline=0.05)
            assert server.engine.counters.deadline_expired == 1
