"""Fleet chaos: SIGKILL a shard mid-flood, reroute, recover, rejoin.

The crash story the fleet must survive, driven end to end with real
worker processes:

* a shard is SIGKILLed *without telling the router* (the process just
  dies, as crashes do) while a seeded flood
  (:func:`repro.faults.serve.flood_totals`) is in flight -- the router
  must discover the death from connection errors, mark the shard dead,
  and reroute to the survivors, losing **zero** requests;
* every plan acked before the kill stays servable afterwards;
* the restarted shard recovers its plans from its **own** WAL, rejoins
  the ring at its old position, and serves its old keys from cache;
* sibling fill skips the dead peer instead of failing the request.
"""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.faults.serve import ShardKillSchedule, flood_totals
from repro.serve import PlanFleet, ShardClient, affinity_key

pytestmark = [pytest.mark.chaos, pytest.mark.fleet]

WORKERS = 3


@pytest.fixture(scope="module")
def points_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("chaos-points")
    assert cli_main([
        "build", "--platform", "fig4", "--sizes", "32,128,512",
        "--out", str(out),
    ]) == 0
    return out


def homes(fleet, totals):
    """Map each total to the shard its affinity key hashes to."""
    return {
        t: fleet.router.ring.lookup(affinity_key(t, "geometric", {}))
        for t in totals
    }


def crash(fleet, shard_id):
    """Kill the worker the way crashes do: no supervisor bookkeeping.

    Deliberately NOT :meth:`PlanFleet.kill_shard` -- that tells the
    router.  Here the router must notice on its own, from the failed
    relay, and reroute within the same request.
    """
    proc = fleet.shards[shard_id].proc
    proc.kill()
    proc.wait()


class TestKillMidFlood:
    def test_sigkill_reroutes_and_recovers(self, points_dir, tmp_path):
        schedule = ShardKillSchedule(victim="shard1", after_requests=20,
                                     restart_after=12)
        stream = flood_totals(44, pool=12, miss_rate=0.1, seed=7)
        with PlanFleet(
            points_dir, workers=WORKERS, probe=False,
            cache_dir=tmp_path / "caches",
        ) as fleet:
            placed = homes(fleet, stream)
            # The seeded flood must actually exercise the victim, both
            # before the kill (so its WAL has plans to recover) and
            # after (so reroutes happen) -- assert the schedule is sane.
            before = stream[:schedule.after_requests]
            after = stream[schedule.after_requests:]
            assert any(placed[t] == schedule.victim for t in before)
            assert any(placed[t] == schedule.victim for t in after)

            client = ShardClient(fleet.url)
            served = {}
            killed = restarted = False
            try:
                for index, total in enumerate(stream):
                    if index == schedule.after_requests:
                        crash(fleet, schedule.victim)
                        killed = True
                    if index == schedule.after_requests + schedule.restart_after:
                        ready = fleet.restart_shard(schedule.victim)
                        assert ready["recovered"] > 0, (
                            "victim's WAL held no plans to recover"
                        )
                        restarted = True
                    reply = client.plan({"cmd": "plan", "total": total})
                    assert "error" not in reply, (
                        f"request {index} (total={total}) failed: {reply}"
                    )
                    assert sum(reply["sizes"]) == total
                    served.setdefault(total, reply["sizes"])
                    # Any repeat must agree with the first ack.
                    assert reply["sizes"] == served[total]

                assert killed and restarted
                # The router discovered the death itself and rerouted.
                counters = fleet.router.counters
                assert counters["shard_errors"] >= 1
                assert counters["reroutes"] >= 1

                # Every acked plan is still servable, and the rejoined
                # shard answers for its own arc again.
                assert schedule.victim in fleet.router.alive()
                for total in served:
                    reply = client.plan({"cmd": "plan", "total": total})
                    assert "error" not in reply
                    assert reply["sizes"] == served[total]
            finally:
                client.close()

    def test_recovered_shard_serves_its_old_keys_from_cache(
        self, points_dir, tmp_path
    ):
        with PlanFleet(
            points_dir, workers=2, probe=False,
            cache_dir=tmp_path / "caches",
        ) as fleet:
            victim = "shard0"
            # Find totals homed on the victim and solve them there.
            pool = [t for t in flood_totals(64, pool=32, miss_rate=0.0, seed=3)
                    if fleet.router.ring.lookup(
                        affinity_key(t, "geometric", {})) == victim]
            assert pool, "no totals hash to the victim; enlarge the pool"
            client = ShardClient(fleet.url)
            try:
                first = {t: client.plan({"cmd": "plan", "total": t})
                         for t in pool[:3]}
                crash(fleet, victim)
                fleet.router.mark_dead(victim)  # supervisor-noticed crash
                ready = fleet.restart_shard(victim)
                assert ready["recovered"] >= len(first)
                for total, original in first.items():
                    reply = client.plan({"cmd": "plan", "total": total})
                    # Served from the recovered WAL: cached, identical.
                    assert reply["cached"] is True
                    assert reply["sizes"] == original["sizes"]
                    assert reply["times"] == original["times"]
            finally:
                client.close()

    def test_sibling_fill_skips_dead_peers(self, points_dir):
        with PlanFleet(points_dir, workers=3, probe=False) as fleet:
            client = ShardClient(fleet.url)
            try:
                total = 9191
                home = fleet.router.ring.lookup(
                    affinity_key(total, "geometric", {})
                )
                client.plan({"cmd": "plan", "total": total})  # cached on home
                crash(fleet, home)
                fleet.router.mark_dead(home)
                # The reroute target misses locally; its first sibling
                # probe (the dead home) must be skipped, not fatal.
                reply = client.plan({"cmd": "plan", "total": total})
                assert "error" not in reply
                assert sum(reply["sizes"]) == total
            finally:
                client.close()


class TestSchedules:
    def test_flood_is_deterministic_and_mixed(self):
        a = flood_totals(200, pool=16, miss_rate=0.2, seed=11)
        b = flood_totals(200, pool=16, miss_rate=0.2, seed=11)
        assert a == b
        assert a != flood_totals(200, pool=16, miss_rate=0.2, seed=12)
        warm = {100_000 + 1_000 * i for i in range(16)}
        fresh = [t for t in a if t not in warm]
        assert fresh, "no misses in a mixed flood"
        assert len(fresh) < len(a) // 2, "mostly hits by construction"
        assert len(set(fresh)) == len(fresh), "fresh totals never repeat"

    def test_bad_parameters_refused(self):
        from repro.errors import FaultInjectionError

        with pytest.raises(FaultInjectionError):
            flood_totals(0)
        with pytest.raises(FaultInjectionError):
            flood_totals(10, miss_rate=1.5)
        with pytest.raises(FaultInjectionError):
            ShardKillSchedule(after_requests=-1)
        with pytest.raises(FaultInjectionError):
            ShardKillSchedule(restart_after=-2)
