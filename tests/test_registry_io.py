"""Tests for the registries and file persistence."""

from __future__ import annotations

import pytest

from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.partition.dist import Distribution
from repro.core.point import MeasurementPoint
from repro.core.registry import (
    available_models,
    available_partitioners,
    model_factory,
    partitioner,
    register_model,
    register_partitioner,
)
from repro.errors import FuPerModError, PersistenceError
from repro.io.files import (
    load_distribution,
    load_model,
    load_points,
    save_distribution,
    save_points,
)


class TestRegistry:
    def test_builtin_models(self):
        assert set(available_models()) >= {"constant", "piecewise", "akima"}

    def test_builtin_partitioners(self):
        assert set(available_partitioners()) >= {"basic", "geometric", "numerical"}

    def test_factories_produce_right_types(self):
        assert isinstance(model_factory("constant")(), ConstantModel)
        assert isinstance(model_factory("piecewise")(), PiecewiseModel)
        assert isinstance(model_factory("akima")(), AkimaModel)

    def test_unknown_model(self):
        with pytest.raises(FuPerModError):
            model_factory("nope")

    def test_unknown_partitioner(self):
        with pytest.raises(FuPerModError):
            partitioner("nope")

    def test_custom_registration(self):
        register_model("custom-test-model", ConstantModel, overwrite=True)
        assert "custom-test-model" in available_models()
        assert model_factory("custom-test-model") is ConstantModel

    def test_duplicate_registration_rejected(self):
        register_model("dup-model", ConstantModel, overwrite=True)
        with pytest.raises(FuPerModError):
            register_model("dup-model", ConstantModel)

    def test_partitioner_registration(self):
        fn = partitioner("geometric")
        register_partitioner("geo-alias", fn, overwrite=True)
        assert partitioner("geo-alias") is fn


class TestPointsFiles:
    def _points(self):
        return [
            MeasurementPoint(d=64, t=0.0123, reps=5, ci=0.0004),
            MeasurementPoint(d=128, t=0.024, reps=7, ci=0.0007),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "p.points"
        save_points(path, self._points(), metadata={"device": "cpu0"})
        points, meta = load_points(path)
        assert points == self._points()
        assert meta == {"device": "cpu0"}

    def test_no_metadata(self, tmp_path):
        path = tmp_path / "p.points"
        save_points(path, self._points())
        _points, meta = load_points(path)
        assert meta == {}

    def test_metadata_whitespace_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            save_points(tmp_path / "p", self._points(), metadata={"a b": "c"})

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("not a points file\n")
        with pytest.raises(PersistenceError):
            load_points(path)

    def test_bad_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("# fupermod-points v1\n1 2 3\n")
        with pytest.raises(PersistenceError, match=":2"):
            load_points(path)

    def test_bad_value_reports_lineno(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("# fupermod-points v1\n-5 1.0 1 0.0\n")
        with pytest.raises(PersistenceError, match=":2"):
            load_points(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "p"
        path.write_text(
            "# fupermod-points v1\n\n# comment\n10 0.5 1 0.0  # trailing\n"
        )
        points, _ = load_points(path)
        assert len(points) == 1
        assert points[0].d == 10

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_points(tmp_path / "nope")

    def test_load_model(self, tmp_path):
        path = tmp_path / "p.points"
        save_points(path, self._points())
        model = load_model(path, PiecewiseModel)
        assert isinstance(model, PiecewiseModel)
        assert model.count == 2


class TestDistributionFiles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "d.dist"
        dist = Distribution.from_sizes([400, 350, 250], [0.52, 0.51, 0.53])
        save_distribution(path, dist)
        loaded = load_distribution(path)
        assert loaded.sizes == dist.sizes
        assert loaded.times == pytest.approx(dist.times)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("junk\n")
        with pytest.raises(PersistenceError):
            load_distribution(path)

    def test_rank_gap_rejected(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("# fupermod-dist v1 total=10\n0 5 0.1\n2 5 0.1\n")
        with pytest.raises(PersistenceError, match="ranks"):
            load_distribution(path)

    def test_ranks_reordered(self, tmp_path):
        path = tmp_path / "d"
        path.write_text("# fupermod-dist v1 total=10\n1 7 0.1\n0 3 0.1\n")
        loaded = load_distribution(path)
        assert loaded.sizes == [3, 7]

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "d"
        path.write_text("# fupermod-dist v1 total=0\n")
        with pytest.raises(PersistenceError):
            load_distribution(path)

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "d"
        path.write_text("# fupermod-dist v1\n0 5\n")
        with pytest.raises(PersistenceError, match=":2"):
            load_distribution(path)
