"""Tests for the Jacobi solver and the balanced distributed run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.jacobi.distributed import run_balanced_jacobi
from repro.apps.jacobi.solver import (
    generate_system,
    jacobi_iteration,
    jacobi_rows,
    jacobi_solve,
    row_flops,
)
from repro.core.models import PiecewiseModel
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.errors import FuPerModError, PartitionError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


class TestGenerateSystem:
    def test_shapes(self):
        a, b, x = generate_system(10, seed=1)
        assert a.shape == (10, 10)
        assert b.shape == (10,)
        assert x.shape == (10,)

    def test_diagonally_dominant(self):
        a, _b, _x = generate_system(20, seed=2)
        diag = np.abs(np.diagonal(a))
        off = np.sum(np.abs(a), axis=1) - diag
        assert np.all(diag > off)

    def test_manufactured_solution(self):
        a, b, x = generate_system(15, seed=3)
        assert np.allclose(a @ x, b)

    def test_reproducible(self):
        a1, _, _ = generate_system(5, seed=7)
        a2, _, _ = generate_system(5, seed=7)
        assert np.array_equal(a1, a2)

    def test_validation(self):
        with pytest.raises(FuPerModError):
            generate_system(0)
        with pytest.raises(FuPerModError):
            generate_system(5, dominance=0.5)


class TestJacobiMath:
    def test_solve_converges_to_exact(self):
        a, b, x_star = generate_system(30, seed=0)
        x, iterations, err = jacobi_solve(a, b, eps=1e-12)
        assert err <= 1e-12
        assert np.allclose(x, x_star, atol=1e-9)
        assert iterations < 200

    def test_full_iteration_equals_row_slices(self):
        a, b, x_star = generate_system(12, seed=4)
        x = np.zeros(12)
        full = jacobi_iteration(a, b, x)
        pieces = np.concatenate(
            [jacobi_rows(a, b, x, 0, 5), jacobi_rows(a, b, x, 5, 7)]
        )
        assert np.allclose(full, pieces)

    def test_zero_rows_empty(self):
        a, b, _ = generate_system(5, seed=5)
        out = jacobi_rows(a, b, np.zeros(5), 2, 0)
        assert out.size == 0

    def test_row_flops(self):
        assert row_flops(100) == 200.0

    def test_solve_respects_max_iterations(self):
        a, b, _ = generate_system(10, seed=6)
        _x, iterations, _err = jacobi_solve(a, b, eps=0.0, max_iterations=3)
        assert iterations == 3


def _trio_platform(speeds=(1.6e9, 1.1e9, 0.9e9)):
    nodes = [
        Node(f"n{i}", [Device(f"p{i}", ConstantProfile(s), noise=NoNoise())])
        for i, s in enumerate(speeds)
    ]
    return Platform(nodes)


def _balancer(platform, rows, threshold=0.05):
    models = [PiecewiseModel() for _ in range(platform.size)]
    return LoadBalancer(partition_geometric, models, rows, threshold=threshold)


class TestRunBalancedJacobi:
    def test_solves_the_system(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform, _balancer(platform, 60), eps=1e-10, max_iterations=100
        )
        assert result.solution_error < 1e-8

    def test_balances_load(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform, _balancer(platform, 360), eps=1e-10, max_iterations=100
        )
        # Speeds 16:11:9 -> rows 160:110:90.
        assert result.final_sizes == [160, 110, 90]

    def test_makespan_improves_after_balancing(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform, _balancer(platform, 360), eps=1e-10, max_iterations=100
        )
        first = result.records[0].makespan
        later = [r.makespan for r in result.records[3:6]]
        assert later and max(later) < first

    def test_compute_times_balanced_at_the_end(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform, _balancer(platform, 360), eps=1e-10, max_iterations=100
        )
        last = result.records[-1].compute_times
        assert (max(last) - min(last)) / max(last) < 0.1

    def test_record_fields_consistent(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform, _balancer(platform, 90), eps=1e-10, max_iterations=50
        )
        for rec in result.records:
            assert sum(rec.sizes) == 90
            assert len(rec.compute_times) == 3
            assert rec.makespan >= max(rec.compute_times) - 1e-12
            assert rec.error >= 0.0

    def test_first_iteration_even(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform, _balancer(platform, 90), eps=1e-10, max_iterations=50
        )
        assert result.records[0].sizes == [30, 30, 30]

    def test_iteration_makespans_property(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform, _balancer(platform, 90), eps=1e-10, max_iterations=20
        )
        assert result.iteration_makespans == [r.makespan for r in result.records]

    def test_system_larger_than_rows(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform,
            _balancer(platform, 30),
            n=45,
            eps=1e-10,
            max_iterations=100,
        )
        assert result.solution.shape == (45,)
        assert result.solution_error < 1e-8

    def test_system_smaller_than_rows_rejected(self):
        platform = _trio_platform()
        with pytest.raises(PartitionError):
            run_balanced_jacobi(platform, _balancer(platform, 100), n=50)

    def test_balancer_platform_mismatch_rejected(self):
        platform = _trio_platform()
        small = _trio_platform(speeds=(1.0e9,))
        with pytest.raises(PartitionError):
            run_balanced_jacobi(small, _balancer(platform, 30))

    def test_total_time_positive_and_accumulates(self):
        platform = _trio_platform()
        result = run_balanced_jacobi(
            platform, _balancer(platform, 90), eps=1e-12, max_iterations=30
        )
        assert result.total_time > 0.0
        assert result.total_time >= sum(r.makespan for r in result.records) - 1e-9
