"""Overload protection: admission control, deadlines, error taxonomy, client.

The contracts:

* a full admission queue sheds immediately with
  :class:`ServiceOverloadError` (counted) -- it never queues unboundedly;
* coalesced joins of an in-flight computation are admitted regardless --
  they add no work;
* deadline expiry raises at the wait site only: the computation finishes
  and populates the cache for the retry;
* the front end maps the failure taxonomy onto protocol codes
  (400/413/500/503/504) and HTTP surfaces ``Retry-After``;
* the client retries 503/504 with capped, jittered backoff and raises
  typed errors -- and never retries a 400.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.registry import partitioner
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    FuPerModError,
    ServiceOverloadError,
)
from repro.serve import PlanClient, PlanServer
from repro.serve.client import http_transport
from repro.serve.frontend import handle_request, make_http_server

from tests.test_serve_server import make_models, scratch_partitioner  # noqa: F401

pytestmark = pytest.mark.serve


@pytest.fixture
def gated_partitioner(scratch_partitioner):  # noqa: F811
    """A partitioner that blocks until the test opens its gate."""
    gate = threading.Event()
    started = threading.Event()
    geometric = partitioner("geometric")

    def gated(total, models, **kwargs):
        started.set()
        assert gate.wait(timeout=30.0), "test forgot to open the gate"
        return geometric(total, models)

    scratch_partitioner("gated", gated)
    try:
        yield gate, started
    finally:
        gate.set()  # never leave workers stuck


class TestAdmissionControl:
    """Bounded in-flight computations; shed, don't queue."""

    def test_full_queue_sheds_with_typed_error(self, gated_partitioner):
        gate, started = gated_partitioner
        with PlanServer(make_models(), max_pending=1,
                        shed_retry_after=2.5) as server:
            blocked = server.submit(1000, partitioner="gated")
            started.wait(timeout=10.0)
            with pytest.raises(ServiceOverloadError) as exc_info:
                server.submit(2000, partitioner="gated")
            assert exc_info.value.retry_after == 2.5
            assert exc_info.value.pending == 1
            assert server.engine.counters.shed == 1
            gate.set()
            assert blocked.result(timeout=10.0).total == 1000

    def test_coalesced_joins_are_never_shed(self, gated_partitioner):
        gate, started = gated_partitioner
        with PlanServer(make_models(), max_pending=1) as server:
            first = server.submit(1000, partitioner="gated")
            started.wait(timeout=10.0)
            # Identical request: joins the in-flight future, no shed.
            joined = server.submit(1000, partitioner="gated")
            assert joined is first
            assert server.engine.counters.coalesced == 1
            assert server.engine.counters.shed == 0
            gate.set()
            first.result(timeout=10.0)

    def test_capacity_frees_as_computations_finish(self, gated_partitioner):
        gate, started = gated_partitioner
        with PlanServer(make_models(), max_pending=1) as server:
            blocked = server.submit(1000, partitioner="gated")
            started.wait(timeout=10.0)
            gate.set()
            blocked.result(timeout=10.0)
            # The slot is free again: this must be admitted.
            assert server.request(2000, partitioner="gated").total == 2000

    def test_unbounded_by_default(self, gated_partitioner):
        gate, _ = gated_partitioner
        with PlanServer(make_models(), max_workers=2) as server:
            futures = [
                server.submit(1000 + i, partitioner="gated") for i in range(8)
            ]
            gate.set()
            for future in futures:
                future.result(timeout=10.0)
            assert server.engine.counters.shed == 0

    def test_bad_configuration_rejected(self):
        with pytest.raises(ValueError):
            PlanServer(make_models(), max_pending=0)
        with pytest.raises(ValueError):
            PlanServer(make_models(), default_deadline=-1.0)


class TestDeadlines:
    """Expiry at the wait site; the computation still lands in the cache."""

    def test_deadline_expiry_raises_typed(self, gated_partitioner):
        gate, started = gated_partitioner
        with PlanServer(make_models()) as server:
            with pytest.raises(DeadlineExceeded) as exc_info:
                server.request(1000, partitioner="gated", deadline=0.05)
            assert exc_info.value.budget == pytest.approx(0.05)
            assert server.engine.counters.deadline_expired == 1
            gate.set()

    def test_timed_out_solve_still_populates_cache(self, gated_partitioner):
        gate, started = gated_partitioner
        with PlanServer(make_models()) as server:
            with pytest.raises(DeadlineExceeded):
                server.request(1000, partitioner="gated", deadline=0.05)
            gate.set()
            # Let the abandoned computation finish, then retry: cache hit.
            while server.inflight():
                pass
            retry = server.request(1000, partitioner="gated", deadline=5.0)
            assert retry.cached
            assert server.engine.counters.computations == 1

    def test_default_deadline_applies(self, gated_partitioner):
        gate, _ = gated_partitioner
        with PlanServer(make_models(), default_deadline=0.05) as server:
            with pytest.raises(DeadlineExceeded):
                server.request(1000, partitioner="gated")
            gate.set()

    def test_fast_requests_unaffected_by_deadline(self):
        with PlanServer(make_models(), default_deadline=30.0) as server:
            result = server.request(1000)
            assert result.total == 1000
            assert server.engine.counters.deadline_expired == 0


class TestDrain:
    """Graceful shutdown finishes in-flight work, then refuses new work."""

    def test_drain_waits_for_inflight(self, gated_partitioner):
        gate, started = gated_partitioner
        server = PlanServer(make_models())
        try:
            future = server.submit(1000, partitioner="gated")
            started.wait(timeout=10.0)
            gate.set()
            assert server.drain(timeout=10.0)
            assert future.done()
            with pytest.raises(RuntimeError):
                server.submit(2000)
        finally:
            server.close()

    def test_drain_times_out_honestly(self, gated_partitioner):
        gate, started = gated_partitioner
        server = PlanServer(make_models())
        try:
            server.submit(1000, partitioner="gated")
            started.wait(timeout=10.0)
            assert not server.drain(timeout=0.05)
        finally:
            gate.set()
            server.close()


class TestErrorTaxonomy:
    """handle_request maps failures onto protocol codes."""

    def test_validation_errors_are_400(self):
        with PlanServer(make_models()) as server:
            for payload in (
                {},  # no total
                {"total": "many"},
                {"total": -5},
                {"total": 100, "options": "fast"},
                {"total": 100, "deadline": -1},
                {"cmd": "explode"},
                {"total": 100, "partitioner": "no-such-algorithm"},
            ):
                response = handle_request(server, payload)
                assert response["code"] == 400, payload

    def test_shed_is_503_with_retry_after(self, gated_partitioner):
        gate, started = gated_partitioner
        with PlanServer(make_models(), max_pending=1,
                        shed_retry_after=1.5) as server:
            server.submit(1000, partitioner="gated")
            started.wait(timeout=10.0)
            response = handle_request(
                server, {"total": 2000, "partitioner": "gated"}
            )
            assert response["code"] == 503
            assert response["shed"] is True
            assert response["retry_after"] == 1.5
            gate.set()

    def test_deadline_is_504(self, gated_partitioner):
        gate, _ = gated_partitioner
        with PlanServer(make_models()) as server:
            response = handle_request(
                server,
                {"total": 1000, "partitioner": "gated", "deadline": 0.05},
            )
            assert response["code"] == 504
            gate.set()

    def test_solve_fault_is_500(self, scratch_partitioner):  # noqa: F811
        from repro.errors import SolverError

        def exploding(total, models, **kwargs):
            raise SolverError("numerical blow-up")

        scratch_partitioner("exploding", exploding)
        with PlanServer(make_models()) as server:  # no policy: fault escapes
            response = handle_request(
                server, {"total": 1000, "partitioner": "exploding"}
            )
            assert response["code"] == 500
            assert "blow-up" in response["error"]

    def test_id_echoed_on_errors(self):
        with PlanServer(make_models()) as server:
            response = handle_request(server, {"id": 7})
            assert response["id"] == 7 and response["code"] == 400


@pytest.fixture
def http_server():
    """A live HTTP front end bound to an ephemeral port."""
    import threading as _threading

    server = PlanServer(make_models(), max_pending=1, shed_retry_after=2.0)
    httpd = make_http_server(server, port=0, max_body_bytes=512)
    thread = _threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        server.close()


def http_post(url, body: bytes):
    request = urllib.request.Request(
        url + "/plan", data=body, headers={"Content-Type": "application/json"}
    )
    return urllib.request.urlopen(request, timeout=10.0)


class TestHTTPStatuses:
    """The HTTP transport promotes protocol codes to response statuses."""

    def test_oversized_body_is_413(self, http_server):
        _, url = http_server
        big = json.dumps({"total": 100, "options": {"pad": "x" * 4096}})
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            http_post(url, big.encode())
        assert exc_info.value.code == 413

    def test_shed_is_503_with_retry_after_header(self, http_server,
                                                 gated_partitioner):
        server, url = http_server
        gate, started = gated_partitioner
        server.submit(1000, partitioner="gated")
        started.wait(timeout=10.0)
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            http_post(url, json.dumps(
                {"total": 2000, "partitioner": "gated"}
            ).encode())
        assert exc_info.value.code == 503
        assert exc_info.value.headers["Retry-After"] == "2"
        gate.set()

    def test_deadline_is_504(self, http_server, gated_partitioner):
        _, url = http_server
        gate, _ = gated_partitioner
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            http_post(url, json.dumps(
                {"total": 1000, "partitioner": "gated", "deadline": 0.05}
            ).encode())
        assert exc_info.value.code == 504
        gate.set()

    def test_success_and_stats_still_work(self, http_server):
        _, url = http_server
        with http_post(url, json.dumps({"total": 1500}).encode()) as reply:
            plan = json.loads(reply.read())
        assert sum(plan["sizes"]) == 1500
        with urllib.request.urlopen(url + "/stats", timeout=10.0) as reply:
            stats = json.loads(reply.read())["stats"]
        assert stats["serve"]["computations"] == 1


class RecordingSleep:
    def __init__(self):
        self.slept = []

    def __call__(self, seconds):
        self.slept.append(seconds)


class TestPlanClient:
    """Backoff, jitter, Retry-After, typed raising."""

    def scripted(self, *responses):
        """A transport that replays canned responses, then repeats the last."""
        remaining = list(responses)

        def transport(payload):
            return remaining.pop(0) if len(remaining) > 1 else remaining[0]

        return transport

    def test_retries_503_then_succeeds(self):
        ok = {"key": "k", "total": 10, "sizes": [5, 5],
              "times": ["0.1", "0.1"], "algorithm": "geometric"}
        sleep = RecordingSleep()
        client = PlanClient(
            self.scripted({"error": "full", "code": 503}, ok),
            rng=np.random.default_rng(0), sleep=sleep,
        )
        result = client.plan(10)
        assert result.sizes == (5, 5)
        assert client.retries == 1
        assert len(sleep.slept) == 1

    def test_no_retry_on_400(self):
        sleep = RecordingSleep()
        client = PlanClient(
            self.scripted({"error": "bad request", "code": 400}),
            rng=np.random.default_rng(0), sleep=sleep,
        )
        with pytest.raises(FuPerModError):
            client.plan(10)
        assert sleep.slept == []
        assert client.retries == 0

    def test_exhaustion_raises_typed_overload(self):
        client = PlanClient(
            self.scripted({"error": "full", "code": 503, "retry_after": 0.5}),
            max_attempts=3, rng=np.random.default_rng(0),
            sleep=RecordingSleep(),
        )
        with pytest.raises(ServiceOverloadError) as exc_info:
            client.plan(10)
        assert exc_info.value.retry_after == 0.5
        assert client.retries == 2  # 3 attempts -> 2 backoffs

    def test_circuit_open_raises_its_own_type(self):
        client = PlanClient(
            self.scripted({"error": "open", "code": 503,
                           "circuit_open": True}),
            max_attempts=2, rng=np.random.default_rng(0),
            sleep=RecordingSleep(),
        )
        with pytest.raises(CircuitOpenError):
            client.plan(10)

    def test_deadline_raises_its_own_type(self):
        client = PlanClient(
            self.scripted({"error": "too slow", "code": 504}),
            max_attempts=2, rng=np.random.default_rng(0),
            sleep=RecordingSleep(),
        )
        with pytest.raises(DeadlineExceeded):
            client.plan(10)

    def test_backoff_is_capped_jittered_and_monotone_in_expectation(self):
        sleep = RecordingSleep()
        client = PlanClient(
            self.scripted({"error": "full", "code": 503}),
            max_attempts=6, base_delay=0.1, max_delay=0.4,
            rng=np.random.default_rng(7), sleep=sleep,
        )
        with pytest.raises(ServiceOverloadError):
            client.plan(10)
        assert len(sleep.slept) == 5
        ceilings = [0.1, 0.2, 0.4, 0.4, 0.4]
        for slept, ceiling in zip(sleep.slept, ceilings):
            assert 0.0 <= slept <= ceiling

    def test_jitter_spreads_the_fleet(self):
        """Two clients with different seeds must not retry in lockstep."""
        def delays(seed):
            sleep = RecordingSleep()
            client = PlanClient(
                self.scripted({"error": "full", "code": 503}),
                max_attempts=4, rng=np.random.default_rng(seed), sleep=sleep,
            )
            with pytest.raises(ServiceOverloadError):
                client.plan(10)
            return sleep.slept

        assert delays(1) != delays(2)

    def test_retry_after_is_a_floor(self):
        sleep = RecordingSleep()
        client = PlanClient(
            self.scripted({"error": "full", "code": 503, "retry_after": 1.5}),
            max_attempts=2, base_delay=0.01, rng=np.random.default_rng(0),
            sleep=sleep,
        )
        with pytest.raises(ServiceOverloadError):
            client.plan(10)
        assert sleep.slept[0] >= 1.5

    def test_in_process_transport_end_to_end(self):
        with PlanServer(make_models()) as server:
            client = PlanClient(
                lambda payload: handle_request(server, payload),
                rng=np.random.default_rng(0), sleep=RecordingSleep(),
            )
            result = client.plan(1200)
            assert sum(result.sizes) == 1200
            assert client.stats()["serve"]["computations"] == 1

    def test_http_transport_end_to_end(self, http_server):
        _, url = http_server
        client = PlanClient(
            http_transport(url), rng=np.random.default_rng(0),
            sleep=RecordingSleep(),
        )
        result = client.plan(900)
        assert sum(result.sizes) == 900
        assert client.stats()["ranks"] == 3

    def test_http_transport_recovers_retry_after_header(self, http_server,
                                                        gated_partitioner):
        server, url = http_server
        gate, started = gated_partitioner
        server.submit(1000, partitioner="gated")
        started.wait(timeout=10.0)
        transport = http_transport(url)
        response = transport({"total": 2000, "partitioner": "gated"})
        assert response["code"] == 503
        assert response["retry_after"] == 2.0
        gate.set()
