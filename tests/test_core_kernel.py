"""Tests for computation kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernel import CallableKernel, KernelContext, SimulatedKernel
from repro.errors import BenchmarkError
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


def _device(flops: float = 1.0e9) -> Device:
    return Device("d", ConstantProfile(flops), noise=NoNoise())


class TestSimulatedKernel:
    def test_linear_complexity(self):
        k = SimulatedKernel(_device(), unit_flops=100.0)
        assert k.complexity(5) == 500.0

    def test_callable_complexity(self):
        k = SimulatedKernel(_device(), unit_flops=lambda d: d * d)
        assert k.complexity(4) == 16.0

    def test_execute_time_matches_device(self):
        k = SimulatedKernel(_device(2.0e9), unit_flops=1.0e9)
        ctx = k.initialize(4)
        assert k.execute(ctx) == pytest.approx(2.0)

    def test_contention_factor_applied(self):
        k = SimulatedKernel(_device(1.0e9), unit_flops=1.0e9)
        ctx = k.initialize(1)
        base = k.execute(ctx)
        k.contention_factor = 0.5
        assert k.execute(ctx) == pytest.approx(2.0 * base)

    def test_default_name_from_device(self):
        assert "d" in SimulatedKernel(_device(), unit_flops=1.0).name

    def test_negative_size_rejected(self):
        k = SimulatedKernel(_device(), unit_flops=1.0)
        with pytest.raises(BenchmarkError):
            k.initialize(-1)

    def test_rng_reproducible(self):
        dev = Device("d", ConstantProfile(1.0e9))  # default 2% noise
        k1 = SimulatedKernel(dev, 1.0e9, rng=np.random.default_rng(3))
        k2 = SimulatedKernel(dev, 1.0e9, rng=np.random.default_rng(3))
        c1, c2 = k1.initialize(10), k2.initialize(10)
        assert k1.execute(c1) == k2.execute(c2)


class TestCallableKernel:
    def test_runs_and_times(self):
        calls = []
        k = CallableKernel(
            complexity_fn=lambda d: 2.0 * d,
            run_fn=lambda payload: calls.append(payload),
            setup_fn=lambda d: {"d": d},
            name="probe",
        )
        ctx = k.initialize(7)
        elapsed = k.execute(ctx)
        assert elapsed >= 0.0
        assert calls == [{"d": 7}]
        assert k.complexity(7) == 14.0

    def test_teardown_called(self):
        torn = []
        k = CallableKernel(
            complexity_fn=lambda d: d,
            run_fn=lambda p: None,
            setup_fn=lambda d: "payload",
            teardown_fn=lambda p: torn.append(p),
        )
        ctx = k.initialize(1)
        k.finalize(ctx)
        assert torn == ["payload"]
        assert ctx.payload is None

    def test_without_setup(self):
        k = CallableKernel(complexity_fn=lambda d: d, run_fn=lambda p: None)
        ctx = k.initialize(3)
        assert ctx.payload is None
        assert k.execute(ctx) >= 0.0


class TestKernelContext:
    def test_fields(self):
        ctx = KernelContext(d=5, payload=[1, 2])
        assert ctx.d == 5
        assert ctx.payload == [1, 2]
