"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.io.files import load_distribution, load_points


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"


class TestListCommand:
    def test_prints_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "geometric" in out
        assert "akima" in out
        assert "fig4" in out


class TestBuildAndPartition:
    def test_build_writes_point_files(self, tmp_path, capsys):
        out = tmp_path / "models"
        code = main(
            [
                "build",
                "--platform", "fig4",
                "--sizes", "32,128,512",
                "--out", str(out),
            ]
        )
        assert code == 0
        files = sorted(out.glob("rank*.points"))
        assert len(files) == 3
        points, meta = load_points(files[0])
        assert len(points) == 3
        assert "device" in meta
        assert "kernel-seconds" in capsys.readouterr().out

    def test_partition_from_points(self, tmp_path, capsys):
        out = tmp_path / "models"
        main(["build", "--platform", "fig4", "--sizes", "32,128,512",
              "--out", str(out)])
        dist_file = tmp_path / "dist.txt"
        code = main(
            [
                "partition",
                "--points", str(out),
                "--total", "360",
                "--algorithm", "geometric",
                "--out", str(dist_file),
            ]
        )
        assert code == 0
        dist = load_distribution(dist_file)
        assert dist.total == 360
        # fig4 speeds are 16:11:9.
        assert dist.sizes[0] > dist.sizes[1] > dist.sizes[2]

    def test_partition_no_points_errors(self, tmp_path, capsys):
        code = main(["partition", "--points", str(tmp_path), "--total", "10"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_platform_errors(self, tmp_path, capsys):
        code = main(["build", "--platform", "nope", "--out", str(tmp_path)])
        assert code == 1
        assert "unknown platform" in capsys.readouterr().err

    def test_bad_sizes_errors(self, tmp_path, capsys):
        code = main(
            ["build", "--platform", "fig4", "--sizes", "a,b",
             "--out", str(tmp_path)]
        )
        assert code == 1


class TestDemos:
    def test_demo_jacobi_runs(self, capsys):
        code = main(["demo-jacobi", "--rows", "120", "--iterations", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "final distribution" in out
        assert "solution error" in out

    def test_demo_matmul_runs(self, capsys):
        code = main(["demo-matmul", "--nb", "16", "--platform", "fig4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "even partitioning" in out
