"""Tests for the markdown reports and the CLI report command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import PiecewiseModel
from repro.core.partition.dist import Distribution
from repro.core.partition.geometric import partition_geometric
from repro.errors import FuPerModError
from repro.platform.presets import fig4_trio, heterogeneous_cluster
from repro.report import distribution_report, models_report, platform_report


@pytest.fixture(scope="module")
def built():
    platform = fig4_trio(noisy=False)
    bench = PlatformBenchmark(platform, unit_flops=1.0e6)
    models, _ = build_full_models(bench, PiecewiseModel, [64, 256, 1024])
    return platform, models


class TestPlatformReport:
    def test_lists_all_devices(self):
        platform = heterogeneous_cluster(noisy=False)
        out = platform_report(platform)
        for device in platform.devices:
            assert device.name in out
        assert f"{platform.size} processes" in out

    def test_memory_limit_shown(self):
        from repro.platform.cluster import Node, Platform
        from repro.platform.device import Device
        from repro.platform.profiles import ConstantProfile

        dev = Device("capped", ConstantProfile(1.0e9), memory_limit_units=50000)
        out = platform_report(Platform([Node("n", [dev])]))
        assert "50000" in out
        # Devices without a hard cap show a dash.
        assert "-" in platform_report(heterogeneous_cluster(noisy=False))

    def test_markdown_table_shape(self):
        out = platform_report(fig4_trio(noisy=False))
        lines = out.splitlines()
        table_lines = [line for line in lines if line.startswith("|")]
        # Header + separator + 3 devices.
        assert len(table_lines) == 5


class TestModelsReport:
    def test_speed_cells_present(self, built):
        platform, models = built
        out = models_report(platform, models, [64, 1024])
        assert "64 u" in out and "1024 u" in out
        assert "units/s" in out

    def test_gflops_mode(self, built):
        platform, models = built
        out = models_report(
            platform, models, [64], complexity=lambda x: 1.0e6 * x
        )
        assert "GFLOPS" in out

    def test_validation(self, built):
        platform, models = built
        with pytest.raises(FuPerModError):
            models_report(platform, models[:-1], [64])
        with pytest.raises(FuPerModError):
            models_report(platform, models, [])


class TestDistributionReport:
    def test_shares_and_makespan(self, built):
        platform, models = built
        dist = partition_geometric(360, models)
        out = distribution_report(platform, dist)
        assert "44.4%" in out
        assert "predicted makespan" in out
        assert "imbalance" in out

    def test_size_checked(self, built):
        platform, _models = built
        with pytest.raises(FuPerModError):
            distribution_report(platform, Distribution.from_sizes([1, 2]))


class TestCliReport:
    def test_runs_with_partitioning(self, capsys):
        code = main(["report", "--platform", "fig4", "--sizes", "64,256",
                     "--total", "360"])
        assert code == 0
        out = capsys.readouterr().out
        assert "### Platform" in out
        assert "### Modelled speeds" in out
        assert "geometric partitioning of 360 units" in out

    def test_runs_without_total(self, capsys):
        code = main(["report", "--platform", "fig4", "--sizes", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "partitioning" not in out
