"""Tests for synthetic speed profiles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlatformError
from repro.platform.profiles import (
    CacheHierarchyProfile,
    ConstantProfile,
    GpuProfile,
    ScaledProfile,
    TableProfile,
    WigglyProfile,
)

_SIZES = st.floats(min_value=1.0, max_value=1e7)


class TestConstantProfile:
    def test_constant(self):
        p = ConstantProfile(2.0e9)
        assert p.flops_at(1) == 2.0e9
        assert p.flops_at(1e6) == 2.0e9

    def test_callable(self):
        assert ConstantProfile(5.0)(10) == 5.0

    def test_rejects_non_positive(self):
        with pytest.raises(PlatformError):
            ConstantProfile(0.0)

    @given(_SIZES)
    def test_positive_everywhere(self, d):
        assert ConstantProfile(1e9).flops_at(d) > 0


class TestScaledProfile:
    def test_scales(self):
        p = ScaledProfile(ConstantProfile(10.0), 0.5)
        assert p.flops_at(100) == pytest.approx(5.0)

    def test_rejects_bad_factor(self):
        with pytest.raises(PlatformError):
            ScaledProfile(ConstantProfile(1.0), 0.0)


class TestTableProfile:
    def test_through_points(self):
        p = TableProfile([(10.0, 100.0), (20.0, 200.0)])
        assert p.flops_at(10) == pytest.approx(100.0)
        assert p.flops_at(15) == pytest.approx(150.0)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(PlatformError):
            TableProfile([(10.0, 0.0)])

    def test_clamped_at_min_rate(self):
        p = TableProfile([(1.0, 100.0), (2.0, 10.0)])
        assert p.flops_at(1e6) >= 1.0


class TestCacheHierarchyProfile:
    def make(self):
        return CacheHierarchyProfile(
            levels=[(1000.0, 4.0e9), (10000.0, 2.0e9)],
            paged_flops=0.5e9,
            transition_width=0.05,
        )

    def test_fast_when_fitting_first_level(self):
        assert self.make().flops_at(100) == pytest.approx(4.0e9, rel=0.05)

    def test_mid_level_rate(self):
        assert self.make().flops_at(4000) == pytest.approx(2.0e9, rel=0.1)

    def test_paged_beyond_last_level(self):
        assert self.make().flops_at(1e6) == pytest.approx(0.5e9, rel=0.05)

    def test_monotone_non_increasing_overall(self):
        p = self.make()
        sizes = [10.0 * 1.3**k for k in range(40)]
        rates = [p.flops_at(d) for d in sizes]
        for a, b in zip(rates, rates[1:]):
            assert b <= a * 1.001

    def test_rejects_unordered_capacities(self):
        with pytest.raises(PlatformError):
            CacheHierarchyProfile(
                levels=[(100.0, 1.0), (50.0, 2.0)], paged_flops=1.0
            )

    def test_rejects_empty_levels(self):
        with pytest.raises(PlatformError):
            CacheHierarchyProfile(levels=[], paged_flops=1.0)

    def test_rejects_non_positive_rates(self):
        with pytest.raises(PlatformError):
            CacheHierarchyProfile(levels=[(10.0, -1.0)], paged_flops=1.0)

    @given(_SIZES)
    def test_positive_everywhere(self, d):
        assert self.make().flops_at(d) > 0


class TestGpuProfile:
    def make(self, **kw):
        defaults = dict(
            peak_flops=1.0e11,
            ramp_units=1000.0,
            memory_limit_units=50000.0,
            out_of_core_factor=0.5,
        )
        defaults.update(kw)
        return GpuProfile(**defaults)

    def test_slow_at_small_sizes(self):
        p = self.make()
        assert p.flops_at(10) < 0.02 * p.peak_flops

    def test_saturates_at_peak(self):
        p = self.make(memory_limit_units=None, out_of_core_factor=None)
        assert p.flops_at(1e7) == pytest.approx(1.0e11, rel=0.01)

    def test_half_speed_at_ramp_size(self):
        p = self.make()
        assert p.flops_at(1000) == pytest.approx(0.5e11, rel=0.01)

    def test_out_of_core_slowdown(self):
        p = self.make()
        inside = p.flops_at(49000)
        outside = p.flops_at(51000)
        assert outside < 0.6 * inside

    def test_monotone_before_memory_limit(self):
        p = self.make()
        rates = [p.flops_at(d) for d in [10, 100, 1000, 10000, 49999]]
        for a, b in zip(rates, rates[1:]):
            assert b > a

    def test_host_flops_floor(self):
        p = self.make(host_flops=1.0e9)
        assert p.flops_at(1) >= 1.0e9

    def test_rejects_bad_out_of_core(self):
        with pytest.raises(PlatformError):
            self.make(out_of_core_factor=1.5)

    def test_rejects_bad_ramp(self):
        with pytest.raises(PlatformError):
            GpuProfile(peak_flops=1.0, ramp_units=0.0)


class TestWigglyProfile:
    def make(self):
        return WigglyProfile(
            peak_flops=5.0e9,
            rise_units=100.0,
            decay_per_unit=1e-5,
            humps=[(1000.0, 0.2, 100.0), (2000.0, -0.3, 150.0)],
        )

    def test_positive_everywhere(self):
        p = self.make()
        for d in [1, 10, 500, 1000, 2000, 5000, 1e6]:
            assert p.flops_at(d) > 0

    def test_hump_raises_speed_locally(self):
        p = self.make()
        base = WigglyProfile(peak_flops=5.0e9, rise_units=100.0, decay_per_unit=1e-5)
        assert p.flops_at(1000) > base.flops_at(1000)

    def test_dip_lowers_speed_locally(self):
        p = self.make()
        base = WigglyProfile(peak_flops=5.0e9, rise_units=100.0, decay_per_unit=1e-5)
        assert p.flops_at(2000) < base.flops_at(2000)

    def test_not_monotone(self):
        # The whole point of this profile: simple shape assumptions fail.
        p = self.make()
        rates = [p.flops_at(d) for d in range(200, 3000, 50)]
        rises = any(b > a for a, b in zip(rates, rates[1:]))
        falls = any(b < a for a, b in zip(rates, rates[1:]))
        assert rises and falls

    def test_rejects_bad_humps(self):
        with pytest.raises(PlatformError):
            WigglyProfile(peak_flops=1.0, rise_units=1.0, humps=[(0.0, 0.1, 1.0)])

    @given(_SIZES)
    @settings(max_examples=50)
    def test_positive_property(self, d):
        assert self.make().flops_at(d) > 0
