"""End-to-end resilience: faulty sweep -> surviving models -> partition.

The acceptance property of the fault-injection subsystem: a seeded
FaultPlan with one crashing rank, one straggler and a transient failure
rate must not abort the benchmark->model->partition pipeline.  The
crashed rank is quarantined, the survivors produce models, the
partitioner allocates the full problem over them, and -- because every
fault draw is seeded per (rank, operation) -- the whole run replays
bit-identically.
"""

import pytest

from repro.core.benchmark import ResilientPlatformBenchmark
from repro.core.builder import build_resilient_models
from repro.core.models import PiecewiseModel
from repro.core.partition.dist import Distribution
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.resilient import (
    partition_survivors,
    redistribute_to_survivors,
)
from repro.core.point import MeasurementPoint
from repro.core.precision import Precision
from repro.errors import PartitionError, QuarantineError
from repro.faults import FaultPlan, RankFaults
from repro.faults.report import ResilienceReport
from repro.platform.presets import heterogeneous_cluster

pytestmark = pytest.mark.faults

SIZES = [64, 256, 1024, 4096]
CRASHED, STRAGGLER, FLAKY = 0, 2, 3


def _plan(seed):
    return FaultPlan(
        {
            CRASHED: RankFaults(crash_at=2),
            STRAGGLER: RankFaults(straggler_factor=3.0),
            FLAKY: RankFaults(transient_rate=0.1),
        },
        seed=seed,
    )


def _pipeline(seed):
    bench = ResilientPlatformBenchmark(
        heterogeneous_cluster(),
        unit_flops=2.0 * 32**3,
        precision=Precision(reps_min=1, reps_max=2),
        seed=7,
        plan=_plan(seed),
    )
    return bench, build_resilient_models(bench, PiecewiseModel, SIZES)


class TestAcceptance:
    @pytest.mark.parametrize("seed", [3, 42, 1234])
    def test_sweep_completes_and_quarantines_only_the_crashed_rank(self, seed):
        bench, result = _pipeline(seed)
        size = bench.size

        # exactly the crashed rank is quarantined, with the right reason
        assert [q.rank for q in result.report.quarantined] == [CRASHED]
        assert result.report.quarantined[0].reason == "crash"
        assert result.survivors == [r for r in range(size) if r != CRASHED]

        # every survivor's model covers the full sweep
        for r in result.survivors:
            assert result.models[r].count == len(SIZES)
            assert result.models[r].is_ready

        # the straggler survived -- it is slow, not broken -- and its
        # model honestly shows ~3x the healthy time at every size
        straggler_t = result.models[STRAGGLER].time(SIZES[-1])
        healthy = bench.kernel(STRAGGLER).device.ideal_time(
            bench.complexity(SIZES[-1]), SIZES[-1]
        )
        assert straggler_t == pytest.approx(3.0 * healthy, rel=0.25)

        # measurement cost was actually accounted
        assert result.total_cost > 0.0

    @pytest.mark.parametrize("seed", [3, 42, 1234])
    def test_partition_over_survivors_sums_to_total(self, seed):
        _, result = _pipeline(seed)
        total = 10_000
        dist = partition_survivors(total, result.models, result.survivors)
        assert sum(dist.sizes) == total
        assert dist.sizes[CRASHED] == 0
        assert all(isinstance(d, int) for d in dist.sizes)
        assert all(dist.sizes[r] > 0 for r in result.survivors)

    @pytest.mark.parametrize("seed", [3, 42, 1234])
    def test_same_seed_replays_bit_identically(self, seed):
        _, first = _pipeline(seed)
        _, second = _pipeline(seed)
        assert first.report.to_dict() == second.report.to_dict()
        for m1, m2 in zip(first.models, second.models):
            assert [(p.d, p.t) for p in m1.points] == [
                (p.d, p.t) for p in m2.points
            ]

    def test_different_seeds_differ(self):
        # not a hard guarantee per-seed, but these three draw differently
        reports = [_pipeline(s)[1].report.to_dict() for s in (3, 42, 1234)]
        assert reports[0] != reports[1] or reports[1] != reports[2]

    def test_transients_are_retried_not_fatal(self):
        # a high transient rate forces visible retries within the budget
        plan = FaultPlan({1: RankFaults(transient_rate=0.4)}, seed=5)
        bench = ResilientPlatformBenchmark(
            heterogeneous_cluster(),
            unit_flops=2.0 * 32**3,
            precision=Precision(reps_min=1, reps_max=2),
            seed=7,
            plan=plan,
        )
        result = build_resilient_models(bench, PiecewiseModel, SIZES)
        assert result.report.retries > 0
        assert result.report.wasted_cost > 0.0
        assert 1 in result.survivors  # retried through, never quarantined

    def test_measuring_a_quarantined_rank_raises(self):
        bench, _ = _pipeline(42)
        with pytest.raises(QuarantineError) as excinfo:
            bench.measure(CRASHED, 64)
        assert excinfo.value.rank == CRASHED


class TestPartitionSurvivors:
    def _models(self, speeds):
        models = []
        for s in speeds:
            m = PiecewiseModel()
            for d in (10, 100):
                m.update(MeasurementPoint(d=d, t=d / s))
            models.append(m)
        return models

    def test_dead_ranks_get_zero_live_ranks_split_by_speed(self):
        models = self._models([1.0, 3.0, 1.0])
        dist = partition_survivors(400, models, [1, 2])
        assert dist.sizes[0] == 0
        assert sum(dist.sizes) == 400
        assert dist.sizes[1] == pytest.approx(300, abs=2)

    def test_all_ranks_surviving_matches_plain_partition(self):
        models = self._models([1.0, 2.0])
        full = partition_geometric(300, models)
        dist = partition_survivors(300, models, [0, 1])
        assert dist.sizes == full.sizes

    @pytest.mark.parametrize(
        "survivors, match",
        [
            ([], "no surviving ranks"),
            ([0, 0], "duplicate survivor"),
            ([0, 5], "out of range"),
        ],
    )
    def test_bad_survivor_lists_rejected(self, survivors, match):
        models = self._models([1.0, 1.0])
        with pytest.raises(PartitionError, match=match):
            partition_survivors(100, models, survivors)

    def test_redistribute_evacuates_the_dead_rank(self):
        models = self._models([1.0, 1.0, 1.0])
        current = Distribution.from_sizes([40, 40, 40])
        new_dist, plan = redistribute_to_survivors(current, models, [0, 2])
        assert new_dist.sizes[1] == 0
        assert sum(new_dist.sizes) == 120
        moved_from_dead = sum(t.units for t in plan if t.source == 1)
        assert moved_from_dead == 40
        assert not any(t.dest == 1 for t in plan)


class TestLoadBalancerQuarantine:
    def _balancer(self, total=120, size=3):
        models = [PiecewiseModel() for _ in range(size)]
        return LoadBalancer(partition_geometric, models, total)

    def test_quarantine_moves_share_to_survivors(self):
        lb = self._balancer(total=120, size=3)
        dist = lb.quarantine(1)
        assert dist.sizes[1] == 0
        assert sum(dist.sizes) == 120
        assert lb.excluded == [1]
        assert lb.survivors == [0, 2]

    def test_quarantined_rank_stays_empty_across_rebalances(self):
        lb = self._balancer(total=120, size=3)
        lb.quarantine(1)
        for _ in range(4):
            times = [1.0 if d else 0.0 for d in lb.dist.sizes]
            dist = lb.iterate(times)
            assert dist.sizes[1] == 0
            assert sum(dist.sizes) == 120

    def test_cannot_quarantine_everyone(self):
        lb = self._balancer(size=2)
        lb.quarantine(0)
        with pytest.raises(PartitionError, match="last surviving rank"):
            lb.quarantine(1)

    def test_out_of_range_rank_rejected(self):
        lb = self._balancer(size=3)
        with pytest.raises(PartitionError, match="out of range"):
            lb.quarantine(3)


class TestAppsCompleteWithSurvivors:
    def _balancer(self, size, total):
        models = [PiecewiseModel() for _ in range(size)]
        return LoadBalancer(partition_geometric, models, total)

    def test_jacobi_survives_a_crash(self):
        from repro.apps.jacobi.distributed import run_balanced_jacobi

        platform = heterogeneous_cluster()
        plan = FaultPlan({1: RankFaults(crash_at=2)}, seed=9)
        result = run_balanced_jacobi(
            platform,
            self._balancer(platform.size, 240),
            max_iterations=6,
            fault_plan=plan,
        )
        assert result.failed_ranks == [1]
        assert result.final_sizes[1] == 0
        assert sum(result.final_sizes) == 240
        assert len(result.records) > 2  # iterations continued past the crash

    def test_stencil_survives_a_crash(self):
        from repro.apps.stencil.distributed import run_balanced_stencil

        platform = heterogeneous_cluster()
        plan = FaultPlan({2: RankFaults(crash_at=2)}, seed=9)
        report = ResilienceReport(survivors=list(range(platform.size)))
        result = run_balanced_stencil(
            platform,
            self._balancer(platform.size, 120),
            nx=32,
            max_iterations=6,
            fault_plan=plan,
            report=report,
        )
        assert result.failed_ranks == [2]
        assert result.final_sizes[2] == 0
        assert sum(result.final_sizes) == 120
        assert report.is_quarantined(2)
        assert any(e.kind == "repartition" for e in report.events)

    def test_matmul_survives_a_crash(self):
        from repro.apps.matmul.partition2d import partition_columns
        from repro.apps.matmul.simulation import simulate_matmul

        platform = heterogeneous_cluster()
        partition = partition_columns([1.0] * platform.size, nb=8)
        plan = FaultPlan({2: RankFaults(crash_at=1)}, seed=9)
        result = simulate_matmul(
            platform, partition, b=16, fault_plan=plan
        )
        assert result.failed_ranks == [2]
        assert result.areas[2] == 0
        assert sum(result.areas) == 64  # the full block grid is re-tiled

    def test_faultless_apps_report_no_failures(self):
        from repro.apps.jacobi.distributed import run_balanced_jacobi

        platform = heterogeneous_cluster()
        result = run_balanced_jacobi(
            platform, self._balancer(platform.size, 120), max_iterations=3
        )
        assert result.failed_ranks == []
