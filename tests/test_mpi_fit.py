"""Tests for link measurement and Hockney fitting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError
from repro.mpi.fit import fit_hockney, fit_link, measure_pingpong
from repro.mpi.network import LinkModel, Network


def _network(latency=5e-5, bandwidth=1.25e8) -> Network:
    link = LinkModel(latency, bandwidth)
    return Network(inter_node=link, intra_node=link)


class TestMeasurePingpong:
    def test_noiseless_matches_link(self):
        net = _network()
        samples = measure_pingpong(net, 0, 1, [1000, 2000], reps=3, noise_sigma=0.0)
        assert samples[0] == (1000, pytest.approx(net.time(0, 1, 1000)))
        assert samples[1] == (2000, pytest.approx(net.time(0, 1, 2000)))

    def test_noisy_close_to_truth(self):
        net = _network()
        samples = measure_pingpong(
            net, 0, 1, [10000], reps=50, noise_sigma=0.05, seed=1
        )
        assert samples[0][1] == pytest.approx(net.time(0, 1, 10000), rel=0.05)

    def test_validation(self):
        net = _network()
        with pytest.raises(CommunicationError):
            measure_pingpong(net, 0, 1, [])
        with pytest.raises(CommunicationError):
            measure_pingpong(net, 0, 1, [0])
        with pytest.raises(CommunicationError):
            measure_pingpong(net, 0, 1, [10], reps=0)

    def test_deterministic_with_seed(self):
        net = _network()
        a = measure_pingpong(net, 0, 1, [100, 200], seed=3)
        b = measure_pingpong(net, 0, 1, [100, 200], seed=3)
        assert a == b


class TestFitHockney:
    def test_exact_recovery_from_clean_samples(self):
        link = LinkModel(1e-4, 1e8)
        samples = [(n, link.time(n)) for n in [100, 1000, 10000, 100000]]
        fit = fit_hockney(samples)
        assert fit.link.latency == pytest.approx(1e-4, rel=1e-6)
        assert fit.link.bandwidth == pytest.approx(1e8, rel=1e-6)
        assert fit.residual < 1e-9

    def test_recovery_under_noise(self):
        fit = fit_link(
            _network(), 0, 1,
            sizes=[64, 512, 4096, 32768, 262144, 2097152],
            reps=10, noise_sigma=0.02, seed=7,
        )
        assert fit.link.bandwidth == pytest.approx(1.25e8, rel=0.1)
        assert fit.link.latency == pytest.approx(5e-5, rel=0.5)
        assert fit.residual < 0.1

    def test_needs_two_distinct_sizes(self):
        with pytest.raises(CommunicationError):
            fit_hockney([(100, 1.0), (100, 1.1)])

    def test_decreasing_times_rejected(self):
        with pytest.raises(CommunicationError):
            fit_hockney([(100, 1.0), (1000, 0.5), (10000, 0.1)])

    def test_negative_intercept_clamped(self):
        # Pure bandwidth samples fit alpha ~ 0; never negative.
        samples = [(n, n / 1e8) for n in [100, 1000, 10000]]
        fit = fit_hockney(samples)
        assert fit.link.latency >= 0.0

    @given(
        st.floats(min_value=1e-7, max_value=1e-3),
        st.floats(min_value=1e6, max_value=1e10),
    )
    @settings(max_examples=40)
    def test_round_trip_property(self, alpha, beta):
        link = LinkModel(alpha, beta)
        sizes = [64, 1024, 65536, 1048576]
        fit = fit_hockney([(n, link.time(n)) for n in sizes])
        for n in [200, 5000, 500000]:
            assert fit.link.time(n) == pytest.approx(link.time(n), rel=1e-4)
