"""Tests for the benchmark runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import Benchmark, PlatformBenchmark, build_full_models
from repro.core.kernel import SimulatedKernel
from repro.core.models import PiecewiseModel
from repro.core.precision import Precision
from repro.errors import BenchmarkError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import GaussianNoise, NoNoise
from repro.platform.profiles import ConstantProfile


def _noiseless_kernel(flops=1.0e9, unit=1.0e9):
    dev = Device("d", ConstantProfile(flops), noise=NoNoise())
    return SimulatedKernel(dev, unit_flops=unit)


def _noisy_kernel(sigma=0.05, seed=0):
    dev = Device("d", ConstantProfile(1.0e9), noise=GaussianNoise(sigma))
    return SimulatedKernel(dev, unit_flops=1.0e6, rng=np.random.default_rng(seed))


class TestBenchmark:
    def test_noiseless_stops_at_reps_min(self):
        b = Benchmark(_noiseless_kernel(), Precision(reps_min=3, reps_max=50))
        point = b.run(10)
        assert point.reps == 3
        assert point.d == 10
        assert point.t == pytest.approx(10.0)
        assert point.ci == pytest.approx(0.0, abs=1e-12)

    def test_noisy_repeats_until_precise(self):
        precision = Precision(reps_min=3, reps_max=100, relative_error=0.01)
        b = Benchmark(_noisy_kernel(sigma=0.1), precision)
        point = b.run(1000)
        assert 3 <= point.reps <= 100
        # Either precision met or cap hit.
        if point.reps < 100:
            assert point.ci / point.t <= 0.01 + 1e-9

    def test_reps_max_respected(self):
        precision = Precision(reps_min=2, reps_max=5, relative_error=1e-9)
        b = Benchmark(_noisy_kernel(sigma=0.2), precision)
        assert b.run(1000).reps == 5

    def test_time_limit_respected(self):
        # Each execution takes ~1 virtual second; noise keeps the precision
        # target unreachable, so the 2.5s budget stops the loop.
        kernel = _noisy_kernel(sigma=0.2, seed=1)
        precision = Precision(reps_min=2, reps_max=100, relative_error=1e-12,
                              time_limit=2.5)
        point = Benchmark(kernel, precision).run(1000)
        assert point.reps <= 4  # 2 minimum + at most ~2 to cross the budget

    def test_non_positive_size_rejected(self):
        with pytest.raises(BenchmarkError):
            Benchmark(_noiseless_kernel()).run(0)

    def test_mean_accurate_under_noise(self):
        b = Benchmark(_noisy_kernel(sigma=0.05, seed=42),
                      Precision(reps_min=30, reps_max=30))
        point = b.run(1000)
        # d=1000 units * 1e6 flops / 1e9 flops/s = 1.0 s nominal.
        assert point.t == pytest.approx(1.0, rel=0.05)


def _two_rank_platform(contention=None) -> Platform:
    d0 = Device("a", ConstantProfile(2.0e9), noise=NoNoise())
    d1 = Device("b", ConstantProfile(1.0e9), noise=NoNoise())
    return Platform([Node("n", [d0, d1], contention=contention)])


class TestPlatformBenchmark:
    def test_measure_single_rank(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        point = pb.measure(0, 4)
        assert point.t == pytest.approx(2.0)

    def test_measure_group_sizes(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        points = pb.measure_group([4, 2])
        assert points[0].t == pytest.approx(2.0)
        assert points[1].t == pytest.approx(2.0)

    def test_measure_group_contention_applied(self):
        pb = PlatformBenchmark(
            _two_rank_platform(contention=[1.0, 0.5]), unit_flops=1.0e9
        )
        # Together: both slowed 2x.
        both = pb.measure_group([4, 2])
        assert both[0].t == pytest.approx(4.0)
        # Alone: full speed.
        alone = pb.measure(0, 4)
        assert alone.t == pytest.approx(2.0)

    def test_idle_ranks_skipped(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        points = pb.measure_group([None, 3])
        assert points[0] is None
        assert points[1] is not None

    def test_zero_size_idle(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        points = pb.measure_group([0, 3])
        assert points[0] is None

    def test_all_idle(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        assert pb.measure_group([None, None]) == [None, None]

    def test_size_list_mismatch(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        with pytest.raises(BenchmarkError):
            pb.measure_group([1])

    def test_complexity(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=3.0)
        assert pb.complexity(4) == 12.0

    def test_seed_reproducibility(self):
        platform = Platform(
            [Node("n", [Device("a", ConstantProfile(1.0e9))])]
        )
        p1 = PlatformBenchmark(platform, 1.0e6, seed=5).measure(0, 100)
        p2 = PlatformBenchmark(platform, 1.0e6, seed=5).measure(0, 100)
        assert p1.t == p2.t


class TestBuildFullModels:
    def test_builds_one_model_per_rank(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        models, cost = build_full_models(pb, PiecewiseModel, sizes=[1, 2, 4])
        assert len(models) == 2
        assert all(m.count == 3 for m in models)
        assert cost > 0.0

    def test_cost_is_sum_of_point_costs(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        models, cost = build_full_models(pb, PiecewiseModel, sizes=[2])
        expected = sum(p.benchmark_cost for m in models for p in m.points)
        assert cost == pytest.approx(expected)

    def test_models_predict_device_speeds(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        models, _ = build_full_models(pb, PiecewiseModel, sizes=[2, 8, 32])
        # Device a is 2x device b.
        assert models[0].speed(8) == pytest.approx(2.0 * models[1].speed(8), rel=1e-6)

    def test_empty_sizes_rejected(self):
        pb = PlatformBenchmark(_two_rank_platform(), unit_flops=1.0e9)
        with pytest.raises(BenchmarkError):
            build_full_models(pb, PiecewiseModel, sizes=[])

    def test_unsynchronised_mode(self):
        pb = PlatformBenchmark(
            _two_rank_platform(contention=[1.0, 0.5]), unit_flops=1.0e9
        )
        sync_models, _ = build_full_models(pb, PiecewiseModel, sizes=[4])
        solo_models, _ = build_full_models(
            pb, PiecewiseModel, sizes=[4], synchronised=False
        )
        # Synchronised measurement sees contention; solo does not.
        assert sync_models[0].time(4) == pytest.approx(2.0 * solo_models[0].time(4))
