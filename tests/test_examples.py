"""Smoke tests: every shipped example must run to completion.

The examples are the user-facing contract of the library; these tests run
each one's ``main()`` in-process (stdout captured by pytest) so an API
change that breaks an example breaks the build.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
_EXAMPLES = sorted(p.stem for p in _EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", _EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_discovered():
    # Guard against the directory moving: the paper promised >= 3 examples.
    assert len(_EXAMPLES) >= 3
    assert "quickstart" in _EXAMPLES


@pytest.mark.parametrize("name", _EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    assert hasattr(module, "main"), f"example {name} must define main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
