"""End-to-end acceptance: the degradation ladder through the CLI.

The issue's acceptance scenario: pathological inputs -- unfittable
timings, a shape-violating speed function, a non-converging bisection --
fed through ``fupermod partition --degrade`` must complete with a valid
full partition and a degradation report naming each fallback and its
trigger; the same inputs under ``--strict`` must fail with a typed
error (exit code 1).
"""

from __future__ import annotations

import re

import pytest

from repro.cli import main
from repro.core.point import MeasurementPoint
from repro.io.files import save_points


@pytest.fixture
def pathological_points(tmp_path):
    """Three rank files: shape-violating, single-point, and healthy."""
    # Rank 0: non-monotone timings -- Akima's exact interpolant must dip,
    # violating the FPM shape restriction (model-ladder trigger).
    save_points(
        tmp_path / "rank000.points",
        [MeasurementPoint(10, 1.0), MeasurementPoint(100, 0.2),
         MeasurementPoint(1000, 5.0)],
        metadata={"device": "zigzag"},
    )
    # Rank 1: a single measured point -- unfittable for spline models.
    save_points(
        tmp_path / "rank001.points",
        [MeasurementPoint(50, 0.5)],
        metadata={"device": "sparse"},
    )
    # Rank 2: healthy monotone timings.
    save_points(
        tmp_path / "rank002.points",
        [MeasurementPoint(10, 0.1), MeasurementPoint(100, 1.0),
         MeasurementPoint(1000, 10.0)],
        metadata={"device": "healthy"},
    )
    return tmp_path


def _partition_sizes(out: str):
    return [int(m.group(1)) for m in re.finditer(r"d=(\d+)", out)]


class TestPartitionDegrade:
    def test_degrade_completes_with_valid_partition_and_report(
        self, pathological_points, capsys
    ):
        # --max-iter 1 starves the geometric bisection on top of the
        # pathological models, forcing partitioner fallbacks too.
        code = main([
            "partition",
            "--points", str(pathological_points),
            "--total", "300",
            "--model", "akima",
            "--max-iter", "1",
            "--degrade",
        ])
        out = capsys.readouterr().out
        assert code == 0
        sizes = _partition_sizes(out)
        assert len(sizes) == 3
        assert sum(sizes) == 300
        assert all(d >= 0 for d in sizes)
        # The degradation report names each fallback with its trigger.
        assert "fallback(s) taken" in out
        assert "model-fit" in out
        assert "akima" in out
        assert "convergence:" in out

    def test_strict_raises_typed_error(self, pathological_points, capsys):
        code = main([
            "partition",
            "--points", str(pathological_points),
            "--total", "300",
            "--model", "akima",
            "--max-iter", "1",
            "--strict",
        ])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err

    def test_degrade_without_pathology_reports_clean(self, tmp_path, capsys):
        for rank in range(2):
            save_points(
                tmp_path / f"rank{rank:03d}.points",
                [MeasurementPoint(d, d / (100.0 * (rank + 1)))
                 for d in (10, 100, 1000)],
                metadata={"device": f"d{rank}"},
            )
        code = main([
            "partition",
            "--points", str(tmp_path),
            "--total", "400",
            "--degrade",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no degradation" in out
        assert sum(_partition_sizes(out)) == 400

    def test_max_iter_without_degrade_is_forwarded(self, tmp_path, capsys):
        for rank in range(2):
            save_points(
                tmp_path / f"rank{rank:03d}.points",
                [MeasurementPoint(d, d / (100.0 * (rank + 1)))
                 for d in (10, 100, 1000)],
                metadata={"device": f"d{rank}"},
            )
        code = main([
            "partition",
            "--points", str(tmp_path),
            "--total", "400",
            "--max-iter", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # The cap was honoured: the cert on the result says so.
        assert "NOT converged after 1/1" in out


class TestBuildDegrade:
    def test_build_degrade_writes_models_and_report(self, tmp_path, capsys):
        out_dir = tmp_path / "models"
        code = main([
            "build",
            "--platform", "fig4",
            "--sizes", "32,128,512",
            "--model", "akima",
            "--out", str(out_dir),
            "--degrade",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert sorted(p.name for p in out_dir.glob("rank*.points")) == [
            "rank000.points", "rank001.points", "rank002.points",
        ]
        assert "degradation:" in out
        assert "resilience:" in out

    def test_build_deadline_quarantines_hangs(self, tmp_path, capsys):
        # The hybrid preset has wildly different device speeds; a tight
        # virtual-time budget hangs the slow ones.
        out_dir = tmp_path / "models"
        code = main([
            "build",
            "--platform", "heterogeneous",
            "--sizes", "64,256",
            "--out", str(out_dir),
            "--degrade",
            "--deadline", "1e-6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "hang" in out

    def test_build_then_partition_degrade_round_trip(self, tmp_path, capsys):
        out_dir = tmp_path / "models"
        assert main([
            "build", "--platform", "fig4", "--sizes", "32,128,512",
            "--out", str(out_dir), "--degrade",
        ]) == 0
        capsys.readouterr()
        code = main([
            "partition", "--points", str(out_dir), "--total", "600",
            "--degrade",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert sum(_partition_sizes(out)) == 600
