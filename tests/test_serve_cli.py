"""CLI-level serving tests: `fupermod serve`, corrupt point files, and
registry thread safety.

The stdio transport is driven through :func:`repro.serve.frontend.
serve_stdio` with StringIO pipes -- exactly the objects the CLI wires up
-- and the HTTP transport through a real socket on an ephemeral port.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.core import registry
from repro.errors import FuPerModError

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def points_dir(tmp_path_factory):
    """A small build output shared by the serve CLI tests."""
    out = tmp_path_factory.mktemp("serve-points")
    code = main(
        ["build", "--platform", "fig4", "--sizes", "32,128,512",
         "--out", str(out)]
    )
    assert code == 0
    return out


def run_serve_stdio(points_dir, lines, extra_args=()):
    """Run `fupermod serve` against scripted stdin; return decoded replies."""
    import sys

    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    old_in, old_out = sys.stdin, sys.stdout
    sys.stdin, sys.stdout = stdin, stdout
    try:
        code = main(["serve", "--points", str(points_dir), *extra_args])
    finally:
        sys.stdin, sys.stdout = old_in, old_out
    assert code == 0
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


class TestServeStdio:
    """The JSON-lines protocol end to end through the CLI."""

    def test_plan_cache_and_stats(self, points_dir):
        replies = run_serve_stdio(points_dir, [
            json.dumps({"total": 1200, "id": "first"}),
            json.dumps({"total": 1200, "id": "second"}),
            json.dumps({"cmd": "stats"}),
        ])
        first, second, stats = replies
        assert first["id"] == "first" and not first["cached"]
        assert second["cached"] and second["sizes"] == first["sizes"]
        assert sum(first["sizes"]) == 1200
        assert stats["stats"]["serve"]["computations"] == 1
        assert stats["stats"]["cache"]["hits"] == 1

    def test_bad_requests_keep_session_alive(self, points_dir):
        replies = run_serve_stdio(points_dir, [
            "{broken json",
            json.dumps({"total": "many"}),
            json.dumps({"cmd": "unknown-verb"}),
            json.dumps({"partitioner": "geometric"}),  # no total
            json.dumps({"total": 600, "id": "ok"}),
        ])
        assert all("error" in r for r in replies[:4])
        assert replies[4]["id"] == "ok" and sum(replies[4]["sizes"]) == 600

    def test_shutdown_command(self, points_dir):
        replies = run_serve_stdio(points_dir, [
            json.dumps({"cmd": "shutdown"}),
            json.dumps({"total": 100}),  # never reached
        ])
        assert replies == [{"ok": True, "shutdown": True}]

    def test_cache_file_persists_across_sessions(self, points_dir, tmp_path):
        cache_file = tmp_path / "plans.json"
        run_serve_stdio(
            points_dir,
            [json.dumps({"total": 900})],
            extra_args=["--cache-file", str(cache_file)],
        )
        assert cache_file.exists()
        replies = run_serve_stdio(
            points_dir,
            [json.dumps({"total": 900})],
            extra_args=["--cache-file", str(cache_file)],
        )
        # Served from the persisted cache: no computation this session.
        assert replies[0]["cached"]


class TestServeHTTP:
    """The stdlib HTTP transport on an ephemeral port."""

    def test_post_plan_and_get_stats(self, points_dir):
        from repro.core.registry import model_factory
        from repro.io.files import load_points
        from repro.serve import PlanServer
        from repro.serve.frontend import make_http_server

        models = []
        for path in sorted(points_dir.glob("rank*.points")):
            model = model_factory("piecewise")()
            model.update_many(load_points(path)[0])
            models.append(model)
        with PlanServer(models) as plan_server:
            httpd = make_http_server(plan_server, port=0)
            host, port = httpd.server_address[:2]
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            try:
                body = json.dumps({"total": 1500}).encode()
                req = urllib.request.Request(
                    f"http://{host}:{port}/plan", data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(req, timeout=30) as resp:
                    plan = json.loads(resp.read())
                assert sum(plan["sizes"]) == 1500
                with urllib.request.urlopen(
                    f"http://{host}:{port}/stats", timeout=30
                ) as resp:
                    stats = json.loads(resp.read())
                assert stats["stats"]["serve"]["computations"] == 1
                bad = urllib.request.Request(
                    f"http://{host}:{port}/plan", data=b"{oops",
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as exc_info:
                    urllib.request.urlopen(bad, timeout=30)
                assert exc_info.value.code == 400
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=30)


class TestPartitionCorruptFiles:
    """`fupermod partition` fails actionably on bad point files."""

    def test_binary_corrupt_file(self, points_dir, tmp_path, capsys):
        bad = tmp_path / "bad-binary"
        bad.mkdir()
        for path in points_dir.glob("rank*.points"):
            (bad / path.name).write_bytes(path.read_bytes())
        (bad / "rank001.points").write_bytes(b"\x80\x81\xff binary junk")
        code = main(["partition", "--points", str(bad), "--total", "1000"])
        assert code == 1
        err = capsys.readouterr().err
        assert "rank 1" in err and "re-run 'fupermod build'" in err

    def test_truncated_file(self, points_dir, tmp_path, capsys):
        bad = tmp_path / "bad-trunc"
        bad.mkdir()
        for path in points_dir.glob("rank*.points"):
            (bad / path.name).write_bytes(path.read_bytes())
        whole = (bad / "rank000.points").read_text()
        # Cut mid-line: the last data row loses its fields.
        (bad / "rank000.points").write_text(whole[: whole.rfind(" ") - 2])
        code = main(["partition", "--points", str(bad), "--total", "1000"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "rank 0" in err

    def test_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        code = main(["partition", "--points", str(empty), "--total", "10"])
        assert code == 1
        assert "no rank*.points" in capsys.readouterr().err

    def test_serve_shares_the_actionable_error(self, points_dir, tmp_path,
                                               capsys):
        bad = tmp_path / "bad-serve"
        bad.mkdir()
        (bad / "rank000.points").write_bytes(b"\xff\xfe not text")
        code = main(["serve", "--points", str(bad)])
        assert code == 1
        assert "re-run 'fupermod build'" in capsys.readouterr().err


class TestRegistryThreadSafety:
    """Concurrent registration: exactly one winner, no corruption."""

    def test_concurrent_duplicate_registration(self):
        name = "concurrent-scratch-partitioner"
        barrier = threading.Barrier(8)
        outcomes = []
        lock = threading.Lock()

        def contender(tid):
            def fn(total, models, **kw):  # pragma: no cover - never called
                raise AssertionError

            barrier.wait()
            try:
                registry.register_partitioner(name, fn)
                with lock:
                    outcomes.append(("won", tid))
            except FuPerModError:
                with lock:
                    outcomes.append(("lost", tid))

        threads = [
            threading.Thread(target=contender, args=(t,)) for t in range(8)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wins = [o for o in outcomes if o[0] == "won"]
            assert len(wins) == 1, f"racing registrations: {outcomes}"
            assert name in registry.available_partitioners()
        finally:
            with registry._REGISTRY_LOCK:
                registry._PARTITIONER_REGISTRY.pop(name, None)

    def test_concurrent_register_and_lookup(self):
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    registry.partitioner("geometric")
                    registry.available_partitioners()
                    registry.available_models()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer(tid):
            try:
                for i in range(100):
                    registry.register_partitioner(
                        f"scratch-{tid}-{i}",
                        lambda total, models, **kw: None,
                        overwrite=True,
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writers = [threading.Thread(target=writer, args=(t,)) for t in range(3)]
        try:
            for t in readers + writers:
                t.start()
            for t in writers:
                t.join()
            stop.set()
            for t in readers:
                t.join()
            assert not errors
        finally:
            stop.set()
            with registry._REGISTRY_LOCK:
                for key in list(registry._PARTITIONER_REGISTRY):
                    if key.startswith("scratch-"):
                        del registry._PARTITIONER_REGISTRY[key]
