"""Property-based tests over the full partitioning pipeline.

Hypothesis drives randomly shaped platforms through the complete measured
workflow (benchmark -> models -> partition) and checks the invariants that
must hold regardless of the platform: exact totals, non-negative parts,
and balance within the granularity bound.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import AkimaModel, PchipModel, PiecewiseModel
from repro.core.partition.dynamic import DynamicPartitioner
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.presets import parametric_cluster
from repro.platform.profiles import ConstantProfile


@st.composite
def _speeds(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return draw(
        st.lists(
            st.floats(min_value=2.0e8, max_value=2.0e10),
            min_size=n, max_size=n,
        )
    )


def _platform(speeds):
    return Platform(
        [
            Node(f"n{i}", [Device(f"d{i}", ConstantProfile(s), noise=NoNoise())])
            for i, s in enumerate(speeds)
        ]
    )


class TestMeasuredPipelineProperties:
    @given(_speeds(), st.integers(min_value=0, max_value=200_000))
    @settings(max_examples=25, deadline=None)
    def test_geometric_full_pipeline(self, speeds, total):
        platform = _platform(speeds)
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        models, _ = build_full_models(bench, PiecewiseModel, [64, 1024, 16384])
        dist = partition_geometric(total, models)
        assert dist.total == total
        assert all(p.d >= 0 for p in dist.parts)
        if total > 1000 * len(speeds):
            # Ground-truth balance within granularity (+noise-free devices).
            times = [
                platform.device(r).ideal_time(1.0e6 * d, d) if d else 0.0
                for r, d in enumerate(dist.sizes)
            ]
            active = [t for t in times if t > 0]
            granularity = 1.0e6 / min(speeds)
            assert max(active) - min(active) <= 0.03 * max(active) + granularity

    @given(_speeds(), st.integers(min_value=1000, max_value=100_000))
    @settings(max_examples=15, deadline=None)
    def test_numerical_matches_geometric(self, speeds, total):
        platform = _platform(speeds)
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        ak, _ = build_full_models(bench, AkimaModel, [64, 1024, 16384])
        pw, _ = build_full_models(bench, PiecewiseModel, [64, 1024, 16384])
        dn = partition_numerical(total, ak)
        dg = partition_geometric(total, pw)
        assert dn.total == total
        for a, b in zip(dn.sizes, dg.sizes):
            assert abs(a - b) <= max(0.05 * total, 2)

    @given(_speeds())
    @settings(max_examples=15, deadline=None)
    def test_dynamic_partitioner_invariants(self, speeds):
        total = 10_000
        platform = _platform(speeds)
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        models = [PchipModel() for _ in range(platform.size)]
        dyn = DynamicPartitioner(
            partition_geometric, models, total, bench.measure_group, eps=0.05
        )
        result = dyn.run()
        assert result.final.total == total
        assert result.converged
        assert all(m.is_ready for m in models)
        # Every intermediate distribution also summed exactly.
        for dist in result.distributions:
            assert dist.total == total


class TestParametricCluster:
    def test_sizes(self):
        platform = parametric_cluster(hybrid_nodes=2, cpu_nodes=3,
                                      cores_per_hybrid=2, noisy=False)
        # 2 hybrids x (2 cores + 1 gpu) + 3 cpus = 9 devices.
        assert platform.size == 9
        assert len(platform.nodes) == 5

    def test_reproducible(self):
        a = parametric_cluster(seed=4, noisy=False)
        b = parametric_cluster(seed=4, noisy=False)
        assert [d.profile.flops_at(100) for d in a.devices] == [
            d.profile.flops_at(100) for d in b.devices
        ]

    def test_spread_respected(self):
        platform = parametric_cluster(
            hybrid_nodes=0, cpu_nodes=20, base_flops=1.0e9, spread=3.0,
            noisy=False, seed=1,
        )
        rates = [d.profile.flops_at(100) for d in platform.devices]
        assert min(rates) >= 1.0e9 / 3.0 * 0.9
        assert max(rates) <= 1.0e9 * 3.0 * 1.1

    def test_validation(self):
        from repro.errors import PlatformError

        with pytest.raises(PlatformError):
            parametric_cluster(hybrid_nodes=0, cpu_nodes=0)
        with pytest.raises(PlatformError):
            parametric_cluster(spread=0.5)

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_any_shape_is_valid_platform(self, hybrids, cpus):
        if hybrids + cpus == 0:
            return
        platform = parametric_cluster(
            hybrid_nodes=hybrids, cpu_nodes=cpus, noisy=False
        )
        names = [d.name for d in platform.devices]
        assert len(set(names)) == len(names)
        assert platform.size >= hybrids + cpus