"""Tests for the out-of-core GEMM kernel."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.apps.matmul.kernel import GemmBlockKernel
from repro.apps.matmul.out_of_core import OutOfCoreGemmKernel
from repro.core.benchmark import Benchmark
from repro.core.precision import Precision
from repro.errors import BenchmarkError


class TestOutOfCoreGemmKernel:
    def test_complexity_matches_in_core(self):
        ooc = OutOfCoreGemmKernel(b=8)
        ic = GemmBlockKernel(b=8)
        for d in [1, 4, 12, 30]:
            assert ooc.complexity(d) == ic.complexity(d)

    def test_update_matches_in_core_math(self, tmp_path):
        kernel = OutOfCoreGemmKernel(b=4, panel_blocks=2, workdir=str(tmp_path))
        ctx = kernel.initialize(9)  # 3x3 blocks
        ws = ctx.payload
        a = np.asarray(ws.a_sub).copy()
        b_mat = np.asarray(ws.b_sub).copy()
        kernel.execute(ctx)
        expected = a[:, :4] @ b_mat[:4, :]
        assert np.allclose(np.asarray(ws.c_sub), expected)
        kernel.finalize(ctx)

    def test_accumulates_across_executions(self, tmp_path):
        kernel = OutOfCoreGemmKernel(b=4, panel_blocks=1, workdir=str(tmp_path))
        ctx = kernel.initialize(4)
        ws = ctx.payload
        one = np.asarray(ws.a_sub[:, :4]) @ np.asarray(ws.b_sub[:4, :])
        kernel.execute(ctx)
        kernel.execute(ctx)
        assert np.allclose(np.asarray(ws.c_sub), 2.0 * one)
        kernel.finalize(ctx)

    def test_backing_files_on_disk_and_cleaned(self, tmp_path):
        kernel = OutOfCoreGemmKernel(b=4, workdir=str(tmp_path))
        ctx = kernel.initialize(4)
        backing = list(Path(tmp_path).rglob("*.bin"))
        assert len(backing) == 3  # a, b, c
        kernel.finalize(ctx)
        assert not list(Path(tmp_path).rglob("*.bin"))
        assert ctx.payload is None

    def test_benchmark_integration(self, tmp_path):
        kernel = OutOfCoreGemmKernel(b=8, panel_blocks=2, workdir=str(tmp_path))
        point = Benchmark(kernel, Precision(reps_min=2, reps_max=3)).run(9)
        assert point.t > 0.0
        assert point.d == 9

    def test_panel_smaller_than_matrix(self, tmp_path):
        # Panel streaming must cover a matrix whose rows are not an exact
        # multiple of the panel size.
        kernel = OutOfCoreGemmKernel(b=4, panel_blocks=2, workdir=str(tmp_path))
        ctx = kernel.initialize(12)  # 3x4 blocks -> 12 rows, panel = 8 rows
        ws = ctx.payload
        a = np.asarray(ws.a_sub).copy()
        b_mat = np.asarray(ws.b_sub).copy()
        kernel.execute(ctx)
        assert np.allclose(np.asarray(ws.c_sub), a[:, :4] @ b_mat[:4, :])
        kernel.finalize(ctx)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            OutOfCoreGemmKernel(b=0)
        with pytest.raises(BenchmarkError):
            OutOfCoreGemmKernel(b=4, panel_blocks=0)
