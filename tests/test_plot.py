"""Tests for the ASCII plotting helper."""

from __future__ import annotations

import pytest

from repro.errors import FuPerModError
from repro.plot import ascii_plot


class TestAsciiPlot:
    def test_basic_structure(self):
        out = ascii_plot(
            {"linear": [(0, 0), (5, 5), (10, 10)]},
            width=40, height=10, title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "*=linear" in lines[1]
        # height canvas rows + legend + title + axis + x labels.
        assert len(lines) == 10 + 4

    def test_markers_assigned_in_order(self):
        out = ascii_plot(
            {"a": [(0, 0)], "b": [(1, 1)], "c": [(2, 2)]},
            width=20, height=5,
        )
        assert "*=a" in out and "+=b" in out and "o=c" in out

    def test_extreme_points_land_on_edges(self):
        out = ascii_plot({"s": [(0, 0), (10, 10)]}, width=30, height=8)
        rows = [line for line in out.splitlines() if "|" in line]
        # Max y -> first canvas row; min y -> last canvas row.
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_axis_labels_present(self):
        out = ascii_plot(
            {"s": [(2.0, 1.0), (8.0, 3.0)]},
            width=30, height=6, x_label="size", y_label="GFLOPS",
        )
        assert "size" in out
        assert "GFLOPS" in out
        assert "2" in out and "8" in out  # x range
        assert "1" in out and "3" in out  # y range

    def test_flat_series_ok(self):
        out = ascii_plot({"flat": [(0, 5.0), (10, 5.0)]}, width=20, height=5)
        assert "*" in out

    def test_single_point_ok(self):
        out = ascii_plot({"dot": [(3.0, 7.0)]}, width=20, height=5)
        assert "*" in out

    def test_validation(self):
        with pytest.raises(FuPerModError):
            ascii_plot({}, width=30, height=6)
        with pytest.raises(FuPerModError):
            ascii_plot({"s": []}, width=30, height=6)
        with pytest.raises(FuPerModError):
            ascii_plot({"s": [(0, 0)]}, width=5, height=6)
        with pytest.raises(FuPerModError):
            ascii_plot(
                {str(i): [(0, 0)] for i in range(20)}, width=30, height=6
            )
