"""Integration tests: degraded model building and hang quarantine.

The full graceful-degradation pipeline: a resilient sweep collects
points (hung ranks are quarantined by the watchdog, distinguished from
crashed ones), then the fallback ladder fits the best model each rank's
data supports, and the apps keep running when mid-flight repartitioning
fails.
"""

from __future__ import annotations

import pytest

from repro.core.benchmark import ResilientBenchmark, ResilientPlatformBenchmark
from repro.core.builder import build_degraded_models
from repro.core.partition.dynamic import LoadBalancer
from repro.degrade import DegradationPolicy
from repro.errors import DeadlineExceeded, ModelError
from repro.faults.report import ResilienceReport
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


def _platform(speeds, names=None):
    names = names or [f"d{i}" for i in range(len(speeds))]
    return Platform([
        Node(f"n{i}", [Device(name, ConstantProfile(s), noise=NoNoise())])
        for i, (s, name) in enumerate(zip(speeds, names))
    ])


class TestHangQuarantine:
    def test_straggler_rank_quarantined_as_hang(self):
        # The slow device overruns the virtual-time deadline; the fast one
        # does not.  "hang" must be distinguished from "crash".
        platform = _platform([1.0e9, 1.0e5], names=["fast", "slow"])
        bench = ResilientPlatformBenchmark(
            platform, unit_flops=1.0e6, deadline_budget=0.5
        )
        policy = DegradationPolicy(resilience=bench.report)
        result = build_degraded_models(bench, [10, 50, 100], policy)
        assert result.survivors == [0]
        assert result.families[0] is not None
        assert result.families[1] is None
        reasons = {q.rank: q.reason for q in result.resilience.quarantined}
        assert reasons == {1: "hang"}
        kinds = [e.kind for e in result.resilience.events]
        assert "hang" in kinds

    def test_no_deadline_means_no_hang(self):
        platform = _platform([1.0e9, 1.0e5])
        bench = ResilientPlatformBenchmark(platform, unit_flops=1.0e6)
        policy = DegradationPolicy(resilience=bench.report)
        result = build_degraded_models(bench, [10, 50], policy)
        assert result.survivors == [0, 1]
        assert not result.resilience.quarantined

    def test_resilient_benchmark_records_hang_and_reraises(self):
        platform = _platform([1.0e5], names=["slow"])
        report = ResilienceReport(survivors=[0])
        bench = ResilientPlatformBenchmark(
            platform, unit_flops=1.0e6, report=report, deadline_budget=0.01
        )
        runner = bench.runner(0) if hasattr(bench, "runner") else None
        if runner is None:
            # Fall back to a directly constructed per-rank runner.
            runner = ResilientBenchmark(
                bench.kernel(0), rank=0, report=report, deadline_budget=0.01
            )
        with pytest.raises(DeadlineExceeded):
            runner.run(1000)
        assert any(e.kind == "hang" for e in report.events)


class TestBuildDegradedModels:
    def test_happy_path_no_degradation(self):
        platform = _platform([2.0e9, 1.0e9])
        bench = ResilientPlatformBenchmark(platform, unit_flops=1.0e6)
        policy = DegradationPolicy(resilience=bench.report)
        result = build_degraded_models(bench, [64, 256, 1024], policy)
        assert result.families == ["akima", "akima"]
        assert not result.degradation.degraded
        assert result.total_cost > 0.0

    def test_primary_model_respected(self):
        platform = _platform([1.0e9])
        bench = ResilientPlatformBenchmark(platform, unit_flops=1.0e6)
        policy = DegradationPolicy(resilience=bench.report)
        result = build_degraded_models(
            bench, [64, 256], policy, primary="piecewise"
        )
        assert result.families == ["piecewise"]

    def test_strict_policy_propagates_fit_errors(self):
        platform = _platform([1.0e9])
        bench = ResilientPlatformBenchmark(platform, unit_flops=1.0e6)
        # A one-rung ladder that cannot fit a single size forces the error.
        policy = DegradationPolicy(
            model_ladder=["akima"], strict=True, resilience=bench.report
        )
        result = build_degraded_models(bench, [64, 256], policy)
        assert result.families == ["akima"]  # akima fits fine here

    def test_surviving_models_partition_end_to_end(self):
        platform = _platform([2.0e9, 1.0e9, 1.0e5])
        bench = ResilientPlatformBenchmark(
            platform, unit_flops=1.0e6, deadline_budget=0.5
        )
        policy = DegradationPolicy(resilience=bench.report)
        result = build_degraded_models(bench, [64, 256, 1024], policy)
        survivors = result.surviving_models()
        assert len(survivors) == 2
        dist = policy.partition(1000, survivors)
        assert sum(dist.sizes) == 1000


class TestAppsUnderPolicy:
    def test_jacobi_records_degradation(self):
        from repro.apps.jacobi.distributed import run_balanced_jacobi
        from repro.core.models import PiecewiseModel
        from repro.core.partition.geometric import partition_geometric

        platform = _platform([2.0e9, 1.0e9])
        policy = DegradationPolicy()
        models = [PiecewiseModel() for _ in range(platform.size)]
        balancer = LoadBalancer(
            partition_geometric, models, total=120, threshold=0.05
        )
        result = run_balanced_jacobi(
            platform, balancer, max_iterations=4, policy=policy
        )
        assert result.degradation is policy.report
        assert sum(result.final_sizes) == 120

    def test_jacobi_without_policy_has_no_report(self):
        from repro.apps.jacobi.distributed import run_balanced_jacobi
        from repro.core.models import PiecewiseModel
        from repro.core.partition.geometric import partition_geometric

        platform = _platform([2.0e9, 1.0e9])
        models = [PiecewiseModel() for _ in range(platform.size)]
        balancer = LoadBalancer(
            partition_geometric, models, total=120, threshold=0.05
        )
        result = run_balanced_jacobi(platform, balancer, max_iterations=2)
        assert result.degradation is None

    def test_stencil_records_degradation(self):
        from repro.apps.stencil.distributed import run_balanced_stencil
        from repro.core.models import PiecewiseModel
        from repro.core.partition.geometric import partition_geometric

        platform = _platform([2.0e9, 1.0e9])
        policy = DegradationPolicy()
        models = [PiecewiseModel() for _ in range(platform.size)]
        balancer = LoadBalancer(
            partition_geometric, models, total=60, threshold=0.05
        )
        result = run_balanced_stencil(
            platform, balancer, nx=16, max_iterations=4, policy=policy
        )
        assert result.degradation is policy.report
        assert sum(result.final_sizes) == 60

    def test_matmul_survives_failing_partitioner(self):
        from repro.apps.matmul.adaptive import run_adaptive_matmul

        platform = _platform([2.0e9, 1.0e9])
        # An impossible iteration cap makes the geometric rung fail
        # mid-startup; the ladder must carry the one-shot run anyway.
        policy = DegradationPolicy(max_iter=1)
        report = run_adaptive_matmul(platform, nb=8, policy=policy)
        assert report.degradation is policy.report
        assert sum(report.partitioning.final.sizes) == 64

    def test_matmul_without_policy_has_no_report(self):
        from repro.apps.matmul.adaptive import run_adaptive_matmul

        platform = _platform([2.0e9, 1.0e9])
        report = run_adaptive_matmul(platform, nb=8)
        assert report.degradation is None
