"""Tests for the self-adaptive matrix multiplication."""

from __future__ import annotations

import pytest

from repro.apps.matmul.adaptive import run_adaptive_matmul
from repro.core.precision import Precision
from repro.errors import PartitionError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile
from repro.platform.presets import heterogeneous_cluster


def _platform(speeds):
    return Platform(
        [
            Node(f"n{i}", [Device(f"d{i}", ConstantProfile(s), noise=NoNoise())])
            for i, s in enumerate(speeds)
        ]
    )


class TestRunAdaptiveMatmul:
    def test_report_structure(self):
        report = run_adaptive_matmul(_platform([4.0e9, 1.0e9]), nb=16, b=16)
        assert report.layout.nb == 16
        assert report.run.total_time > 0.0
        assert report.startup_cost > 0.0
        assert report.partitioning.converged

    def test_beats_even_on_heterogeneous_platform(self):
        report = run_adaptive_matmul(_platform([4.0e9, 1.0e9]), nb=24, b=16)
        assert report.speedup_over_even > 1.2
        assert report.run.compute_imbalance < report.baseline_run.compute_imbalance

    def test_shares_track_speeds(self):
        report = run_adaptive_matmul(_platform([3.0e9, 1.0e9]), nb=32, b=16)
        areas = report.layout.areas()
        assert areas[0] / max(areas[1], 1) == pytest.approx(3.0, rel=0.25)

    def test_startup_cheap_relative_to_run(self):
        # On the big preset platform, startup benchmarking must cost less
        # than a handful of application runs.
        platform = heterogeneous_cluster(noisy=False)
        report = run_adaptive_matmul(platform, nb=48, b=32)
        assert report.startup_cost < 10 * report.run.total_time

    def test_custom_precision_respected(self):
        report = run_adaptive_matmul(
            _platform([2.0e9, 1.0e9]),
            nb=16,
            b=16,
            precision=Precision(reps_min=2, reps_max=2),
        )
        for model in report.partitioning.points_per_rank:
            assert model >= 1

    def test_invalid_nb(self):
        with pytest.raises(PartitionError):
            run_adaptive_matmul(_platform([1.0e9]), nb=0)

    def test_homogeneous_platform_near_even(self):
        report = run_adaptive_matmul(_platform([1.0e9, 1.0e9]), nb=16, b=16)
        areas = report.layout.areas()
        assert abs(areas[0] - areas[1]) <= 0.15 * sum(areas)
