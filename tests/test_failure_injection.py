"""Failure-injection tests: how the framework behaves when things break.

A production framework is defined as much by its failure behaviour as by
its happy paths: memory limits blowing up mid-benchmark, kernels reporting
garbage, models fed impossible data, partitioners given contradictory
inputs.  Every failure must surface as a typed ``FuPerModError`` subclass
with a diagnosable message -- never a bare ``ValueError`` from numpy or a
silent wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import Benchmark, PlatformBenchmark
from repro.core.kernel import CallableKernel, SimulatedKernel
from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.partition.dynamic import DynamicPartitioner
from repro.core.partition.geometric import partition_geometric
from repro.core.point import MeasurementPoint
from repro.errors import (
    BenchmarkError,
    FuPerModError,
    ModelError,
    PartitionError,
)
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device, MemoryExceeded
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


class TestMemoryLimitFailures:
    def _device(self, limit=100):
        return Device(
            "limited", ConstantProfile(1.0e9), noise=NoNoise(),
            memory_limit_units=limit,
        )

    def test_benchmark_surfaces_memory_exceeded(self):
        kernel = SimulatedKernel(self._device(100), unit_flops=1.0)
        bench = Benchmark(kernel)
        with pytest.raises(MemoryExceeded):
            bench.run(101)

    def test_memory_exceeded_is_typed(self):
        assert issubclass(MemoryExceeded, FuPerModError)

    def test_group_measure_fails_fast(self):
        platform = Platform([Node("n", [self._device(100)])])
        bench = PlatformBenchmark(platform, unit_flops=1.0)
        with pytest.raises(MemoryExceeded):
            bench.measure_group([1000])

    def test_within_limit_fine(self):
        kernel = SimulatedKernel(self._device(100), unit_flops=1.0)
        point = Benchmark(kernel).run(100)
        assert point.d == 100


class TestKernelMisbehaviour:
    def test_negative_time_rejected(self):
        kernel = CallableKernel(complexity_fn=lambda d: d, run_fn=lambda p: None)
        kernel.execute = lambda ctx: -1.0  # type: ignore[method-assign]
        with pytest.raises(BenchmarkError, match="negative"):
            Benchmark(kernel).run(10)

    def test_kernel_exception_propagates_with_cleanup(self):
        torn = []

        def explode(_payload):
            raise RuntimeError("kernel blew up")

        kernel = CallableKernel(
            complexity_fn=lambda d: d,
            run_fn=explode,
            setup_fn=lambda d: "payload",
            teardown_fn=lambda p: torn.append(p),
        )
        with pytest.raises(RuntimeError, match="blew up"):
            Benchmark(kernel).run(5)
        # finalize ran despite the failure (the try/finally contract).
        assert torn == ["payload"]


class TestModelMisuse:
    def test_all_models_reject_zero_size_points(self):
        for cls in (ConstantModel, PiecewiseModel, AkimaModel):
            with pytest.raises(ModelError):
                cls().update(MeasurementPoint(d=0, t=1.0))

    def test_prediction_before_ready(self):
        for cls in (ConstantModel, PiecewiseModel, AkimaModel):
            with pytest.raises(ModelError):
                cls().time(10)

    def test_negative_size_prediction(self):
        m = ConstantModel()
        m.update(MeasurementPoint(d=10, t=1.0))
        with pytest.raises(ModelError):
            m.time(-1)


class TestPartitionerMisuse:
    def test_unready_models_rejected(self):
        # Rejected at the partition boundary now, before any model fit.
        with pytest.raises(PartitionError, match="measured point"):
            partition_geometric(100, [PiecewiseModel(), PiecewiseModel()])

    def test_empty_models_rejected(self):
        with pytest.raises(PartitionError):
            partition_geometric(100, [])

    def test_dynamic_partitioner_propagates_measure_failure(self):
        platform = Platform(
            [Node("n", [Device("d", ConstantProfile(1.0e9), noise=NoNoise(),
                               memory_limit_units=10)])]
        )
        bench = PlatformBenchmark(platform, unit_flops=1.0)
        dyn = DynamicPartitioner(
            partition_geometric, [PiecewiseModel()], 1000, bench.measure_group
        )
        with pytest.raises(MemoryExceeded):
            dyn.iterate()  # even share of 1000 exceeds the 10-unit limit


class TestErrorHierarchy:
    def test_all_errors_catchable_at_base(self):
        from repro import errors

        for name in (
            "InterpolationError", "SolverError", "PlatformError",
            "CommunicationError", "BenchmarkError", "ModelError",
            "PartitionError", "PersistenceError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.FuPerModError)
            assert issubclass(cls, Exception)

    def test_numpy_errors_do_not_leak_from_jacobi(self):
        # A pathological (but valid) platform/system combination must not
        # raise bare numpy errors.
        from repro.apps.jacobi.distributed import run_balanced_jacobi
        from repro.core.partition.dynamic import LoadBalancer

        platform = Platform(
            [Node("n", [Device("d", ConstantProfile(1.0e9), noise=NoNoise())])]
        )
        balancer = LoadBalancer(partition_geometric, [PiecewiseModel()], 5)
        result = run_balanced_jacobi(platform, balancer, max_iterations=3)
        assert isinstance(result.solution, np.ndarray)
