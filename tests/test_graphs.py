"""Tests for the graph-partitioning bridge."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import ConstantModel
from repro.errors import PartitionError
from repro.graphs import (
    edge_cut,
    grid_graph,
    partition_graph_weighted,
    partition_weights,
    weight_balance,
)

from tests.conftest import model_from_time_fn


def _models(speeds):
    return [
        model_from_time_fn(ConstantModel, lambda d, s=s: d / s, [100]) for s in speeds
    ]


class TestPartitionWeights:
    def test_proportional_for_constant_models(self):
        weights = partition_weights(1000, _models([300.0, 100.0]))
        assert weights == pytest.approx([0.75, 0.25])

    def test_sums_to_one(self):
        weights = partition_weights(997, _models([3.0, 5.0, 7.0]))
        assert sum(weights) == pytest.approx(1.0)

    def test_invalid_total(self):
        with pytest.raises(PartitionError):
            partition_weights(0, _models([1.0]))

    def test_custom_algorithm(self):
        from repro.core.partition.basic import partition_constant

        weights = partition_weights(100, _models([1.0, 1.0]), partition_constant)
        assert weights == pytest.approx([0.5, 0.5])


class TestGridGraph:
    def test_shape(self):
        g = grid_graph(4, 3)
        assert g.number_of_nodes() == 12
        # Interior degree 4, corners 2.
        degrees = [d for _n, d in g.degree()]
        assert max(degrees) <= 4 and min(degrees) == 2

    def test_row_major_labels(self):
        g = grid_graph(3, 2)
        assert set(g.nodes) == set(range(6))
        assert g.has_edge(0, 1) and g.has_edge(0, 3)

    def test_invalid(self):
        with pytest.raises(PartitionError):
            grid_graph(0, 5)


class TestPartitionGraphWeighted:
    def test_all_vertices_assigned(self):
        g = grid_graph(8, 8)
        assignment = partition_graph_weighted(g, [1.0, 1.0, 2.0])
        assert set(assignment.keys()) == set(g.nodes)
        assert set(assignment.values()) <= {0, 1, 2}

    def test_weights_respected(self):
        g = grid_graph(16, 16)
        weights = [1.0, 3.0]
        assignment = partition_graph_weighted(g, weights)
        assert weight_balance(assignment, weights) < 0.15

    def test_equal_weights_balanced(self):
        g = grid_graph(12, 12)
        assignment = partition_graph_weighted(g, [1.0] * 4)
        counts = [0] * 4
        for p in assignment.values():
            counts[p] += 1
        assert max(counts) - min(counts) <= 0.2 * (144 / 4)

    def test_zero_weight_part_empty(self):
        g = grid_graph(6, 6)
        assignment = partition_graph_weighted(g, [1.0, 0.0, 1.0])
        assert 1 not in set(assignment.values())

    def test_single_part(self):
        g = grid_graph(4, 4)
        assignment = partition_graph_weighted(g, [5.0])
        assert set(assignment.values()) == {0}
        assert edge_cut(g, assignment) == 0

    def test_edge_cut_reasonable_for_grid(self):
        # A 16x16 grid split in two should cut roughly one column of edges
        # (16), certainly far fewer than the 480 total.
        g = grid_graph(16, 16)
        assignment = partition_graph_weighted(g, [1.0, 1.0])
        assert edge_cut(g, assignment) < 64

    def test_disconnected_graph_handled(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (10, 11), (11, 12)])
        assignment = partition_graph_weighted(g, [1.0, 1.0])
        assert set(assignment.keys()) == set(g.nodes)

    def test_more_parts_than_vertices_rejected(self):
        g = nx.path_graph(2)
        with pytest.raises(PartitionError):
            partition_graph_weighted(g, [1.0, 1.0, 1.0])

    def test_validation(self):
        g = grid_graph(3, 3)
        with pytest.raises(PartitionError):
            partition_graph_weighted(g, [])
        with pytest.raises(PartitionError):
            partition_graph_weighted(g, [-1.0, 2.0])
        with pytest.raises(PartitionError):
            partition_graph_weighted(g, [0.0, 0.0])
        with pytest.raises(PartitionError):
            partition_graph_weighted(nx.Graph(), [1.0])

    def test_deterministic(self):
        g = grid_graph(10, 10)
        a1 = partition_graph_weighted(g, [1.0, 2.0])
        a2 = partition_graph_weighted(g, [1.0, 2.0])
        assert a1 == a2

    @given(
        st.integers(min_value=4, max_value=14),
        st.integers(min_value=4, max_value=14),
        st.lists(st.floats(min_value=0.5, max_value=5.0), min_size=1, max_size=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_properties(self, w, h, weights):
        g = grid_graph(w, h)
        assignment = partition_graph_weighted(g, weights)
        # Complete assignment into declared parts.
        assert set(assignment.keys()) == set(g.nodes)
        assert all(0 <= p < len(weights) for p in assignment.values())
        # Cut is bounded by the total edge count.
        assert 0 <= edge_cut(g, assignment) <= g.number_of_edges()


class TestMetrics:
    def test_edge_cut_counts_cross_edges(self):
        g = nx.path_graph(4)  # 0-1-2-3
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        assert edge_cut(g, assignment) == 1

    def test_weight_balance_perfect(self):
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        assert weight_balance(assignment, [1.0, 1.0]) == pytest.approx(0.0)

    def test_weight_balance_deviation(self):
        assignment = {0: 0, 1: 0, 2: 0, 3: 1}
        # Targets are 2/2; achieved 3/1 -> 50% deviation.
        assert weight_balance(assignment, [1.0, 1.0]) == pytest.approx(0.5)
