"""Tests for cross-validated model-family selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import AkimaModel, ConstantModel, LinearModel, SegmentedLinearModel
from repro.core.point import MeasurementPoint
from repro.core.selection import leave_one_out_error, select_model
from repro.errors import FuPerModError, ModelError

from tests.conftest import points_from_time_fn


def _cliff(d: float) -> float:
    return d / 1000.0 if d <= 1000 else 1.0 + (d - 1000) / 100.0


class TestLeaveOneOutError:
    def test_zero_for_matching_family(self):
        points = points_from_time_fn(lambda d: 0.01 * d, [10, 50, 100, 400, 900])
        assert leave_one_out_error(ConstantModel, points) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_mismatched_family(self):
        points = points_from_time_fn(_cliff, [200, 500, 800, 1200, 1800, 2600])
        assert leave_one_out_error(LinearModel, points) > 0.3

    def test_penalises_interpolators_on_noise(self):
        # Pure noise around a constant-speed device: an interpolating
        # spline chases the noise, the pooled constant does not.
        rng = np.random.default_rng(0)
        points = [
            MeasurementPoint(d=d, t=0.001 * d * (1.0 + 0.1 * rng.standard_normal()))
            for d in [100, 200, 300, 400, 500, 600, 700, 800]
        ]
        constant_err = leave_one_out_error(ConstantModel, points)
        akima_err = leave_one_out_error(AkimaModel, points)
        assert constant_err < akima_err

    def test_needs_three_points(self):
        points = points_from_time_fn(lambda d: d, [1, 2])
        with pytest.raises(ModelError):
            leave_one_out_error(ConstantModel, points)


class TestSelectModel:
    def test_picks_cheap_family_for_constant_speed(self):
        points = points_from_time_fn(lambda d: 0.01 * d, [10, 50, 100, 400, 900])
        result = select_model(points)
        # Constant, linear and segmented all achieve ~0 here; the tie must
        # break deterministically and be one of the exact families.
        assert result.errors[result.best] == pytest.approx(0.0, abs=1e-9)
        assert result.best in {"constant", "linear", "segmented"}

    def test_picks_flexible_family_for_cliff(self):
        points = points_from_time_fn(
            _cliff, [100, 300, 500, 800, 1000, 1200, 1500, 2000, 3000]
        )
        result = select_model(points)
        assert result.errors["linear"] > 10 * result.errors[result.best]
        assert result.best in {"segmented", "akima", "pchip", "piecewise"}

    def test_custom_candidates(self):
        points = points_from_time_fn(lambda d: 0.5 + 0.01 * d, [10, 100, 500, 900])
        result = select_model(
            points,
            candidates={"constant": ConstantModel, "linear": LinearModel},
        )
        assert result.best == "linear"
        assert set(result.errors) == {"constant", "linear"}

    def test_failing_family_scored_inf(self):
        # Decreasing times make the linear fit degenerate on some folds.
        points = [
            MeasurementPoint(d=10, t=5.0),
            MeasurementPoint(d=100, t=4.0),
            MeasurementPoint(d=1000, t=3.0),
            MeasurementPoint(d=2000, t=2.0),
        ]
        result = select_model(
            points,
            candidates={"constant": ConstantModel, "linear": LinearModel},
        )
        assert result.errors["linear"] == float("inf")
        assert result.best == "constant"

    def test_empty_candidates_rejected(self):
        points = points_from_time_fn(lambda d: d, [1, 2, 3])
        with pytest.raises(FuPerModError):
            select_model(points, candidates={})

    def test_all_failing_rejected(self):
        points = points_from_time_fn(lambda d: d, [1, 2])  # too few for LOO
        with pytest.raises(FuPerModError):
            select_model(points, candidates={"constant": ConstantModel})

    def test_default_menu_is_registry(self):
        points = points_from_time_fn(lambda d: 0.01 * d, [10, 100, 1000, 5000])
        result = select_model(points)
        from repro.core.registry import available_models

        assert set(result.errors) == set(available_models())

    def test_segmented_wins_on_its_home_turf(self):
        # Clean two-regime data with enough points per regime.
        points = points_from_time_fn(
            _cliff, [100, 300, 500, 700, 900, 1000, 1300, 1700, 2200, 3000]
        )
        result = select_model(
            points,
            candidates={
                "linear": LinearModel,
                "segmented": SegmentedLinearModel,
            },
        )
        assert result.best == "segmented"
