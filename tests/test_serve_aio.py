"""Asyncio front end: protocol parity, keep-alive, fast lane, taxonomy.

The asyncio transport must be *indistinguishable* from the threaded one
at the protocol level -- both funnel misses through the same
:func:`~repro.serve.frontend.handle_request` -- while serving cache hits
inline on the event loop.  These tests drive both front ends over real
sockets and compare.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import AioFrontend, PlanServer
from repro.serve.aio import try_fast_plan
from repro.serve.frontend import make_http_server

from tests.test_serve_overload import gated_partitioner  # noqa: F401
from tests.test_serve_server import make_models, scratch_partitioner  # noqa: F401

pytestmark = pytest.mark.serve


def post_json(url: str, payload, timeout: float = 10.0):
    """One-shot POST; returns (status, decoded body, headers)."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read()), dict(reply.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def get_json(url: str, timeout: float = 10.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def aio_server():
    """A plan server behind the asyncio front end, on an ephemeral port."""
    with PlanServer(make_models()) as server:
        frontend = AioFrontend(server, port=0)
        frontend.start()
        try:
            yield server, frontend
        finally:
            frontend.stop()


@pytest.fixture
def threaded_server():
    """The same plan server behind the threaded stdlib front end."""
    with PlanServer(make_models()) as server:
        httpd = make_http_server(server, port=0)
        runner = threading.Thread(target=httpd.serve_forever, daemon=True)
        runner.start()
        host, port = httpd.server_address[:2]
        try:
            yield server, f"http://{host}:{port}"
        finally:
            httpd.shutdown()
            httpd.server_close()


def scrub_timing(body):
    """Drop the one legitimately nondeterministic field (wall-clock)."""
    out = dict(body)
    out.pop("compute_seconds", None)
    return out


class TestProtocolParity:
    """Same requests, same responses, either front end."""

    def test_plan_responses_match(self, aio_server, threaded_server):
        _, frontend = aio_server
        _, threaded_url = threaded_server
        for payload in (
            {"total": 1200, "id": "a"},
            {"total": 1200, "id": "b"},          # cached on each side now
            {"total": 900, "partitioner": "geometric"},
            {"total": 0},
        ):
            a_status, a_body, _ = post_json(f"{frontend.url}/plan", payload)
            t_status, t_body, _ = post_json(f"{threaded_url}/plan", payload)
            assert a_status == t_status
            assert scrub_timing(a_body) == scrub_timing(t_body)
        # The second identical request was a hit on both sides.
        assert post_json(f"{frontend.url}/plan", {"total": 1200})[1]["cached"]

    def test_error_responses_match(self, aio_server, threaded_server):
        _, frontend = aio_server
        _, threaded_url = threaded_server
        for payload in (
            {"total": "many"},
            {"partitioner": "geometric"},        # no total
            {"cmd": "unknown-verb"},
            {"total": 500, "partitioner": "no-such-algorithm"},
        ):
            a_status, a_body, _ = post_json(f"{frontend.url}/plan", payload)
            t_status, t_body, _ = post_json(f"{threaded_url}/plan", payload)
            assert (a_status, a_body) == (t_status, t_body)
            assert a_status == 400 and "error" in a_body

    def test_metrics_on_both_frontends(self, aio_server, threaded_server):
        _, frontend = aio_server
        _, threaded_url = threaded_server
        for base in (frontend.url, threaded_url):
            post_json(f"{base}/plan", {"total": 640})
            status, body = get_json(f"{base}/metrics")
            assert status == 200
            metrics = body["metrics"]
            assert metrics["schema"] == "fupermod-metrics/4"
            assert metrics["uptime_s"] >= 0.0
            assert metrics["serve"]["computations"] == 1
            assert "cache" in metrics

    def test_stats_and_health(self, aio_server):
        _, frontend = aio_server
        status, body = get_json(f"{frontend.url}/stats")
        assert status == 200 and "serve" in body["stats"]
        status, body = get_json(f"{frontend.url}/health")
        assert status == 200 and body["ok"] is True


class TestErrorTaxonomy:
    """The HTTP status codes the asyncio front end must speak."""

    def test_bad_json_is_400(self, aio_server):
        _, frontend = aio_server
        request = urllib.request.Request(
            f"{frontend.url}/plan", data=b"{broken", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10.0)
        assert exc_info.value.code == 400

    def test_unknown_endpoint_is_404(self, aio_server):
        _, frontend = aio_server
        assert get_json(f"{frontend.url}/nope")[0] == 404
        assert post_json(f"{frontend.url}/nope", {})[0] == 404

    def test_oversized_body_is_413(self):
        with PlanServer(make_models()) as server:
            with AioFrontend(server, port=0, max_body_bytes=256) as frontend:
                request = urllib.request.Request(
                    f"{frontend.url}/plan", data=b"x" * 512, method="POST"
                )
                with pytest.raises(urllib.error.HTTPError) as exc_info:
                    urllib.request.urlopen(request, timeout=10.0)
                assert exc_info.value.code == 413

    def test_shed_is_503_with_retry_after(self, gated_partitioner):  # noqa: F811
        gate, started = gated_partitioner
        with PlanServer(make_models(), max_pending=1,
                        shed_retry_after=2.0) as server:
            with AioFrontend(server, port=0) as frontend:
                results = {}

                def blocked() -> None:
                    results["first"] = post_json(
                        f"{frontend.url}/plan",
                        {"total": 1000, "partitioner": "gated"},
                        timeout=30.0,
                    )

                runner = threading.Thread(target=blocked, daemon=True)
                runner.start()
                started.wait(timeout=10.0)
                status, body, headers = post_json(
                    f"{frontend.url}/plan",
                    {"total": 2000, "partitioner": "gated"},
                )
                assert status == 503 and body["shed"] is True
                assert headers["Retry-After"] == "2"
                gate.set()
                runner.join(timeout=30.0)
                assert results["first"][0] == 200


class TestKeepAlive:
    """One connection, many requests."""

    def test_connection_reuse(self, aio_server):
        server, frontend = aio_server
        conn = http.client.HTTPConnection(frontend.host, frontend.port,
                                          timeout=10.0)
        try:
            for i in range(5):
                conn.request(
                    "POST", "/plan",
                    body=json.dumps({"total": 800, "id": i}),
                    headers={"Content-Type": "application/json"},
                )
                reply = conn.getresponse()
                body = json.loads(reply.read())
                assert reply.status == 200 and body["id"] == i
        finally:
            conn.close()
        assert frontend.requests_served == 5
        # One solve, four inline fast-lane hits.
        assert server.engine.counters.computations == 1
        assert server.engine.cache.stats().hits == 4

    def test_connection_close_honoured(self, aio_server):
        _, frontend = aio_server
        conn = http.client.HTTPConnection(frontend.host, frontend.port,
                                          timeout=10.0)
        try:
            conn.request("GET", "/health", headers={"Connection": "close"})
            reply = conn.getresponse()
            assert reply.status == 200
            assert reply.headers["Connection"] == "close"
        finally:
            conn.close()


class TestFastLane:
    """`try_fast_plan`: hits inline, everything surprising falls through."""

    def test_miss_then_hit(self):
        with PlanServer(make_models()) as server:
            assert try_fast_plan(server, {"total": 700}) is None  # cold
            server.request(700)
            hit = try_fast_plan(server, {"total": 700, "id": "x"})
            assert hit is not None
            assert hit["cached"] is True and hit["id"] == "x"
            assert sum(hit["sizes"]) == 700

    def test_malformed_payloads_fall_through(self):
        with PlanServer(make_models()) as server:
            server.request(700)
            for payload in (
                {"total": "700"},
                {"total": True},
                {"total": -1},
                {"total": 700, "partitioner": 42},
                {"total": 700, "options": "fast"},
                {"total": 700, "cmd": "stats"},
            ):
                assert try_fast_plan(server, payload) is None


class TestExtraRoutes:
    """The fleet worker's inline route extension point."""

    def test_longest_prefix_dispatch(self):
        seen = []

        def peek(path, payload):
            seen.append((path, payload))
            return 200, {"route": "peek", "path": path}

        def wide(path, _payload):
            return 200, {"route": "wide"}

        with PlanServer(make_models()) as server:
            frontend = AioFrontend(server, port=0, extra_routes={
                "GET /cache/": peek,
                "GET /ca": wide,
                "POST /peers": peek,
            })
            with frontend:
                status, body = get_json(f"{frontend.url}/cache/abc123")
                assert status == 200 and body["route"] == "peek"
                assert body["path"] == "/cache/abc123"
                status, body = get_json(f"{frontend.url}/caches")
                assert status == 200 and body["route"] == "wide"
                status, body, _ = post_json(
                    f"{frontend.url}/peers", {"peers": []}
                )
                assert status == 200
                assert seen[-1] == ("/peers", {"peers": []})
