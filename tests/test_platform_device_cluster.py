"""Tests for devices, nodes and platforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device, DeviceKind, MemoryExceeded
from repro.platform.noise import GaussianNoise, NoNoise
from repro.platform.profiles import ConstantProfile


def _dev(name: str, flops: float = 1.0e9, **kw) -> Device:
    kw.setdefault("noise", NoNoise())
    return Device(name, ConstantProfile(flops), **kw)


class TestDevice:
    def test_ideal_time(self):
        d = _dev("a", 2.0e9)
        assert d.ideal_time(4.0e9, 100) == pytest.approx(2.0)

    def test_zero_work_zero_time(self):
        d = _dev("a")
        assert d.ideal_time(0.0, 0) == 0.0
        assert d.ideal_time(0.0, 10) == 0.0

    def test_negative_inputs_rejected(self):
        d = _dev("a")
        with pytest.raises(PlatformError):
            d.ideal_time(-1.0, 10)
        with pytest.raises(PlatformError):
            d.ideal_time(1.0, -10)

    def test_empty_name_rejected(self):
        with pytest.raises(PlatformError):
            Device("", ConstantProfile(1.0))

    def test_execution_time_noiseless_matches_ideal(self):
        d = _dev("a", 1.0e9)
        rng = np.random.default_rng(0)
        assert d.execution_time(2.0e9, 50, rng) == pytest.approx(2.0)

    def test_execution_time_noise_within_bounds(self):
        d = Device("a", ConstantProfile(1.0e9), noise=GaussianNoise(0.1))
        rng = np.random.default_rng(0)
        times = [d.execution_time(1.0e9, 50, rng) for _ in range(200)]
        assert all(0.7 - 1e-9 <= t <= 1.3 + 1e-9 for t in times)

    def test_contention_slows_down(self):
        d = _dev("a", 1.0e9)
        rng = np.random.default_rng(0)
        alone = d.execution_time(1.0e9, 10, rng)
        shared = d.execution_time(1.0e9, 10, rng, contention_factor=0.5)
        assert shared == pytest.approx(2.0 * alone)

    def test_bad_contention_rejected(self):
        d = _dev("a")
        rng = np.random.default_rng(0)
        with pytest.raises(PlatformError):
            d.execution_time(1.0, 1, rng, contention_factor=0.0)
        with pytest.raises(PlatformError):
            d.execution_time(1.0, 1, rng, contention_factor=1.5)

    def test_memory_limit_enforced(self):
        d = _dev("a", memory_limit_units=100)
        with pytest.raises(MemoryExceeded):
            d.ideal_time(1.0, 101)
        assert d.ideal_time(1.0, 100) > 0.0

    def test_bad_memory_limit_rejected(self):
        with pytest.raises(PlatformError):
            _dev("a", memory_limit_units=0)

    def test_ideal_speed(self):
        d = _dev("a", 3.0e9)
        assert d.ideal_speed(3.0e9, 7) == pytest.approx(3.0e9)

    def test_kind_default(self):
        assert _dev("a").kind is DeviceKind.CPU_CORE


class TestNode:
    def test_requires_devices(self):
        with pytest.raises(PlatformError):
            Node("n", [])

    def test_requires_name(self):
        with pytest.raises(PlatformError):
            Node("", [_dev("a")])

    def test_duplicate_device_names_rejected(self):
        with pytest.raises(PlatformError):
            Node("n", [_dev("a"), _dev("a")])

    def test_no_contention_by_default(self):
        n = Node("n", [_dev("a"), _dev("b")])
        assert n.contention_factor(1) == 1.0
        assert n.contention_factor(2) == 1.0

    def test_contention_factors(self):
        n = Node("n", [_dev("a"), _dev("b"), _dev("c")], contention=[1.0, 0.9, 0.8])
        assert n.contention_factor(1) == 1.0
        assert n.contention_factor(2) == 0.9
        assert n.contention_factor(3) == 0.8
        # Beyond the list: last entry reused.
        assert n.contention_factor(10) == 0.8

    def test_contention_must_start_at_one(self):
        with pytest.raises(PlatformError):
            Node("n", [_dev("a")], contention=[0.9])

    def test_contention_range_checked(self):
        with pytest.raises(PlatformError):
            Node("n", [_dev("a")], contention=[1.0, 1.2])

    def test_group_size_positive(self):
        n = Node("n", [_dev("a")])
        with pytest.raises(PlatformError):
            n.contention_factor(0)

    def test_len(self):
        assert len(Node("n", [_dev("a"), _dev("b")])) == 2


class TestPlatform:
    def make(self) -> Platform:
        return Platform(
            [
                Node("n0", [_dev("a"), _dev("b")], contention=[1.0, 0.8]),
                Node("n1", [_dev("c")]),
            ]
        )

    def test_size_and_rank_order(self):
        p = self.make()
        assert p.size == 3
        assert [d.name for d in p.devices] == ["a", "b", "c"]
        assert p.device(0).name == "a"
        assert p.device(2).name == "c"

    def test_rank_out_of_range(self):
        with pytest.raises(PlatformError):
            self.make().device(3)

    def test_empty_platform_rejected(self):
        with pytest.raises(PlatformError):
            Platform([])

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(PlatformError):
            Platform([Node("n", [_dev("a")]), Node("n", [_dev("b")])])

    def test_duplicate_device_across_nodes_rejected(self):
        with pytest.raises(PlatformError):
            Platform([Node("n0", [_dev("a")]), Node("n1", [_dev("a")])])

    def test_node_of(self):
        p = self.make()
        assert p.node_of(p.device(0)).name == "n0"
        assert p.node_of(p.device(2)).name == "n1"

    def test_node_of_foreign_device_rejected(self):
        with pytest.raises(PlatformError):
            self.make().node_of(_dev("zzz"))

    def test_rank_of(self):
        p = self.make()
        assert p.rank_of(p.device(1)) == 1

    def test_group_contention_same_node(self):
        p = self.make()
        # Both ranks of n0 active -> group of 2 -> 0.8.
        assert p.group_contention(0, [0, 1]) == 0.8
        # Only rank 0 active on n0 -> 1.0.
        assert p.group_contention(0, [0, 2]) == 1.0
        # n1 has no contention list.
        assert p.group_contention(2, [0, 1, 2]) == 1.0

    def test_group_contention_rank_not_listed_counts_itself(self):
        p = self.make()
        # Rank 0 not in active list: it still counts itself.
        assert p.group_contention(0, [1]) == 0.8
