"""Storage fault injection: seeded, serialisable, OSError-faithful.

The disk fault plan is the chaos suite's storage seam, so its own
contract must be airtight:

* deterministic -- same plan, same operation sequence, same faults,
  across scratch directories (substreams key on file *names*);
* targeted -- fnmatch patterns against name or full path, insertion
  order, first match wins, unmatched paths get the real file back;
* faithful -- injected failures are :class:`OSError` with the scripted
  errno, indistinguishable from real disk trouble;
* device-modelled -- the death window (``fail_after``/``heal_after``)
  counts mutating operations per matched *pattern*, shared by every
  path the pattern matches, across re-opens.
"""

from __future__ import annotations

import errno
import json

import pytest

from repro.errors import DiskFaultError, FaultInjectionError
from repro.faults import (
    DISK_ERRNOS,
    DiskFaultPlan,
    DiskFaults,
    NO_DISK_FAULTS,
    faulty_open,
)

pytestmark = [pytest.mark.faults, pytest.mark.disk]


def wal_plan(**fault_fields):
    """A plan faulting every ``*.wal`` path with the given spec."""
    seed = fault_fields.pop("seed", 7)
    return DiskFaultPlan({"*.wal": DiskFaults(**fault_fields)}, seed=seed)


class TestSpecValidation:
    @pytest.mark.parametrize("field", [
        "write_error_rate", "fsync_error_rate",
        "short_write_rate", "read_corrupt_rate",
    ])
    @pytest.mark.parametrize("value", [-0.1, 1.5, float("nan")])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(FaultInjectionError):
            DiskFaults(**{field: value})

    def test_slow_ms_must_be_finite_non_negative(self):
        with pytest.raises(FaultInjectionError):
            DiskFaults(slow_ms=-1.0)
        with pytest.raises(FaultInjectionError):
            DiskFaults(slow_ms=float("inf"))

    def test_death_window_must_be_ordered(self):
        with pytest.raises(FaultInjectionError):
            DiskFaults(fail_after=-1)
        with pytest.raises(FaultInjectionError):
            DiskFaults(fail_after=5, heal_after=5)
        DiskFaults(fail_after=5, heal_after=6)  # the minimal window

    def test_error_name_must_be_known(self):
        with pytest.raises(FaultInjectionError):
            DiskFaults(error="EMFILE")
        assert DiskFaults(error="ENOSPC").errno_code == errno.ENOSPC
        assert DISK_ERRNOS["EIO"] == errno.EIO

    def test_benign_detection(self):
        assert NO_DISK_FAULTS.benign
        assert not DiskFaults(write_error_rate=0.1).benign
        assert not DiskFaults(fail_after=3).benign

    def test_plan_rejects_bad_patterns_and_specs(self):
        with pytest.raises(FaultInjectionError):
            DiskFaultPlan({"": DiskFaults()})
        with pytest.raises(FaultInjectionError):
            DiskFaultPlan({"*.wal": {"write_error_rate": 0.5}})


class TestTargeting:
    def test_name_and_full_path_match(self):
        plan = DiskFaultPlan({
            "plans.wal": DiskFaults(write_error_rate=1.0),
            "*/shard1/*": DiskFaults(fsync_error_rate=1.0),
        })
        assert plan.spec_for("/a/b/plans.wal").write_error_rate == 1.0
        assert plan.spec_for("/x/shard1/hints.log").fsync_error_rate == 1.0
        assert plan.spec_for("/x/shard2/hints.log") is NO_DISK_FAULTS

    def test_first_match_wins_in_insertion_order(self):
        plan = DiskFaultPlan({
            "plans.*": DiskFaults(write_error_rate=1.0),
            "*.wal": DiskFaults(fsync_error_rate=1.0),
        })
        pattern, spec = plan.match("/d/plans.wal")
        assert pattern == "plans.*"
        assert spec.write_error_rate == 1.0

    def test_unmatched_paths_get_the_real_file(self, tmp_path):
        opener = faulty_open(wal_plan(write_error_rate=1.0))
        clean = tmp_path / "notes.txt"
        with opener(clean, "w", encoding="utf-8") as handle:
            assert not hasattr(type(handle), "_mutate")
            handle.write("untouched\n")
        assert clean.read_text() == "untouched\n"

    def test_faulty_patterns_listing(self):
        plan = DiskFaultPlan({
            "*.wal": DiskFaults(write_error_rate=0.5),
            "*.txt": DiskFaults(),
        })
        assert plan.faulty_patterns == ["*.wal"]


class TestDeterminism:
    def outcomes(self, tmp_path, seed, runs=40):
        plan = wal_plan(write_error_rate=0.3, seed=seed)
        opener = faulty_open(plan)
        handle = opener(tmp_path / "x.wal", "a", encoding="utf-8")
        trace = []
        for _ in range(runs):
            try:
                handle.write("r\n")
                trace.append("ok")
            except DiskFaultError:
                trace.append("fault")
        handle.close()
        return trace

    def test_same_seed_same_fault_sequence(self, tmp_path_factory):
        a = self.outcomes(tmp_path_factory.mktemp("a"), seed=11)
        b = self.outcomes(tmp_path_factory.mktemp("b"), seed=11)
        assert a == b, "fault sequence must survive a scratch-dir change"
        assert "fault" in a and "ok" in a

    def test_different_seed_differs(self, tmp_path_factory):
        a = self.outcomes(tmp_path_factory.mktemp("a"), seed=11)
        b = self.outcomes(tmp_path_factory.mktemp("b"), seed=12)
        assert a != b

    def test_substream_is_per_file_name(self, tmp_path):
        plan = wal_plan(write_error_rate=0.5, seed=3)
        assert (plan.rng("/a/x.wal").random()
                == plan.rng("/other/place/x.wal").random())
        assert (plan.rng("/a/x.wal").random()
                != plan.rng("/a/y.wal").random())


class TestFaultSemantics:
    def test_injected_error_is_a_real_oserror(self, tmp_path):
        opener = faulty_open(wal_plan(write_error_rate=1.0, error="ENOSPC"))
        handle = opener(tmp_path / "x.wal", "a", encoding="utf-8")
        with pytest.raises(OSError) as excinfo:
            handle.write("doomed\n")
        handle.close()
        err = excinfo.value
        assert isinstance(err, DiskFaultError)
        assert err.errno == errno.ENOSPC
        assert err.op == "write"
        assert err.path.endswith("x.wal")

    def test_short_write_persists_a_torn_prefix(self, tmp_path):
        opener = faulty_open(wal_plan(short_write_rate=1.0))
        path = tmp_path / "x.wal"
        handle = opener(path, "a", encoding="utf-8")
        payload = "0123456789abcdef\n"
        with pytest.raises(DiskFaultError):
            handle.write(payload)
        handle.close()
        torn = path.read_text()
        assert 0 < len(torn) < len(payload)
        assert payload.startswith(torn)

    def test_fsync_fault_fires_without_touching_data(self, tmp_path):
        opener = faulty_open(wal_plan(fsync_error_rate=1.0))
        path = tmp_path / "x.wal"
        handle = opener(path, "a", encoding="utf-8")
        handle.write("landed\n")
        handle.flush()
        with pytest.raises(DiskFaultError) as excinfo:
            handle.fsync()
        handle.close()
        assert excinfo.value.op == "fsync"
        assert path.read_text() == "landed\n"

    def test_read_corruption_is_a_detectable_nul(self, tmp_path):
        path = tmp_path / "x.wal"
        path.write_text(json.dumps({"k": "v"}) + "\n")
        opener = faulty_open(wal_plan(read_corrupt_rate=1.0))
        with opener(path, "r", encoding="utf-8") as handle:
            data = handle.read()
        assert "\x00" in data
        with pytest.raises(ValueError):
            json.loads(data)  # strict mode refuses control characters

    def test_slow_io_uses_the_injected_clock(self, tmp_path):
        delays = []
        opener = faulty_open(wal_plan(slow_ms=5.0), clock=delays.append)
        handle = opener(tmp_path / "x.wal", "a", encoding="utf-8")
        handle.write("one\n")
        handle.fsync()
        handle.close()
        assert delays == [0.005, 0.005]  # one write + one fsync


class TestDeathWindow:
    def test_scripted_death_and_heal(self, tmp_path):
        opener = faulty_open(wal_plan(fail_after=2, heal_after=5))
        handle = opener(tmp_path / "x.wal", "a", encoding="utf-8")
        trace = []
        for _ in range(8):  # pure writes: one mutating op each
            try:
                handle.write("r\n")
                trace.append("ok")
            except DiskFaultError:
                trace.append("dead")
        handle.close()
        assert trace == ["ok", "ok", "dead", "dead", "dead",
                         "ok", "ok", "ok"]

    def test_device_counter_is_shared_across_paths_and_reopens(self, tmp_path):
        plan = DiskFaultPlan({"*.wal": DiskFaults(fail_after=1, heal_after=3)})
        opener = faulty_open(plan)
        a = opener(tmp_path / "a.wal", "a", encoding="utf-8")
        a.write("op0\n")       # device op 0: fine
        with pytest.raises(DiskFaultError):
            a.write("op1\n")   # op 1: dead
        a.close()
        b = opener(tmp_path / "b.wal", "a", encoding="utf-8")
        with pytest.raises(DiskFaultError):
            b.write("op2\n")   # op 2, same device: still dead
        b.write("op3\n")       # op 3: healed, for every matched path
        b.close()
        device = opener.devices["*.wal"]
        assert device.mutations == 4
        assert device.faults_fired == 2

    def test_heal_stops_random_faults_too(self, tmp_path):
        opener = faulty_open(wal_plan(write_error_rate=1.0, heal_after=0))
        handle = opener(tmp_path / "x.wal", "a", encoding="utf-8")
        handle.write("never faulted\n")  # healed from op 0
        handle.close()


class TestSerialisation:
    def test_roundtrip(self, tmp_path):
        plan = DiskFaultPlan({
            "*.wal": DiskFaults(write_error_rate=0.25, fail_after=3,
                                heal_after=9, error="ENOSPC"),
            "hints.*": DiskFaults(slow_ms=2.0),
        }, seed=42)
        path = tmp_path / "faults.json"
        plan.save(path)
        back = DiskFaultPlan.load(path)
        assert back.to_dict() == plan.to_dict()
        assert back.seed == 42
        assert back.spec_for("x.wal").error == "ENOSPC"

    def test_unknown_fields_refused(self):
        with pytest.raises(FaultInjectionError, match="unknown fault fields"):
            DiskFaultPlan.from_dict(
                {"patterns": {"*.wal": {"write_error_rat": 0.5}}}
            )

    def test_malformed_documents_refused(self, tmp_path):
        with pytest.raises(FaultInjectionError):
            DiskFaultPlan.from_dict([])
        with pytest.raises(FaultInjectionError):
            DiskFaultPlan.from_dict({"seed": "not-a-number"})
        bad = tmp_path / "bad.json"
        bad.write_text("{ torn")
        with pytest.raises(FaultInjectionError):
            DiskFaultPlan.load(bad)
        with pytest.raises(FaultInjectionError):
            DiskFaultPlan.load(tmp_path / "missing.json")

    def test_opener_sugar_matches_faulty_open(self, tmp_path):
        plan = wal_plan(write_error_rate=1.0)
        handle = plan.opener()(tmp_path / "x.wal", "a", encoding="utf-8")
        with pytest.raises(DiskFaultError):
            handle.write("doomed\n")
        handle.close()
