"""FaultPlan / RankFaults: validation, serialisation, determinism."""

import json

import pytest

from repro.errors import FaultInjectionError
from repro.faults import FaultPlan, RankFaults
from repro.faults.plan import NO_FAULTS


# -- RankFaults validation ------------------------------------------------

def test_default_spec_is_benign():
    assert NO_FAULTS.benign
    assert RankFaults().benign


@pytest.mark.parametrize(
    "kwargs",
    [
        {"crash_at": -1},
        {"transient_rate": -0.1},
        {"transient_rate": 1.5},
        {"transient_rate": float("nan")},
        {"nan_rate": 2.0},
        {"drop_collective_rate": -1e-9},
        {"straggler_factor": 0.5},
        {"straggler_factor": 0.0},
        {"straggler_factor": float("inf")},
        {"straggler_factor": float("nan")},
    ],
)
def test_invalid_spec_rejected(kwargs):
    with pytest.raises(FaultInjectionError):
        RankFaults(**kwargs)


def test_any_single_fault_makes_spec_non_benign():
    assert not RankFaults(crash_at=0).benign
    assert not RankFaults(transient_rate=0.1).benign
    assert not RankFaults(straggler_factor=2.0).benign
    assert not RankFaults(nan_rate=0.1).benign
    assert not RankFaults(drop_collective_rate=0.1).benign


# -- plan construction ----------------------------------------------------

def test_unlisted_rank_gets_benign_default():
    plan = FaultPlan({1: RankFaults(crash_at=3)})
    assert plan.for_rank(0) is NO_FAULTS
    assert plan.for_rank(1).crash_at == 3


def test_faulty_ranks_excludes_benign_specs():
    plan = FaultPlan({0: RankFaults(), 2: RankFaults(straggler_factor=2.0),
                      5: RankFaults(crash_at=1)})
    assert plan.faulty_ranks == [2, 5]


def test_negative_rank_rejected():
    with pytest.raises(FaultInjectionError, match="non-negative"):
        FaultPlan({-1: RankFaults()})


def test_non_spec_value_rejected():
    with pytest.raises(FaultInjectionError, match="RankFaults"):
        FaultPlan({0: {"crash_at": 1}})


# -- without_crashes ------------------------------------------------------

def test_without_crashes_clears_only_crash_at():
    plan = FaultPlan(
        {0: RankFaults(crash_at=2, transient_rate=0.3, straggler_factor=4.0)},
        seed=99,
    )
    stripped = plan.without_crashes()
    spec = stripped.for_rank(0)
    assert spec.crash_at is None
    assert spec.transient_rate == 0.3
    assert spec.straggler_factor == 4.0
    assert stripped.seed == 99
    # the original plan is untouched
    assert plan.for_rank(0).crash_at == 2


# -- seeded rng streams ---------------------------------------------------

def test_rng_streams_are_deterministic_and_independent():
    plan = FaultPlan(seed=42)
    a1 = plan.rng(0, 7).random(4).tolist()
    a2 = plan.rng(0, 7).random(4).tolist()
    assert a1 == a2  # same (rank, stream) replays identically
    assert plan.rng(1, 7).random(4).tolist() != a1  # rank decorrelates
    assert plan.rng(0, 8).random(4).tolist() != a1  # stream decorrelates
    assert FaultPlan(seed=43).rng(0, 7).random(4).tolist() != a1


# -- serialisation --------------------------------------------------------

def test_dict_round_trip():
    plan = FaultPlan(
        {2: RankFaults(crash_at=5, nan_rate=0.2),
         4: RankFaults(straggler_factor=3.0)},
        seed=7,
    )
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.seed == 7
    assert clone.for_rank(2) == plan.for_rank(2)
    assert clone.for_rank(4) == plan.for_rank(4)
    assert clone.faulty_ranks == plan.faulty_ranks


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "plan.json"
    plan = FaultPlan({1: RankFaults(transient_rate=0.25)}, seed=13)
    plan.save(path)
    loaded = FaultPlan.load(path)
    assert loaded.seed == 13
    assert loaded.for_rank(1).transient_rate == 0.25
    # the file is plain JSON a user can hand-edit
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["ranks"]["1"]["transient_rate"] == 0.25


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(FaultInjectionError, match="cannot read"):
        FaultPlan.load(tmp_path / "nope.json")


def test_load_invalid_json_raises(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(FaultInjectionError, match="not valid JSON"):
        FaultPlan.load(path)


@pytest.mark.parametrize(
    "data, match",
    [
        (["not", "an", "object"], "JSON object"),
        ({"ranks": {"zero": {}}}, "bad rank key"),
        ({"ranks": {"0": [1, 2]}}, "must be an object"),
        ({"ranks": {"0": {"explode_rate": 0.5}}}, "unknown fault fields"),
        ({"seed": "soon"}, "seed must be an integer"),
    ],
)
def test_malformed_plan_dict_raises(data, match):
    with pytest.raises(FaultInjectionError, match=match):
        FaultPlan.from_dict(data)


def test_out_of_range_value_in_file_raises(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(
        json.dumps({"seed": 0, "ranks": {"0": {"transient_rate": 7.0}}}),
        encoding="utf-8",
    )
    with pytest.raises(FaultInjectionError, match="probability"):
        FaultPlan.load(path)
