"""The transport-fault layer: seeded link chaos for the plan fleet.

:mod:`repro.faults.net` is the substrate the netsplit suite stands on,
so its own contracts get direct coverage here:

* :class:`NetFaultPlan` validates its rates, and survives the
  ``POST /chaos`` wire format round trip;
* :class:`NetChaos` draws **deterministic** per-message verdicts from
  the plan's seed -- the same (seed, message sequence) replays the
  identical fault script;
* partitions are *directed*: blocking ``A -> B`` leaves ``B -> A``
  flowing, and :meth:`NetChaos.heal` restores the zero plan while
  keeping the counters;
* a wrapped :class:`~repro.serve.shard.ShardClient` and a wrapped
  :class:`~repro.serve.router.WorkerLink` surface faults exactly as a
  real broken link would -- ``ConnectionError`` for cuts and drops,
  decode-misses for damaged response bytes, a real stall for slow
  links -- and see plan swaps on their very next message.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import FuPerModError
from repro.faults import (
    NO_NET_FAULTS,
    NetChaos,
    NetFaultPlan,
    wrap_shard_client,
    wrap_worker_link,
)
from repro.faults.net import GARBAGE_BYTES
from repro.serve import AioFrontend, PlanServer, ShardClient
from repro.serve.router import WorkerLink

from tests.test_serve_server import make_models, scratch_partitioner  # noqa: F401

pytestmark = [pytest.mark.serve, pytest.mark.faults]


class TestNetFaultPlan:
    def test_zero_plan_is_the_healthy_network(self):
        assert NO_NET_FAULTS == NetFaultPlan()
        assert NO_NET_FAULTS.blocked == frozenset()

    @pytest.mark.parametrize("bad", [
        {"slow_rate": -0.1},
        {"drop_rate": 1.5},
        {"truncate_rate": 2.0},
        {"garbage_rate": -1.0},
        {"slow_ms": -5.0},
    ])
    def test_bad_rates_refused(self, bad):
        with pytest.raises(FuPerModError):
            NetFaultPlan(**bad)

    def test_wire_format_round_trip(self):
        plan = NetFaultPlan(
            seed=7, slow_rate=0.25, slow_ms=12.5, drop_rate=0.1,
            truncate_rate=0.05, garbage_rate=0.02,
            blocked=frozenset({("s0", "s1"), ("router", "s2")}),
        )
        assert NetFaultPlan.from_dict(plan.to_dict()) == plan
        # blocked serialises sorted, so the wire form is deterministic.
        wire = plan.to_dict()
        assert wire["blocked"] == sorted(wire["blocked"])

    def test_malformed_wire_plan_refused(self):
        with pytest.raises(FuPerModError):
            NetFaultPlan.from_dict({"drop_rate": "most of them"})
        with pytest.raises(FuPerModError):
            NetFaultPlan.from_dict({"blocked": [["only-src"]]})


class TestNetChaosDecisions:
    def _script(self, chaos, n=40):
        """The verdict sequence for n messages on one link."""
        script = []
        for _ in range(n):
            try:
                script.append(("pass", chaos.before_send("a", "b")))
            except ConnectionError:
                script.append(("drop", None))
        return script

    def test_same_seed_replays_the_same_script(self):
        plan = NetFaultPlan(seed=42, drop_rate=0.3, slow_rate=0.2,
                           slow_ms=1.0)
        first = self._script(NetChaos(plan))
        second = self._script(NetChaos(plan))
        assert first == second
        assert any(v[0] == "drop" for v in first)
        assert any(v == ("pass", 0.001) for v in first)

    def test_different_seeds_diverge(self):
        base = dict(drop_rate=0.3, slow_rate=0.2, slow_ms=1.0)
        a = self._script(NetChaos(NetFaultPlan(seed=1, **base)))
        b = self._script(NetChaos(NetFaultPlan(seed=2, **base)))
        assert a != b

    def test_partitions_are_directed(self):
        chaos = NetChaos()
        chaos.block("a", "b")
        with pytest.raises(ConnectionError):
            chaos.before_send("a", "b")
        assert chaos.before_send("b", "a") == 0.0  # reverse link flows
        assert chaos.before_send("a", "c") == 0.0  # other peers flow
        stats = chaos.stats()
        assert stats["counters"]["blocked"] == 1
        assert stats["counters"]["messages"] == 3

    def test_heal_restores_the_zero_plan_keeping_counters(self):
        chaos = NetChaos(NetFaultPlan(seed=3, drop_rate=1.0))
        with pytest.raises(ConnectionError):
            chaos.before_send("a", "b")
        chaos.heal()
        assert chaos.plan == NO_NET_FAULTS
        assert chaos.before_send("a", "b") == 0.0
        assert chaos.stats()["counters"]["dropped"] == 1

    def test_response_mangling(self):
        truncating = NetChaos(NetFaultPlan(truncate_rate=1.0))
        data = b"0123456789"
        assert truncating.after_receive("a", "b", data) == b"01234"
        garbling = NetChaos(NetFaultPlan(garbage_rate=1.0))
        assert garbling.after_receive("a", "b", data) == GARBAGE_BYTES
        healthy = NetChaos()
        assert healthy.after_receive("a", "b", data) == data

    def test_set_plan_reseeds(self):
        chaos = NetChaos(NetFaultPlan(seed=5, drop_rate=0.5))
        first = self._script(chaos, n=20)
        chaos.set_plan(NetFaultPlan(seed=5, drop_rate=0.5))
        assert self._script(chaos, n=20) == first


@pytest.fixture
def aio_server():
    """A real plan server behind the asyncio front end."""
    with PlanServer(make_models()) as server:
        frontend = AioFrontend(server, port=0)
        frontend.start()
        try:
            yield server, frontend
        finally:
            frontend.stop()


class TestWrappedShardClient:
    def _client(self, frontend, chaos):
        client = ShardClient(frontend.url, "dst", timeout=5.0,
                             max_attempts=1)
        return wrap_shard_client(client, chaos, "src")

    def test_healthy_wrap_is_transparent(self, aio_server):
        _, frontend = aio_server
        chaos = NetChaos()
        client = self._client(frontend, chaos)
        try:
            reply = client.plan({"cmd": "plan", "total": 1000})
            assert sum(reply["sizes"]) == 1000
            assert chaos.stats()["counters"]["messages"] >= 1
            assert chaos.stats()["counters"]["dropped"] == 0
        finally:
            client.close()

    def test_partition_looks_like_a_dead_peer(self, aio_server):
        _, frontend = aio_server
        chaos = NetChaos()
        client = self._client(frontend, chaos)
        try:
            assert client.health() is True
            chaos.block("src", "dst")
            # The swap hits the in-flight transport immediately.
            assert client.health() is False
            with pytest.raises(ConnectionError):
                client.plan({"cmd": "plan", "total": 500})
            chaos.heal()
            assert client.health() is True
        finally:
            client.close()

    def test_garbage_damages_payloads_not_statuses(self, aio_server):
        _, frontend = aio_server
        chaos = NetChaos(NetFaultPlan(garbage_rate=1.0))
        client = self._client(frontend, chaos)
        try:
            # The bytes are ruined but the status made it through:
            # health (status-only) passes, decoders treat it as a miss.
            assert client.health() is True
            reply = client.plan({"cmd": "plan", "total": 800})
            assert "sizes" not in reply and "error" in reply
            assert chaos.stats()["counters"]["garbled"] >= 1
        finally:
            client.close()

    def test_truncated_responses_decode_as_misses(self, aio_server):
        _, frontend = aio_server
        chaos = NetChaos(NetFaultPlan(truncate_rate=1.0))
        client = self._client(frontend, chaos)
        try:
            reply = client.plan({"cmd": "plan", "total": 1200})
            assert "sizes" not in reply and "error" in reply
            assert chaos.stats()["counters"]["truncated"] >= 1
        finally:
            client.close()

    def test_slow_links_stall_the_caller(self, aio_server):
        _, frontend = aio_server
        chaos = NetChaos(NetFaultPlan(slow_rate=1.0, slow_ms=60.0))
        client = self._client(frontend, chaos)
        try:
            begin = time.monotonic()
            assert client.health() is True
            assert time.monotonic() - begin >= 0.06
            assert chaos.stats()["counters"]["slowed"] >= 1
        finally:
            client.close()


class TestWrappedWorkerLink:
    def _request(self, frontend, chaos, path="/health"):
        async def run():
            link = wrap_worker_link(
                WorkerLink("dst", frontend.url, timeout=5.0), chaos
            )
            try:
                return await link.request("GET", path)
            finally:
                link.close()
        return asyncio.run(run())

    def test_healthy_wrap_is_transparent(self, aio_server):
        _, frontend = aio_server
        chaos = NetChaos()
        status, _, body = self._request(frontend, chaos)
        assert status == 200 and body
        assert chaos.stats()["counters"]["messages"] == 1

    def test_partition_raises_into_the_failover_path(self, aio_server):
        _, frontend = aio_server
        chaos = NetChaos()
        chaos.block("router", "dst")
        with pytest.raises(ConnectionError):
            self._request(frontend, chaos)
        chaos.heal()
        status, _, _ = self._request(frontend, chaos)
        assert status == 200

    def test_garbage_reaches_the_router_as_bytes(self, aio_server):
        _, frontend = aio_server
        chaos = NetChaos(NetFaultPlan(garbage_rate=1.0))
        status, _, body = self._request(frontend, chaos)
        assert status == 200
        assert body == GARBAGE_BYTES
