"""Tests for MeasurementPoint and Precision."""

from __future__ import annotations

import math

import pytest

from repro.core.point import MeasurementPoint
from repro.core.precision import Precision
from repro.errors import BenchmarkError


class TestMeasurementPoint:
    def test_fields(self):
        p = MeasurementPoint(d=100, t=0.5, reps=5, ci=0.01)
        assert p.d == 100
        assert p.t == 0.5
        assert p.reps == 5
        assert p.ci == 0.01

    def test_speed(self):
        p = MeasurementPoint(d=100, t=0.5)
        assert p.speed == pytest.approx(200.0)

    def test_speed_zero_time_is_inf(self):
        assert MeasurementPoint(d=10, t=0.0).speed == math.inf

    def test_speed_flops(self):
        p = MeasurementPoint(d=10, t=2.0)
        assert p.speed_flops(4.0e9) == pytest.approx(2.0e9)

    def test_benchmark_cost(self):
        p = MeasurementPoint(d=10, t=0.25, reps=4)
        assert p.benchmark_cost == pytest.approx(1.0)

    def test_frozen(self):
        p = MeasurementPoint(d=1, t=1.0)
        with pytest.raises(AttributeError):
            p.d = 2  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(d=-1, t=1.0),
            dict(d=1, t=-1.0),
            dict(d=1, t=1.0, reps=0),
            dict(d=1, t=1.0, ci=-0.1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(BenchmarkError):
            MeasurementPoint(**kwargs)


class TestPrecision:
    def test_defaults(self):
        p = Precision()
        assert p.reps_min >= 1
        assert p.reps_max >= p.reps_min
        assert 0.0 < p.confidence_level < 1.0

    def test_single_shot(self):
        p = Precision.single_shot()
        assert p.reps_min == 1
        assert p.reps_max == 1

    def test_thorough_tighter_than_default(self):
        assert Precision.thorough().relative_error < Precision().relative_error

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(reps_min=0),
            dict(reps_min=10, reps_max=5),
            dict(confidence_level=0.0),
            dict(confidence_level=1.0),
            dict(relative_error=0.0),
            dict(time_limit=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(BenchmarkError):
            Precision(**kwargs)
