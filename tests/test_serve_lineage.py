"""Model lineage: copy-on-refit, fingerprint chains, crash-safe commits.

The contracts a closed-loop server hangs off:

* :meth:`ModelLineage.propose` never touches the served models, and the
  candidate it builds is exactly what a cold build from the union of
  points would produce;
* :meth:`ModelLineage.commit` journals the epoch *before* swapping, so
  the journal append is the commit point -- replay after a crash lands
  on the same epoch and the same fingerprint;
* a torn final journal record (SIGKILL mid-commit) is dropped and
  truncated away, interior corruption refuses loudly, and a journal
  that no longer matches the base models fails instead of fabricating a
  lineage that never existed.
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import model_from_time_fn, points_from_time_fn
from repro.core.models import PiecewiseModel
from repro.core.point import MeasurementPoint
from repro.errors import PersistenceError
from repro.serve import LineageWAL, ModelLineage, fingerprint_models

pytestmark = [pytest.mark.serve, pytest.mark.feedback]

SIZES = [16, 128, 1024, 4096]


def make_models(speeds=(100.0, 200.0, 400.0)):
    """Noiseless piecewise models over constant-speed devices."""
    return [
        model_from_time_fn(PiecewiseModel, lambda d, s=s: d / s, SIZES)
        for s in speeds
    ]


def drift_points(speeds, factor, sizes=(48, 2048)):
    """Per-rank points from the same devices running ``factor``x slower."""
    return [
        points_from_time_fn(lambda d, s=s: factor * d / s, sizes)
        for s in speeds
    ]


class TestProposeCommit:
    def test_propose_leaves_parent_untouched(self):
        speeds = (100.0, 200.0, 400.0)
        lineage = ModelLineage(make_models(speeds))
        before_fp = lineage.fingerprint
        before_counts = [m.count for m in lineage.models]
        candidate = lineage.propose(drift_points(speeds, 2.0))
        assert lineage.fingerprint == before_fp
        assert [m.count for m in lineage.models] == before_counts
        assert candidate.parent_fp == before_fp
        assert candidate.fingerprint != before_fp

    def test_candidate_equals_cold_build_from_union(self):
        speeds = (100.0, 300.0)
        lineage = ModelLineage(make_models(speeds))
        new = drift_points(speeds, 2.0)
        candidate = lineage.propose(new)
        cold = []
        for speed, extra in zip(speeds, new):
            m = PiecewiseModel()
            m.update_many(
                points_from_time_fn(lambda d, s=speed: d / s, SIZES) + extra
            )
            cold.append(m)
        assert candidate.fingerprint == fingerprint_models(cold)

    def test_commit_advances_the_chain(self):
        speeds = (100.0, 200.0)
        lineage = ModelLineage(make_models(speeds))
        root_fp = lineage.fingerprint
        record = lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        assert lineage.epoch == 1
        assert record.epoch == 1
        assert record.parent_fp == root_fp
        assert lineage.parent_fp == root_fp
        assert lineage.fingerprint == record.child_fp
        assert record.point_count == 4  # 2 ranks x 2 points

    def test_rank_count_mismatch_refused(self):
        lineage = ModelLineage(make_models((100.0, 200.0)))
        with pytest.raises(ValueError, match="rank point sets"):
            lineage.propose(drift_points((100.0,), 2.0))

    def test_stale_candidate_refused(self):
        speeds = (100.0, 200.0)
        lineage = ModelLineage(make_models(speeds))
        stale = lineage.propose(drift_points(speeds, 2.0))
        lineage.commit(lineage.propose(drift_points(speeds, 3.0)))
        with pytest.raises(ValueError, match="stale candidate"):
            lineage.commit(stale)

    def test_rollback_never_advances_the_epoch(self):
        lineage = ModelLineage(make_models())
        fp = lineage.fingerprint
        lineage.rollback("regression gate said no")
        assert lineage.epoch == 0
        assert lineage.fingerprint == fp
        assert lineage.stats()["rollbacks"] == 1


class TestJournalReplay:
    def test_recovery_reproduces_epoch_and_fingerprint(self, tmp_path):
        speeds = (100.0, 200.0, 400.0)
        wal = tmp_path / "models.lineage"
        lineage = ModelLineage(make_models(speeds), wal_path=wal)
        lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        lineage.rollback("gate refused a later refit")
        lineage.commit(lineage.propose(drift_points(speeds, 2.5, (64, 512))))
        final_fp, final_epoch = lineage.fingerprint, lineage.epoch
        lineage.close()

        reborn = ModelLineage(make_models(speeds), wal_path=wal)
        assert reborn.recover() == 2
        assert reborn.epoch == final_epoch == 2
        assert reborn.fingerprint == final_fp
        assert reborn.rollbacks == 1

    def test_recovered_models_predict_like_the_originals(self, tmp_path):
        speeds = (100.0, 200.0)
        wal = tmp_path / "models.lineage"
        lineage = ModelLineage(make_models(speeds), wal_path=wal)
        lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        expected = [m.time(777.0) for m in lineage.models]
        lineage.close()
        reborn = ModelLineage(make_models(speeds), wal_path=wal)
        reborn.recover()
        assert [m.time(777.0) for m in reborn.models] == expected

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        speeds = (100.0, 200.0)
        wal = tmp_path / "models.lineage"
        lineage = ModelLineage(make_models(speeds), wal_path=wal)
        lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        epoch1_fp = lineage.fingerprint
        lineage.close()
        clean_size = wal.stat().st_size
        with open(wal, "a", encoding="utf-8") as handle:
            handle.write('{"magic": "fupermod-lineage-wal", "v": 1, "op": "ep')

        reborn = ModelLineage(make_models(speeds), wal_path=wal)
        assert reborn.recover() == 1
        assert reborn.epoch == 1
        assert reborn.fingerprint == epoch1_fp
        # The interrupted commit is physically gone: a third recovery
        # starts from a clean journal.
        assert wal.stat().st_size == clean_size

    def test_interior_corruption_refused(self, tmp_path):
        speeds = (100.0, 200.0)
        wal = tmp_path / "models.lineage"
        lineage = ModelLineage(make_models(speeds), wal_path=wal)
        lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        lineage.commit(lineage.propose(drift_points(speeds, 3.0, (64,))))
        lineage.close()
        lines = wal.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # damage a *middle* record
        wal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(PersistenceError):
            ModelLineage(make_models(speeds), wal_path=wal).recover()

    def test_wrong_base_models_refused(self, tmp_path):
        # The journal belongs to one root model set; replaying it over a
        # different one cannot reproduce the recorded parent fingerprint
        # and must fail instead of serving a fabricated lineage.
        speeds = (100.0, 200.0)
        wal = tmp_path / "models.lineage"
        lineage = ModelLineage(make_models(speeds), wal_path=wal)
        lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        lineage.close()
        with pytest.raises(PersistenceError):
            ModelLineage(make_models((111.0, 222.0)), wal_path=wal).recover()

    def test_epoch_gap_refused(self, tmp_path):
        speeds = (100.0, 200.0)
        wal = tmp_path / "models.lineage"
        lineage = ModelLineage(make_models(speeds), wal_path=wal)
        lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        lineage.close()
        record = json.loads(wal.read_text(encoding="utf-8").splitlines()[0])
        record["epoch"] = 5
        wal.write_text(json.dumps(record, sort_keys=True) + "\n",
                       encoding="utf-8")
        with pytest.raises(PersistenceError, match="lineage gap"):
            ModelLineage(make_models(speeds), wal_path=wal).recover()

    def test_missing_journal_is_empty(self, tmp_path):
        lineage = ModelLineage(
            make_models(), wal_path=tmp_path / "never-written.lineage"
        )
        assert lineage.recover() == 0
        assert lineage.epoch == 0


class TestWalUnit:
    def test_replay_roundtrip(self, tmp_path):
        wal = LineageWAL(tmp_path / "w.lineage")
        points = [[MeasurementPoint(d=10, t=0.5)], []]
        wal.append_epoch(1, "fp-parent", "fp-child", points)
        wal.append_rollback(1, "fp-child", "worse than parent")
        wal.close()
        ops, _valid, dropped = LineageWAL(tmp_path / "w.lineage").replay()
        assert not dropped
        assert [op["op"] for op in ops] == ["epoch", "rollback"]
        assert ops[0]["points"] == [[[10, 0.5]], []]
        assert ops[1]["reason"] == "worse than parent"

    def test_foreign_file_refused(self, tmp_path):
        path = tmp_path / "w.lineage"
        path.write_text('{"not": "a lineage record"}\n{"x": 1}\n',
                        encoding="utf-8")
        with pytest.raises(PersistenceError, match="not a lineage-WAL"):
            LineageWAL(path).replay()
