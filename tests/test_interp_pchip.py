"""Tests for the from-scratch PCHIP (Fritsch--Carlson) interpolation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpolationError
from repro.interp.pchip import PchipSpline


class TestConstruction:
    def test_needs_two_distinct_points(self):
        with pytest.raises(InterpolationError):
            PchipSpline([(1.0, 2.0)])
        with pytest.raises(InterpolationError):
            PchipSpline([(1.0, 2.0), (1.0, 3.0)])

    def test_two_points_is_line(self):
        f = PchipSpline([(0.0, 0.0), (4.0, 8.0)])
        assert f(2.0) == pytest.approx(4.0)
        assert f.derivative(1.0) == pytest.approx(2.0)

    def test_duplicates_merged(self):
        f = PchipSpline([(0.0, 0.0), (1.0, 2.0), (1.0, 4.0)])
        assert f(1.0) == pytest.approx(3.0)


class TestInterpolation:
    def test_passes_through_knots(self):
        pts = [(0.0, 1.0), (1.0, 3.0), (2.5, 2.0), (4.0, 5.0)]
        f = PchipSpline(pts, min_y=-100.0)
        for x, y in pts:
            assert f(x) == pytest.approx(y, abs=1e-12)

    def test_linear_reproduction(self):
        f = PchipSpline([(x, 3.0 * x + 1.0) for x in [0.0, 1.0, 2.0, 5.0]],
                        min_y=-1e9)
        for x in [0.5, 1.5, 4.0]:
            assert f(x) == pytest.approx(3.0 * x + 1.0, rel=1e-9)

    def test_monotone_data_gives_monotone_interpolant(self):
        # The defining property: increasing knots -> increasing spline.
        pts = [(0.0, 0.0), (1.0, 0.1), (2.0, 0.2), (3.0, 5.0), (4.0, 5.1)]
        f = PchipSpline(pts, min_y=-1e9)
        xs = np.linspace(0.0, 4.0, 400)
        vals = [f(float(x)) for x in xs]
        for a, b in zip(vals, vals[1:]):
            assert b >= a - 1e-12

    def test_no_overshoot_on_step_data(self):
        # Where Akima and cubic splines may dip below/above, PCHIP stays
        # within the data range on each interval.
        pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 1.0), (3.0, 1.0)]
        f = PchipSpline(pts, min_y=-1e9)
        for x in np.linspace(0.0, 3.0, 200):
            assert -1e-12 <= f(float(x)) <= 1.0 + 1e-12

    def test_local_extremum_preserved(self):
        # A peak in the data stays a peak: slope is zero at the turn.
        pts = [(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)]
        f = PchipSpline(pts, min_y=-1e9)
        assert f.derivative(1.0) == pytest.approx(0.0, abs=1e-12)
        for x in np.linspace(0.0, 2.0, 100):
            assert f(float(x)) <= 2.0 + 1e-12

    def test_c1_continuity(self):
        pts = [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0), (3.0, 4.5), (4.0, 7.0)]
        f = PchipSpline(pts, min_y=-1e9)
        for knot in [1.0, 2.0, 3.0]:
            left = f.derivative(knot - 1e-9)
            right = f.derivative(knot + 1e-9)
            assert left == pytest.approx(right, rel=1e-5, abs=1e-7)

    def test_derivative_matches_fd(self):
        pts = [(float(x), math.log1p(x)) for x in range(8)]
        f = PchipSpline(pts, min_y=-1e9)
        for x in [0.6, 2.4, 5.5]:
            h = 1e-6
            fd = (f(x + h) - f(x - h)) / (2 * h)
            assert f.derivative(x) == pytest.approx(fd, rel=1e-4)

    def test_matches_scipy_pchip(self):
        scipy_interp = pytest.importorskip("scipy.interpolate")
        xs = [0.0, 1.0, 2.0, 3.5, 5.0, 8.0]
        ys = [0.0, 0.4, 0.5, 3.0, 3.1, 9.0]
        ours = PchipSpline(list(zip(xs, ys)), min_y=-1e9)
        theirs = scipy_interp.PchipInterpolator(xs, ys)
        for x in np.linspace(0.0, 8.0, 50):
            assert ours(float(x)) == pytest.approx(float(theirs(x)), rel=1e-9, abs=1e-9)


@st.composite
def _monotone_points(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    xs = sorted(
        float(x)
        for x in draw(
            st.lists(
                st.integers(min_value=0, max_value=10_000),
                min_size=n, max_size=n, unique=True,
            )
        )
    )
    increments = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=n, max_size=n
        )
    )
    ys = []
    acc = 0.0
    for inc in increments:
        acc += inc
        ys.append(acc)
    return list(zip(xs, ys))


class TestProperties:
    @given(_monotone_points())
    @settings(max_examples=80)
    def test_monotone_preservation_property(self, pts):
        f = PchipSpline(pts, min_y=-1e9)
        lo = pts[0][0]
        hi = pts[-1][0]
        xs = np.linspace(lo, hi, 97)
        vals = [f(float(x)) for x in xs]
        for a, b in zip(vals, vals[1:]):
            assert b >= a - 1e-7 * max(1.0, abs(a))

    @given(_monotone_points())
    @settings(max_examples=50)
    def test_interpolation_property(self, pts):
        f = PchipSpline(pts, min_y=-1e9)
        for x, y in pts:
            assert f(x) == pytest.approx(y, rel=1e-7, abs=1e-7)
