"""Tests for isotonic regression (pool adjacent violators)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpolationError
from repro.interp.isotonic import isotonic_increasing


class TestIsotonicIncreasing:
    def test_empty(self):
        assert isotonic_increasing([]) == []

    def test_already_monotone_unchanged(self):
        ys = [1.0, 2.0, 2.0, 5.0]
        assert isotonic_increasing(ys) == ys

    def test_single_violation_pooled(self):
        assert isotonic_increasing([1.0, 3.0, 2.0]) == [1.0, 2.5, 2.5]

    def test_full_reversal_pools_to_mean(self):
        out = isotonic_increasing([3.0, 2.0, 1.0])
        assert out == [2.0, 2.0, 2.0]

    def test_weights_shift_pooled_mean(self):
        # Heavy first value dominates the pooled block.
        out = isotonic_increasing([3.0, 1.0], weights=[3.0, 1.0])
        assert out == [2.5, 2.5]

    def test_weight_validation(self):
        with pytest.raises(InterpolationError):
            isotonic_increasing([1.0, 2.0], weights=[1.0])
        with pytest.raises(InterpolationError):
            isotonic_increasing([1.0, 2.0], weights=[1.0, 0.0])

    def test_classic_example(self):
        ys = [1, 2, 6, 2, 3, 7, 8]
        out = isotonic_increasing([float(y) for y in ys])
        # Block (6,2,3) pools to 11/3.
        assert out[2] == pytest.approx(11.0 / 3.0)
        assert out[2] == out[3] == out[4]
        for a, b in zip(out, out[1:]):
            assert b >= a

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=60))
    @settings(max_examples=100)
    def test_output_non_decreasing_property(self, ys):
        out = isotonic_increasing(ys)
        assert len(out) == len(ys)
        for a, b in zip(out, out[1:]):
            assert b >= a - 1e-9 * max(1.0, abs(a))

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_weighted_mean_preserved_property(self, ys):
        # PAVA preserves the (weighted) mean of the data.
        out = isotonic_increasing(ys)
        assert sum(out) == pytest.approx(sum(ys), rel=1e-9, abs=1e-6)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=30))
    @settings(max_examples=60)
    def test_idempotent_property(self, ys):
        once = isotonic_increasing(ys)
        twice = isotonic_increasing(once)
        assert twice == pytest.approx(once)
