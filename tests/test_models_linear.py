"""Tests for the Qilin-style linear analytical model."""

from __future__ import annotations

import pytest

from repro.core.models import LinearModel
from repro.core.partition.numerical import partition_numerical
from repro.core.point import MeasurementPoint
from repro.errors import ModelError

from tests.conftest import model_from_time_fn, points_from_time_fn


class TestLinearModel:
    def test_single_point_pure_bandwidth(self):
        m = LinearModel()
        m.update(MeasurementPoint(d=100, t=2.0))
        assert m.coefficients == (0.0, pytest.approx(0.02))
        assert m.time(50) == pytest.approx(1.0)

    def test_exact_fit_of_affine_times(self):
        m = model_from_time_fn(LinearModel, lambda d: 0.5 + 0.01 * d, [10, 100, 1000])
        a, b = m.coefficients
        assert a == pytest.approx(0.5, rel=1e-9)
        assert b == pytest.approx(0.01, rel=1e-9)
        assert m.time(500) == pytest.approx(5.5)

    def test_least_squares_on_noisy_points(self):
        pts = [
            MeasurementPoint(d=d, t=0.2 + 0.05 * d + noise)
            for d, noise in [(10, 0.01), (20, -0.01), (30, 0.02), (40, -0.02)]
        ]
        m = LinearModel()
        m.update_many(pts)
        a, b = m.coefficients
        assert a == pytest.approx(0.2, abs=0.1)
        assert b == pytest.approx(0.05, rel=0.1)

    def test_negative_intercept_clamped(self):
        m = model_from_time_fn(LinearModel, lambda d: max(0.01 * d - 0.5, 1e-6),
                               [100, 200, 400])
        a, _b = m.coefficients
        assert a >= 0.0

    def test_non_positive_slope_rejected(self):
        # Rebuilds are lazy: the degenerate fit surfaces at first evaluation.
        m = LinearModel()
        m.update(MeasurementPoint(d=10, t=5.0))
        m.update(MeasurementPoint(d=1000, t=1.0))
        with pytest.raises(ModelError):
            m.time(100)

    def test_time_at_zero(self):
        m = model_from_time_fn(LinearModel, lambda d: 1.0 + 0.1 * d, [10, 20])
        assert m.time(0) == 0.0

    def test_derivative_constant(self):
        m = model_from_time_fn(LinearModel, lambda d: 1.0 + 0.1 * d, [10, 20])
        assert m.time_derivative(5) == pytest.approx(0.1)
        assert m.time_derivative(5000) == pytest.approx(0.1)

    def test_usable_by_numerical_partitioner(self):
        models = [
            model_from_time_fn(LinearModel, lambda d, s=s: 0.1 + d / s, [100, 1000, 5000])
            for s in (40.0, 10.0)
        ]
        dist = partition_numerical(5000, models)
        assert dist.total == 5000
        t0 = models[0].time(dist.sizes[0])
        t1 = models[1].time(dist.sizes[1])
        assert abs(t0 - t1) <= 0.01 * max(t0, t1)

    def test_fails_on_cliff_data(self):
        """The paper's point: linear models misfit memory cliffs badly."""
        cliff = lambda d: d / 1000.0 if d <= 1000 else 1.0 + (d - 1000) / 100.0  # noqa: E731
        m = model_from_time_fn(LinearModel, cliff, [100, 500, 1000, 1500, 2000])
        # Linear fit badly overestimates the fast region's time.
        assert m.time(500) > 2.0 * cliff(500)

    def test_registered(self):
        from repro.core.registry import available_models

        assert "linear" in available_models()
