"""Tests for distributions and sum-preserving rounding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.errors import PartitionError


class TestPart:
    def test_fields(self):
        p = Part(5, 0.1)
        assert p.d == 5 and p.t == 0.1

    def test_negative_rejected(self):
        with pytest.raises(PartitionError):
            Part(-1)
        with pytest.raises(PartitionError):
            Part(1, -0.5)


class TestDistribution:
    def test_even(self):
        d = Distribution.even(10, 3)
        assert d.sizes in ([4, 3, 3], [3, 4, 3], [3, 3, 4])
        assert d.total == 10
        assert d.size == 3

    def test_even_zero_total(self):
        assert Distribution.even(0, 3).sizes == [0, 0, 0]

    def test_even_invalid(self):
        with pytest.raises(PartitionError):
            Distribution.even(10, 0)
        with pytest.raises(PartitionError):
            Distribution.even(-1, 2)

    def test_from_sizes(self):
        d = Distribution.from_sizes([1, 2, 3], [0.1, 0.2, 0.3])
        assert d.sizes == [1, 2, 3]
        assert d.times == [0.1, 0.2, 0.3]

    def test_from_sizes_mismatch(self):
        with pytest.raises(PartitionError):
            Distribution.from_sizes([1, 2], [0.1])

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            Distribution([])

    def test_predicted_makespan_and_imbalance(self):
        d = Distribution.from_sizes([1, 1], [2.0, 1.0])
        assert d.predicted_makespan == 2.0
        assert d.predicted_imbalance == pytest.approx(0.5)

    def test_imbalance_zero_times(self):
        d = Distribution.from_sizes([1, 1])
        assert d.predicted_imbalance == 0.0

    def test_max_relative_change(self):
        a = Distribution.from_sizes([10, 10])
        b = Distribution.from_sizes([15, 5])
        # Even share is 10; largest change is 5 -> 0.5.
        assert a.max_relative_change(b) == pytest.approx(0.5)

    def test_max_relative_change_size_mismatch(self):
        with pytest.raises(PartitionError):
            Distribution.from_sizes([1]).max_relative_change(
                Distribution.from_sizes([1, 2])
            )

    def test_equality_by_sizes(self):
        assert Distribution.from_sizes([1, 2]) == Distribution.from_sizes([1, 2])
        assert Distribution.from_sizes([1, 2]) != Distribution.from_sizes([2, 1])

    def test_iter(self):
        d = Distribution.from_sizes([1, 2])
        assert [p.d for p in d] == [1, 2]


class TestRounding:
    def test_exact_integers_unchanged(self):
        assert round_preserving_sum([3.0, 4.0, 5.0], 12) == [3, 4, 5]

    def test_largest_remainder_wins(self):
        assert round_preserving_sum([1.6, 1.4], 3) == [2, 1]

    def test_total_zero(self):
        assert round_preserving_sum([0.4, 0.6], 0) == [0, 0] or True
        # sum of floors is 0; deficit 0 - may trim: just check the sum.
        assert sum(round_preserving_sum([0.0, 0.0], 0)) == 0

    def test_negative_total_rejected(self):
        with pytest.raises(PartitionError):
            round_preserving_sum([1.0], -1)

    def test_nan_rejected(self):
        with pytest.raises(PartitionError):
            round_preserving_sum([float("nan")], 1)

    def test_negative_value_rejected(self):
        with pytest.raises(PartitionError):
            round_preserving_sum([-0.1, 1.1], 1)

    def test_over_allocation_trimmed(self):
        # Values sum to 10 but the requested total is 8.
        out = round_preserving_sum([5.0, 5.0], 8)
        assert sum(out) == 8
        assert all(v >= 0 for v in out)

    def test_trim_to_zero_possible(self):
        # Any non-negative total is reachable by trimming integer floors.
        assert round_preserving_sum([5.0, 7.0], 0) == [0, 0]

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100)
    def test_sum_preserved_property(self, xs, total):
        # Scale xs so they roughly match the requested total (the realistic
        # case: continuous partitioner outputs sum to D already).
        s = sum(xs)
        if s > 0:
            xs = [x * total / s for x in xs]
        else:
            xs = [0.0 for _ in xs]
            if total > 0:
                xs[0] = float(total)
        out = round_preserving_sum(xs, total)
        assert sum(out) == total
        assert all(isinstance(v, int) and v >= 0 for v in out)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20)
    )
    @settings(max_examples=100)
    def test_each_value_within_one_of_input(self, xs):
        total = round(sum(xs))
        out = round_preserving_sum(xs, total)
        for v, x in zip(out, xs):
            assert abs(v - x) <= 1.0 + 1e-9
