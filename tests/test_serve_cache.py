"""PlanCache semantics: LRU, TTL, byte budget, counters, persistence."""

from __future__ import annotations

import threading

import pytest

from repro.core.partition.cert import ConvergenceCert
from repro.errors import PartitionError, PersistenceError
from repro.io.plans import load_plan_cache, save_plan_cache
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanResult

pytestmark = pytest.mark.serve


def plan(key: str, total: int = 100, with_cert: bool = True) -> PlanResult:
    """A small synthetic plan for cache tests."""
    cert = (
        ConvergenceCert("geometric", True, 7, 200, 1e-11, 1e-10, "")
        if with_cert
        else None
    )
    return PlanResult(
        key=key,
        total=total,
        sizes=(total // 2, total - total // 2),
        times=(0.5, 0.5),
        algorithm="geometric",
        cert=cert,
        compute_seconds=0.01,
    )


class FakeClock:
    """Deterministic monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestLRU:
    """Eviction order and counters."""

    def test_hit_and_miss_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", plan("a"), "m1")
        assert cache.get("a").key == "a"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.inserts) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_prefers_stale_entries(self):
        cache = PlanCache(capacity=2)
        cache.put("a", plan("a"), "m1")
        cache.put("b", plan("b"), "m1")
        cache.get("a")  # refresh "a"; "b" is now least recent
        cache.put("c", plan("c"), "m1")
        assert "a" in cache and "c" in cache
        assert cache.get("b") is None
        assert cache.stats().evictions == 1

    def test_overwrite_same_key_does_not_grow(self):
        cache = PlanCache(capacity=2)
        cache.put("a", plan("a", 100), "m1")
        cache.put("a", plan("a", 100), "m1")
        assert len(cache) == 1
        assert cache.stats().evictions == 0

    def test_byte_budget_evicts(self):
        one_entry = len(
            __import__("json").dumps(plan("x").to_dict(),
                                     separators=(",", ":"))
        )
        cache = PlanCache(capacity=100, max_bytes=2 * one_entry + 10)
        for key in ("a", "b", "c", "d"):
            cache.put(key, plan(key), "m1")
        assert len(cache) <= 2
        assert cache.stats().evictions >= 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
        with pytest.raises(ValueError):
            PlanCache(ttl=0.0)
        with pytest.raises(ValueError):
            PlanCache(max_bytes=-1)


class TestTTL:
    """Lazy expiry under an injected clock."""

    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("a", plan("a"), "m1")
        clock.now = 9.0
        assert cache.get("a") is not None
        clock.now = 11.0
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.entries == 0

    def test_nearest_skips_expired(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("old", plan("old", total=100), "m1")
        clock.now = 5.0
        cache.put("new", plan("new", total=500), "m1")
        clock.now = 11.0  # "old" expired, "new" alive
        near = cache.nearest("m1", 120)
        assert near is not None and near.key == "new"

    def test_nearest_and_get_agree_on_expiry(self):
        """Regression: every lookup path shares one TTL gate.

        ``nearest`` must never warm-start from an entry ``get`` would
        refuse, and both must evict (and count) the expired entry
        identically whichever runs first.
        """
        for first_lookup in ("get", "nearest"):
            clock = FakeClock()
            cache = PlanCache(capacity=4, ttl=10.0, clock=clock)
            cache.put("a", plan("a", total=100), "m1")
            clock.now = 15.0
            if first_lookup == "get":
                assert cache.get("a") is None
                assert cache.nearest("m1", 100) is None
            else:
                assert cache.nearest("m1", 100) is None
                assert cache.get("a") is None
            stats = cache.stats()
            # Exactly one expiration however the lookups are ordered.
            assert stats.expirations == 1, first_lookup
            assert stats.entries == 0

    def test_contains_agrees_with_get_on_expiry(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("a", plan("a"), "m1")
        clock.now = 11.0
        assert "a" not in cache
        assert cache.stats().expirations == 1
        assert cache.get("a") is None  # and the state left behind agrees
        assert cache.stats().expirations == 1


class TestNearest:
    """The warm-start lookup."""

    def test_picks_closest_total_for_same_models(self):
        cache = PlanCache(capacity=8)
        cache.put("a", plan("a", total=100), "m1")
        cache.put("b", plan("b", total=1000), "m1")
        cache.put("c", plan("c", total=5000), "m2")
        near = cache.nearest("m1", 900)
        assert near is not None and near.key == "b"

    def test_excludes_requested_key(self):
        cache = PlanCache(capacity=8)
        cache.put("a", plan("a", total=100), "m1")
        assert cache.nearest("m1", 100, exclude="a") is None

    def test_no_entry_for_model_set(self):
        cache = PlanCache(capacity=8)
        cache.put("a", plan("a"), "m1")
        assert cache.nearest("m-other", 100) is None

    def test_eviction_cleans_secondary_index(self):
        cache = PlanCache(capacity=1)
        cache.put("a", plan("a", total=100), "m1")
        cache.put("b", plan("b", total=200), "m2")  # evicts "a"
        assert cache.nearest("m1", 100) is None


class TestConcurrency:
    """Interleaved access from many threads stays consistent."""

    def test_parallel_get_put(self):
        cache = PlanCache(capacity=16)
        errors = []

        def worker(tid: int) -> None:
            try:
                for i in range(200):
                    key = f"k{(tid + i) % 24}"
                    if cache.get(key) is None:
                        cache.put(key, plan(key, total=100 + tid), "m1")
                    cache.nearest("m1", 100 + i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.entries <= 16
        assert stats.hits + stats.misses == 8 * 200

    def test_save_while_serving_never_tears_the_snapshot(self, tmp_path):
        """Persisting under concurrent inserts yields loadable snapshots.

        Every snapshot written while other threads insert must be a
        consistent document -- loadable, internally coherent (each entry
        round-trips), never a torn or half-written file.
        """
        cache = PlanCache(capacity=64)
        cache.put("seed", plan("seed"), "m1")
        path = tmp_path / "plans.json"
        stop = threading.Event()
        errors = []

        def inserter(tid: int) -> None:
            i = 0
            while not stop.is_set():
                key = f"t{tid}-{i}"
                cache.put(key, plan(key, total=100 + i), "m1")
                cache.get(key)
                i += 1

        def saver() -> None:
            try:
                for _ in range(25):
                    saved = save_plan_cache(path, cache)
                    fresh = PlanCache(capacity=64)
                    loaded = load_plan_cache(path, fresh)
                    assert loaded == saved
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=inserter, args=(t,))
                   for t in range(4)]
        save_thread = threading.Thread(target=saver)
        for t in threads:
            t.start()
        save_thread.start()
        save_thread.join(timeout=60.0)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        assert not errors
        # The final snapshot on disk is fully loadable too.
        final = PlanCache(capacity=64)
        assert load_plan_cache(path, final) >= 1

    def test_durable_cache_concurrent_puts_recover_consistently(
        self, tmp_path
    ):
        """Journaled inserts from many threads replay without loss."""
        from repro.serve.wal import DurablePlanCache

        cache = DurablePlanCache(tmp_path / "plans.json", capacity=256)
        errors = []

        def worker(tid: int) -> None:
            try:
                for i in range(20):
                    key = f"t{tid}-{i}"
                    cache.put(key, plan(key, total=100 + i), f"m{tid}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        cache.wal.close()  # crash, not close: no compaction
        recovered = DurablePlanCache(tmp_path / "plans.json", capacity=256)
        recovered.recover()
        assert len(recovered) == 80
        assert recovered.to_payload() == cache.to_payload()


class TestPersistence:
    """Round trips through repro.io.plans."""

    def test_roundtrip_preserves_entries_and_certs(self, tmp_path):
        cache = PlanCache(capacity=8)
        cache.put("a", plan("a", total=100), "m1")
        cache.put("b", plan("b", total=200, with_cert=False), "m1")
        path = tmp_path / "plans.json"
        assert save_plan_cache(path, cache) == 2
        fresh = PlanCache(capacity=8)
        assert load_plan_cache(path, fresh) == 2
        got = fresh.get("a")
        assert got.sizes == (50, 50)
        assert got.cert is not None and got.cert.iterations == 7
        assert fresh.get("b").cert is None
        assert fresh.nearest("m1", 150) is not None

    def test_fingerprint_version_mismatch_loads_empty(self, tmp_path):
        cache = PlanCache(capacity=8)
        cache.put("a", plan("a"), "m1")
        path = tmp_path / "plans.json"
        save_plan_cache(path, cache)
        doc = path.read_text()
        path.write_text(doc.replace('"fp1"', '"fp0"'))
        fresh = PlanCache(capacity=8)
        assert load_plan_cache(path, fresh) == 0
        assert len(fresh) == 0

    def test_corrupt_file_raises_persistence_error(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_plan_cache(path, PlanCache())
        path.write_text('{"format": "something-else"}')
        with pytest.raises(PersistenceError, match="not a fupermod"):
            load_plan_cache(path, PlanCache())

    def test_malformed_entry_raises(self, tmp_path):
        cache = PlanCache(capacity=8)
        cache.put("a", plan("a"), "m1")
        path = tmp_path / "plans.json"
        save_plan_cache(path, cache)
        doc = path.read_text().replace('"sizes": [', '"sizes": ["x", ')
        path.write_text(doc)
        with pytest.raises((PartitionError, PersistenceError)):
            load_plan_cache(path, PlanCache())
