"""Fingerprint stability: the contract the plan cache is built on."""

from __future__ import annotations

import pytest

from tests.conftest import model_from_time_fn
from repro.core.models import (
    AkimaModel,
    ConstantModel,
    LinearModel,
    PchipModel,
    PiecewiseModel,
    SegmentedLinearModel,
)
from repro.core.point import MeasurementPoint
from repro.errors import FuPerModError
from repro.serve.fingerprint import (
    canonical,
    digest,
    fingerprint_model,
    fingerprint_models,
    fingerprint_request,
)

pytestmark = pytest.mark.serve

MODEL_CLASSES = [
    ConstantModel,
    PiecewiseModel,
    AkimaModel,
    LinearModel,
    PchipModel,
    SegmentedLinearModel,
]

SIZES = [16, 64, 256, 1024]


def _time_fn(d):
    return d / 150.0 + 1e-4


class TestCanonical:
    """The canonical encoding underlying every digest."""

    def test_floats_bit_exact(self):
        assert canonical(0.1) == repr(0.1)
        assert canonical(0.1 + 0.2) != canonical(0.3)

    def test_negative_zero_distinguished(self):
        assert canonical(-0.0) != canonical(0.0)

    def test_bool_not_confused_with_int(self):
        assert canonical(True) != canonical(1)

    def test_mapping_order_insensitive(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_numpy_scalars_match_python(self):
        np = pytest.importorskip("numpy")
        assert canonical(np.float64(0.25)) == canonical(0.25)
        assert canonical(np.int64(7)) == canonical(7)

    def test_unsupported_type_raises(self):
        with pytest.raises(FuPerModError, match="canonicalise"):
            canonical(object())

    def test_digest_sensitive_to_part_boundaries(self):
        # ("ab", "c") and ("a", "bc") must not collide.
        assert digest("ab", "c") != digest("a", "bc")


class TestModelFingerprints:
    """Fingerprints follow fitted parameters, not object identity."""

    @pytest.mark.parametrize("model_cls", MODEL_CLASSES)
    def test_same_fit_same_fingerprint(self, model_cls):
        a = model_from_time_fn(model_cls, _time_fn, SIZES)
        b = model_from_time_fn(model_cls, _time_fn, SIZES)
        assert fingerprint_model(a) == fingerprint_model(b)

    @pytest.mark.parametrize("model_cls", MODEL_CLASSES)
    def test_different_fit_different_fingerprint(self, model_cls):
        a = model_from_time_fn(model_cls, _time_fn, SIZES)
        b = model_from_time_fn(model_cls, lambda d: d / 75.0 + 1e-4, SIZES)
        assert fingerprint_model(a) != fingerprint_model(b)

    def test_families_never_collide(self):
        fps = {
            fingerprint_model(model_from_time_fn(cls, _time_fn, SIZES))
            for cls in MODEL_CLASSES
        }
        assert len(fps) == len(MODEL_CLASSES)

    def test_fingerprint_resolves_lazy_fit(self):
        model = PiecewiseModel()
        model.update_many(
            [MeasurementPoint(d=d, t=_time_fn(d), reps=1, ci=0.0)
             for d in SIZES]
        )
        # No evaluation has happened yet; fingerprinting must force the
        # fit rather than hash an unfitted placeholder.
        fp_lazy = fingerprint_model(model)
        model.time(100)
        assert fingerprint_model(model) == fp_lazy

    def test_refit_changes_fingerprint(self):
        model = model_from_time_fn(PiecewiseModel, _time_fn, SIZES)
        before = fingerprint_model(model)
        model.update(MeasurementPoint(d=2048, t=_time_fn(2048) * 2, reps=1,
                                      ci=0.0))
        assert fingerprint_model(model) != before

    def test_unfingerprintable_object_raises(self):
        with pytest.raises(FuPerModError, match="fingerprint_state"):
            fingerprint_model(object())


class TestModelSetAndRequest:
    """Set and request fingerprints."""

    def test_rank_order_matters(self):
        fast = model_from_time_fn(ConstantModel, lambda d: d / 200.0, [64])
        slow = model_from_time_fn(ConstantModel, lambda d: d / 50.0, [64])
        assert fingerprint_models([fast, slow]) != fingerprint_models(
            [slow, fast]
        )

    def test_request_varies_with_every_field(self):
        base = fingerprint_request("mfp", 1000, "geometric", {})
        assert fingerprint_request("mfp2", 1000, "geometric", {}) != base
        assert fingerprint_request("mfp", 1001, "geometric", {}) != base
        assert fingerprint_request("mfp", 1000, "numerical", {}) != base
        assert fingerprint_request(
            "mfp", 1000, "geometric", {"probes": 4}
        ) != base

    def test_request_option_order_insensitive(self):
        a = fingerprint_request("m", 10, "geometric", {"a": 1, "b": 2.5})
        b = fingerprint_request("m", 10, "geometric", {"b": 2.5, "a": 1})
        assert a == b
