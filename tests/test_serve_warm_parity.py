"""Warm-start parity: warm solves are bit-identical to cold ones.

The plan cache substitutes warm-started results for cold ones, so the
warm path must be *indistinguishable* in output: for every registered
partitioner and every model family, a solve seeded with a
:class:`~repro.core.partition.warm.WarmStart` from a nearby plan returns
exactly the same integer shares as a cold solve, with a convergence
certificate that took no more iterations.  A separate case pins down that
the iteration saving is real (strictly fewer iterations for the
single-probe bisection), and that a *misleading* hint still cannot change
the answer.
"""

from __future__ import annotations

import inspect

import pytest

from tests.conftest import model_from_time_fn
from repro.core.models import (
    AkimaModel,
    ConstantModel,
    LinearModel,
    PchipModel,
    PiecewiseModel,
    SegmentedLinearModel,
)
from repro.core.partition.dynamic import DynamicPartitioner
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.warm import WarmStart, warm_start_from
from repro.core.registry import available_partitioners, partitioner

pytestmark = pytest.mark.serve

MODEL_FAMILIES = {
    "constant": ConstantModel,
    "piecewise": PiecewiseModel,
    "akima": AkimaModel,
    "linear": LinearModel,
    "pchip": PchipModel,
    "segmented": SegmentedLinearModel,
}

SIZES = [16, 64, 256, 1024, 4096, 16384]

# Three devices with different nonlinearities, so the equal-time solution
# is not a trivial proportional split.
TIME_FNS = [
    lambda d: d / 300.0 + 1e-4,
    lambda d: d / 150.0 + 5e-4,
    lambda d: d / 80.0 + (d / 9000.0) ** 2 + 2e-4,
]


def build_models(model_cls):
    """One fitted model per synthetic device."""
    return [model_from_time_fn(model_cls, fn, SIZES) for fn in TIME_FNS]


def registered_partitioners():
    """All registry entries (the built-ins plus any extensions)."""
    return available_partitioners()


def solve(name, total, models, **kwargs):
    """Run a registered partitioner, forwarding kwargs it understands."""
    fn = partitioner(name)
    params = inspect.signature(fn).parameters
    usable = {k: v for k, v in kwargs.items() if k in params}
    return fn(total, models, **usable)


class TestWarmEqualsCold:
    """The core parity matrix: partitioner x model family."""

    @pytest.mark.parametrize("name", registered_partitioners())
    @pytest.mark.parametrize("family", sorted(MODEL_FAMILIES))
    def test_parity_and_iteration_bound(self, name, family):
        models = build_models(MODEL_FAMILIES[family])
        seed_total, total = 9_000, 10_000
        seed = solve(name, seed_total, models)
        warm = warm_start_from(seed)

        cold = solve(name, total, models)
        warmed = solve(name, total, models, warm_start=warm)

        assert warmed.sizes == cold.sizes, (
            f"{name} x {family}: warm start changed the answer"
        )
        cold_cert = getattr(cold, "convergence", None)
        warm_cert = getattr(warmed, "convergence", None)
        if cold_cert is not None and warm_cert is not None:
            assert warm_cert.iterations <= cold_cert.iterations, (
                f"{name} x {family}: warm start took more iterations "
                f"({warm_cert.iterations} > {cold_cert.iterations})"
            )

    @pytest.mark.parametrize("name", registered_partitioners())
    def test_parity_across_totals(self, name):
        models = build_models(PiecewiseModel)
        seed = solve(name, 5_000, models)
        warm = warm_start_from(seed)
        for total in (500, 4_999, 5_001, 20_000, 100_000):
            cold = solve(name, total, models)
            warmed = solve(name, total, models, warm_start=warm)
            assert warmed.sizes == cold.sizes, (name, total)


class TestIterationSavings:
    """The warm start must demonstrably cut iterations, not just tie."""

    def test_single_probe_bisection_saves_iterations(self):
        models = build_models(PiecewiseModel)
        seed = partition_geometric(9_800, models, probes=1)
        warm = warm_start_from(seed)
        cold = partition_geometric(10_000, models, probes=1)
        warmed = partition_geometric(10_000, models, probes=1,
                                     warm_start=warm)
        assert warmed.sizes == cold.sizes
        assert warmed.convergence.iterations < cold.convergence.iterations

    def test_identical_repeat_collapses_bracket(self):
        models = build_models(AkimaModel)
        first = partition_geometric(10_000, models, probes=1)
        warm = warm_start_from(first)
        again = partition_geometric(10_000, models, probes=1,
                                    warm_start=warm)
        assert again.sizes == first.sizes
        assert again.convergence.iterations <= first.convergence.iterations


class TestMisleadingHints:
    """A bad hint may cost speed, never correctness."""

    def test_hint_from_unrelated_models_is_harmless(self):
        models = build_models(PiecewiseModel)
        # A hint whose level is wildly wrong for these models.
        for level in (1e-9, 1e6):
            warm = WarmStart(total=10, level=level, sizes=(4, 3, 3))
            cold = partition_geometric(10_000, models)
            warmed = partition_geometric(10_000, models, warm_start=warm)
            assert warmed.sizes == cold.sizes

    def test_invalid_warm_start_rejected_at_construction(self):
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            WarmStart(total=0, level=1.0, sizes=(1,))
        with pytest.raises(PartitionError):
            WarmStart(total=10, level=0.0, sizes=(1,))
        with pytest.raises(PartitionError):
            WarmStart(total=10, level=1.0, sizes=(-1, 11))


class TestDynamicInitial:
    """The dynamic loop's warm seam: start from a served distribution."""

    def test_initial_distribution_seeds_first_iterate(self):
        from repro.core.point import MeasurementPoint

        models_a = [PiecewiseModel() for _ in range(3)]
        base = build_models(PiecewiseModel)

        def measure(sizes):
            return [
                MeasurementPoint(d=d, t=fn(d), reps=1, ci=0.0)
                if d else None
                for fn, d in zip(TIME_FNS, sizes)
            ]

        initial = partition_geometric(3_000, base)
        dyn = DynamicPartitioner(
            partition_geometric, models_a, 3_000, measure, eps=0.05,
            initial=initial,
        )
        assert dyn.dist.sizes == initial.sizes
        result = dyn.run()
        assert sum(result.final.sizes) == 3_000

    def test_initial_total_mismatch_rejected(self):
        from repro.errors import PartitionError

        models = [PiecewiseModel() for _ in range(3)]
        initial = partition_geometric(2_000, build_models(PiecewiseModel))
        with pytest.raises(PartitionError, match="total"):
            DynamicPartitioner(
                partition_geometric, models, 3_000,
                lambda dist: [0.1, 0.1, 0.1], initial=initial,
            )
