"""Client connection reuse: one TCP connect per thread, ever.

The pre-fleet HTTP transport paid a TCP handshake per request; the
keep-alive transport must not.  ``connections_opened`` is the witness:
it counts real connects, so N requests from one thread leave it at 1,
and a server restart costs exactly one reconnect.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import AioFrontend, KeepAliveTransport, PlanClient, PlanServer
from repro.serve.client import http_transport
from repro.serve.shard import ShardClient

from tests.test_serve_server import make_models

pytestmark = pytest.mark.serve


@pytest.fixture
def aio_url():
    with PlanServer(make_models()) as server:
        with AioFrontend(server, port=0) as frontend:
            yield frontend.url


class TestKeepAliveTransport:
    def test_one_connection_many_requests(self, aio_url):
        transport = KeepAliveTransport(aio_url)
        client = PlanClient(transport)
        try:
            for _ in range(20):
                result = client.plan(1000)
                assert sum(result.sizes) == 1000
            assert transport.connections_opened == 1
        finally:
            transport.close()

    def test_one_connection_per_thread(self, aio_url):
        transport = KeepAliveTransport(aio_url)
        client = PlanClient(transport)
        errors = []

        def worker() -> None:
            try:
                for _ in range(5):
                    client.plan(1000)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)
            finally:
                transport.close()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert transport.connections_opened == 4

    def test_reconnects_once_after_server_restart(self):
        server = PlanServer(make_models())
        frontend = AioFrontend(server, port=0)
        frontend.start()
        port = frontend.port
        transport = KeepAliveTransport(frontend.url)
        client = PlanClient(transport)
        try:
            client.plan(1000)
            assert transport.connections_opened == 1
            frontend.stop()
            server.close()
            # Same port, fresh process-equivalent: the kept-alive
            # connection is dead and must be replaced transparently.
            server = PlanServer(make_models())
            frontend = AioFrontend(server, port=port)
            frontend.start()
            result = client.plan(1000)
            assert sum(result.sizes) == 1000
            assert transport.connections_opened == 2
        finally:
            transport.close()
            frontend.stop()
            server.close()

    def test_http_transport_factory_returns_keepalive(self, aio_url):
        transport = http_transport(aio_url)
        assert isinstance(transport, KeepAliveTransport)
        transport.close()

    def test_error_responses_decode_to_protocol_errors(self, aio_url):
        transport = KeepAliveTransport(aio_url)
        try:
            response = transport({"total": "many"})
            assert response["code"] == 400 and "error" in response
            # The connection survives a 4xx: still just one connect.
            assert transport({"cmd": "stats"})["stats"]
            assert transport.connections_opened == 1
        finally:
            transport.close()


class TestShardClientReuse:
    """The fleet-internal client shares the same keep-alive discipline."""

    def test_plan_and_metrics_reuse(self, aio_url):
        client = ShardClient(aio_url)
        try:
            for _ in range(10):
                assert "sizes" in client.plan({"cmd": "plan", "total": 640})
            assert client.metrics()["schema"] == "fupermod-metrics/4"
            assert client.health() is True
            assert client.connections_opened == 1
        finally:
            client.close()
