"""PlanEngine and PlanServer: caching, coalescing, degradation, batching.

The acceptance contracts of the serving layer are asserted on counters,
not timing:

* a repeated identical request is served from the cache without the
  partitioner running again (``computations`` stays put);
* N concurrent identical requests run exactly one computation
  (single-flight);
* a failing partitioner degrades through the policy ladder and the
  result says so.
"""

from __future__ import annotations

import threading

import pytest

from tests.conftest import model_from_time_fn
from repro.core import registry
from repro.core.models import PiecewiseModel
from repro.core.registry import register_partitioner
from repro.degrade import DegradationPolicy
from repro.errors import PartitionError
from repro.serve import PlanCache, PlanEngine, PlanServer

pytestmark = pytest.mark.serve


def make_models(speeds=(100.0, 200.0, 400.0)):
    """Noiseless piecewise models over constant-speed devices."""
    return [
        model_from_time_fn(PiecewiseModel, lambda d, s=s: d / s,
                           [16, 128, 1024, 4096])
        for s in speeds
    ]


@pytest.fixture
def scratch_partitioner():
    """Register throwaway partitioners, removed again after the test.

    Leaked registrations would pollute the warm-start parity suite, which
    iterates every registered partitioner.
    """
    added = []

    def add(name, fn):
        register_partitioner(name, fn, overwrite=True)
        added.append(name)

    yield add
    with registry._REGISTRY_LOCK:
        for name in added:
            registry._PARTITIONER_REGISTRY.pop(name, None)


class TestEngineCaching:
    """The cache hit path never recomputes."""

    def test_repeat_request_served_from_cache(self):
        engine = PlanEngine()
        models = make_models()
        first = engine.plan(models, 1000)
        again = engine.plan(models, 1000)
        assert not first.cached and again.cached
        assert again.sizes == first.sizes
        assert engine.counters.computations == 1
        stats = engine.cache.stats()
        assert stats.hits == 1 and stats.inserts == 1

    def test_equal_refit_still_hits(self):
        # A different model *instance* with the same fitted parameters is
        # the same content: the cache must hit across refits.
        engine = PlanEngine()
        engine.plan(make_models(), 1000)
        result = engine.plan(make_models(), 1000)
        assert result.cached
        assert engine.counters.computations == 1

    def test_changed_model_misses(self):
        engine = PlanEngine()
        engine.plan(make_models((100.0, 200.0, 400.0)), 1000)
        result = engine.plan(make_models((100.0, 200.0, 300.0)), 1000)
        assert not result.cached
        assert engine.counters.computations == 2

    def test_options_partition_the_key_space(self):
        engine = PlanEngine()
        models = make_models()
        a = engine.plan(models, 1000, options={"probes": 1})
        b = engine.plan(models, 1000, options={"probes": 8})
        assert not b.cached
        assert a.key != b.key

    def test_distribution_rebuilt_with_cert(self):
        engine = PlanEngine()
        models = make_models()
        engine.plan(models, 1000)
        dist = engine.distribution(models, 1000)
        assert dist.total == 1000
        assert dist.convergence is not None
        assert dist.convergence.algorithm == "geometric"

    def test_warm_start_used_on_nearby_total(self):
        engine = PlanEngine()
        models = make_models()
        cold = engine.plan(models, 10_000)
        near = engine.plan(models, 11_000)
        assert not cold.warm and near.warm
        assert engine.counters.warm_starts == 1
        # Warm result equals an independent cold solve bit for bit.
        cold_engine = PlanEngine(warm=False)
        reference = cold_engine.plan(models, 11_000)
        assert near.sizes == reference.sizes
        assert near.cert.iterations <= reference.cert.iterations

    def test_warm_disabled(self):
        engine = PlanEngine(warm=False)
        models = make_models()
        engine.plan(models, 10_000)
        near = engine.plan(models, 11_000)
        assert not near.warm
        assert engine.counters.warm_starts == 0


class TestEngineDegradation:
    """Typed partitioner failures walk the ladder when a policy is given."""

    def test_failure_without_policy_propagates(self, scratch_partitioner):
        scratch_partitioner(
            "always-fails",
            lambda total, models, **kw: (_ for _ in ()).throw(
                PartitionError("scripted failure")
            ),
        )
        engine = PlanEngine()
        with pytest.raises(PartitionError, match="scripted failure"):
            engine.plan(make_models(), 1000, partitioner="always-fails")

    def test_failure_with_policy_degrades_and_records(
        self, scratch_partitioner
    ):
        scratch_partitioner(
            "always-fails",
            lambda total, models, **kw: (_ for _ in ()).throw(
                PartitionError("scripted failure")
            ),
        )
        engine = PlanEngine(policy=DegradationPolicy())
        result = engine.plan(make_models(), 1000, partitioner="always-fails")
        assert sum(result.sizes) == 1000
        assert "scripted failure" in result.degraded
        assert result.algorithm != "always-fails"
        # The degraded plan is cached like any other.
        again = engine.plan(make_models(), 1000, partitioner="always-fails")
        assert again.cached and "scripted failure" in again.degraded


class TestServerCoalescing:
    """Single-flight: identical concurrent requests share one computation."""

    def test_concurrent_identical_requests_compute_once(
        self, scratch_partitioner
    ):
        models = make_models()
        release = threading.Event()
        entered = threading.Event()

        def slow_partitioner(total, models_, **kwargs):
            from repro.core.partition.geometric import partition_geometric

            entered.set()
            assert release.wait(timeout=30), "test deadlock"
            return partition_geometric(total, models_)

        scratch_partitioner("slow-geometric", slow_partitioner)
        with PlanServer(models, max_workers=8) as server:
            first = server.submit(4000, partitioner="slow-geometric")
            assert entered.wait(timeout=30)
            # The computation is now provably in flight; pile on.
            futures = [
                server.submit(4000, partitioner="slow-geometric")
                for _ in range(9)
            ]
            assert all(f is first for f in futures)
            release.set()
            results = [f.result(timeout=30) for f in [first] + futures]
            assert server.engine.counters.computations == 1
            assert server.engine.counters.coalesced == 9
            assert all(r.sizes == results[0].sizes for r in results)

    def test_after_completion_requests_hit_cache_not_flight(self):
        models = make_models()
        with PlanServer(models) as server:
            server.request(2000)
            result = server.request(2000)
            assert result.cached
            assert server.engine.counters.computations == 1
            assert server.inflight() == 0

    def test_request_many_mixes_distinct_and_duplicate(self):
        models = make_models()
        with PlanServer(models, max_workers=4) as server:
            specs = [
                (1000, None, None),
                (2000, None, None),
                (1000, None, None),  # duplicate of the first
            ]
            results = server.request_many(specs)
            assert [r.total for r in results] == [1000, 2000, 1000]
            assert results[0].sizes == results[2].sizes
            # Never more than the two distinct computations.
            assert server.engine.counters.computations <= 2

    def test_closed_server_rejects_work(self):
        server = PlanServer(make_models())
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(100)

    def test_needs_models(self):
        with pytest.raises(ValueError, match="at least one model"):
            PlanServer([])


class TestServerStats:
    """The consolidated stats snapshot."""

    def test_stats_shape(self):
        with PlanServer(make_models(), cache=PlanCache(capacity=4)) as server:
            server.request(1000)
            server.request(1000)
            stats = server.stats()
            assert stats["ranks"] == 3
            assert stats["cache"]["hits"] == 1
            assert stats["serve"]["computations"] == 1
            assert stats["inflight"] == 0
