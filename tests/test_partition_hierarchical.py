"""Tests for hierarchical (two-level) partitioning."""

from __future__ import annotations

import pytest

from repro.core.models import PiecewiseModel
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.hierarchical import (
    aggregate_node_model,
    group_models_by_node,
    partition_hierarchical,
)
from repro.errors import PartitionError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile

from tests.conftest import model_from_time_fn

SAMPLES = [100, 1000, 10000, 50000]


def _models(speeds):
    return [
        model_from_time_fn(
            PiecewiseModel, lambda d, s=s: d / s, [10, 1000, 100000]
        )
        for s in speeds
    ]


class TestAggregateNodeModel:
    def test_single_device_node_is_identity(self):
        (model,) = _models([10.0])
        agg = aggregate_node_model([model], SAMPLES)
        for x in [100.0, 5000.0]:
            assert agg.time(x) == pytest.approx(model.time(x), rel=1e-6)

    def test_two_devices_add_speeds(self):
        # Constant speeds 30 + 10 -> aggregate speed 40 units/s.
        models = _models([30.0, 10.0])
        agg = aggregate_node_model(models, SAMPLES)
        assert agg.speed(1000) == pytest.approx(40.0, rel=0.01)

    def test_requires_devices_and_samples(self):
        with pytest.raises(PartitionError):
            aggregate_node_model([], SAMPLES)
        with pytest.raises(PartitionError):
            aggregate_node_model(_models([1.0]), [])
        with pytest.raises(PartitionError):
            aggregate_node_model(_models([1.0]), [0])


class TestPartitionHierarchical:
    def test_flat_total_exact(self):
        groups = [_models([3.0, 1.0]), _models([2.0])]
        result = partition_hierarchical(9000, groups, SAMPLES)
        assert result.flat.total == 9000
        assert result.node_distribution.total == 9000

    def test_matches_flat_partitioning_for_linear_models(self):
        # With constant speeds, hierarchical == flat partitioning: every
        # process ends up with work proportional to its speed.
        speeds = [6.0, 2.0, 3.0, 1.0]
        groups = [_models(speeds[:2]), _models(speeds[2:])]
        flat_models = _models(speeds)
        total = 12000
        hier = partition_hierarchical(total, groups, SAMPLES)
        flat = partition_geometric(total, flat_models)
        for a, b in zip(hier.flat.sizes, flat.sizes):
            assert abs(a - b) <= max(3, 0.01 * total)

    def test_node_share_proportional_to_aggregate_speed(self):
        groups = [_models([3.0, 1.0]), _models([2.0, 2.0])]  # 4 vs 4 units/s
        result = partition_hierarchical(8000, groups, SAMPLES)
        assert result.node_distribution.sizes[0] == pytest.approx(4000, abs=10)

    def test_devices_balanced_within_node(self):
        groups = [_models([3.0, 1.0])]
        result = partition_hierarchical(4000, groups, SAMPLES)
        assert result.flat.sizes == [3000, 1000]

    def test_zero_total(self):
        groups = [_models([1.0]), _models([2.0])]
        result = partition_hierarchical(0, groups, SAMPLES)
        assert result.flat.sizes == [0, 0]

    def test_empty_groups_rejected(self):
        with pytest.raises(PartitionError):
            partition_hierarchical(100, [], SAMPLES)

    def test_negative_total_rejected(self):
        with pytest.raises(PartitionError):
            partition_hierarchical(-1, [_models([1.0])], SAMPLES)

    def test_node_models_exposed(self):
        groups = [_models([1.0]), _models([5.0])]
        result = partition_hierarchical(600, groups, SAMPLES)
        assert len(result.node_models) == 2
        assert result.node_models[1].speed(100) == pytest.approx(5.0, rel=0.02)


class TestGroupModelsByNode:
    def _platform(self):
        def dev(name):
            return Device(name, ConstantProfile(1.0e9), noise=NoNoise())

        return Platform(
            [Node("n0", [dev("a"), dev("b")]), Node("n1", [dev("c")])]
        )

    def test_grouping(self):
        platform = self._platform()
        models = _models([1.0, 2.0, 3.0])
        groups = group_models_by_node(platform, models)
        assert len(groups) == 2
        assert groups[0] == [models[0], models[1]]
        assert groups[1] == [models[2]]

    def test_length_checked(self):
        with pytest.raises(PartitionError):
            group_models_by_node(self._platform(), _models([1.0]))
