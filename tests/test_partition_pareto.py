"""Properties of the bi-objective (time, energy) Pareto partitioner.

Hypothesis drives randomly skewed device sets through
:func:`~repro.core.partition.pareto.partition_pareto` and checks the
front invariants that must hold regardless of the platform:

* every returned point is feasible (sums to the total, non-negative);
* no point on the front dominates another (dominance filtering);
* the front is sorted by time (ascending) and energy (descending);
* the endpoints match pure single-objective solves bit for bit --
  the time endpoint is exactly :func:`partition_geometric` over the
  speed models, the energy endpoint exactly the same solver over the
  energy models;
* a warm-started front is bit-identical to a cold solve.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import PiecewiseModel
from repro.core.models.energy import PiecewiseEnergyModel
from repro.core.partition import (
    DEFAULT_FRONT_POINTS,
    MAX_FRONT_POINTS,
    ParetoFront,
    ParetoPoint,
    partition_pareto,
)
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.warm import WarmStart
from repro.core.point import MeasurementPoint
from repro.errors import PartitionError
from repro.platform.power import (
    ConstantPower,
    LinearPower,
    energy_points_from_power,
)

pytestmark = pytest.mark.energy

SIZES = (64, 128, 256, 512, 1024, 2048)


def build_pair(speed: float, idle: float, dynamic: float):
    """A (speed model, energy model) pair for one device."""
    pts = [MeasurementPoint(d, d / speed) for d in SIZES]
    m = PiecewiseModel()
    m.update_many(pts)
    profile = ConstantPower(idle_watts=idle, dynamic_watts=dynamic)
    em = PiecewiseEnergyModel()
    em.update_many(energy_points_from_power(pts, profile))
    return m, em


def skewed_platform():
    """Fast-but-hungry device 0 vs slow-but-frugal device 1.

    The conflict makes the front non-degenerate: minimising time loads
    the hungry device, minimising energy sheds work onto the frugal one.
    """
    m0, e0 = build_pair(speed=400.0, idle=30.0, dynamic=220.0)
    m1, e1 = build_pair(speed=100.0, idle=5.0, dynamic=15.0)
    return [m0, m1], [e0, e1]


@st.composite
def _devices(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    specs = []
    for _ in range(n):
        speed = draw(st.floats(min_value=50.0, max_value=2000.0))
        idle = draw(st.floats(min_value=0.0, max_value=50.0))
        dynamic = draw(st.floats(min_value=5.0, max_value=300.0))
        specs.append((speed, idle, dynamic))
    return specs


def _models_from(specs):
    pairs = [build_pair(*s) for s in specs]
    return [p[0] for p in pairs], [p[1] for p in pairs]


class TestFrontProperties:
    @given(_devices(), st.integers(min_value=100, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_feasibility_and_non_domination(self, specs, total):
        models, emodels = _models_from(specs)
        front = partition_pareto(total, models, emodels, npoints=7)
        assert isinstance(front, ParetoFront)
        assert front.points, "front must never be empty"
        for p in front.points:
            assert sum(p.sizes) == total
            assert all(s >= 0 for s in p.sizes)
            assert math.isfinite(p.time) and math.isfinite(p.energy)
        # No point dominates another: with points sorted by time
        # ascending, energies must be strictly descending (ties are
        # deduplicated away).
        for a, b in zip(front.points, front.points[1:]):
            assert a.time < b.time or (a.time == b.time and a is b)
            assert a.energy > b.energy

    @given(_devices(), st.integers(min_value=100, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_front_sorted_by_time(self, specs, total):
        models, emodels = _models_from(specs)
        front = partition_pareto(total, models, emodels, npoints=5)
        times = [p.time for p in front.points]
        assert times == sorted(times)

    @given(st.integers(min_value=100, max_value=50_000),
           st.integers(min_value=3, max_value=9))
    @settings(max_examples=20, deadline=None)
    def test_endpoints_match_pure_single_objective_solves(self, total,
                                                          npoints):
        # A genuinely conflicting platform (fast-hungry vs slow-frugal)
        # keeps both endpoints on the front; the parity contract is that
        # they are bit-identical to the single-objective solves.
        models, emodels = skewed_platform()
        front = partition_pareto(total, models, emodels, npoints=npoints)
        time_opt = partition_geometric(total, models)
        assert front.points[0].sizes == tuple(time_opt.sizes)
        energy_opt = partition_geometric(total, emodels)
        assert front.points[-1].sizes == tuple(energy_opt.sizes)

    @given(st.integers(min_value=1000, max_value=80_000))
    @settings(max_examples=15, deadline=None)
    def test_warm_started_front_bit_identical_to_cold(self, total):
        models, emodels = skewed_platform()
        cold = partition_pareto(total, models, emodels, npoints=7)
        hint = WarmStart(
            total=total,
            level=max(cold.points[0].times, default=0.0),
            sizes=cold.points[0].sizes,
        )
        warm = partition_pareto(total, models, emodels, npoints=7,
                                warm_start=hint)
        assert [p.sizes for p in warm.points] == [
            p.sizes for p in cold.points]
        assert [p.time for p in warm.points] == [p.time for p in cold.points]
        assert [p.energy for p in warm.points] == [
            p.energy for p in cold.points]


class TestSelection:
    def test_alpha_endpoints(self):
        models, emodels = skewed_platform()
        front = partition_pareto(10_000, models, emodels, npoints=9)
        assert front.select(alpha=1.0).sizes == front.points[0].sizes
        assert front.select(alpha=0.0).sizes == front.points[-1].sizes

    def test_energy_cap_picks_fastest_feasible(self):
        models, emodels = skewed_platform()
        front = partition_pareto(10_000, models, emodels, npoints=9)
        mid = front.points[len(front.points) // 2]
        picked = front.select(max_joules=mid.energy)
        assert picked.energy <= mid.energy
        # Fastest point under the cap: everything faster busts the cap.
        for p in front.points:
            if p.time < picked.time:
                assert p.energy > mid.energy

    def test_impossible_cap_is_typed_error(self):
        models, emodels = skewed_platform()
        front = partition_pareto(10_000, models, emodels, npoints=5)
        floor = min(p.energy for p in front.points)
        with pytest.raises(PartitionError):
            front.select(max_joules=floor * 0.5)

    def test_front_round_trips_through_dicts(self):
        models, emodels = skewed_platform()
        front = partition_pareto(5_000, models, emodels, npoints=5)
        clone = ParetoFront.from_dict(front.to_dict())
        assert clone.total == front.total
        assert [p.sizes for p in clone.points] == [
            p.sizes for p in front.points]
        assert [p.energy for p in clone.points] == [
            p.energy for p in front.points]


class TestValidation:
    def test_npoints_bounds(self):
        models, emodels = skewed_platform()
        with pytest.raises(PartitionError):
            partition_pareto(1000, models, emodels, npoints=1)
        with pytest.raises(PartitionError):
            partition_pareto(1000, models, emodels,
                             npoints=MAX_FRONT_POINTS + 1)

    def test_mismatched_model_counts(self):
        models, emodels = skewed_platform()
        with pytest.raises(PartitionError):
            partition_pareto(1000, models, emodels[:1])

    def test_default_front_width(self):
        models, emodels = skewed_platform()
        front = partition_pareto(20_000, models, emodels)
        assert 2 <= len(front.points) <= DEFAULT_FRONT_POINTS

    def test_certificates_attached(self):
        models, emodels = skewed_platform()
        front = partition_pareto(20_000, models, emodels, npoints=5)
        for p in front.points:
            assert p.cert is not None
            assert p.cert.converged
