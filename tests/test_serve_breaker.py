"""Circuit breakers: state machine, per-model-set isolation, engine wiring.

The contracts:

* a breaker opens only on *rate* (``min_calls`` outcomes at
  ``failure_threshold``), never on one unlucky failure;
* open means short-circuit -- the engine serves through the degradation
  ladder (or raises :class:`CircuitOpenError` without one) and does
  **not** cache the degraded plan;
* after ``cooldown`` exactly one trial request reaches the real
  partitioner; its outcome decides closed-vs-reopen;
* breakers are keyed by model-set fingerprint: one failing model set
  cannot trip serving for a healthy one.

All clock-driven transitions use a fake clock -- no sleeps.
"""

from __future__ import annotations

import pytest

from repro.core.registry import partitioner
from repro.degrade import DegradationPolicy
from repro.errors import CircuitOpenError, SolverError
from repro.serve import BreakerBoard, CircuitBreaker, PlanEngine
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN

from tests.test_serve_cache import FakeClock
from tests.test_serve_server import make_models, scratch_partitioner  # noqa: F401

pytestmark = pytest.mark.serve


def make_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 0.5)
    kwargs.setdefault("window", 4)
    kwargs.setdefault("min_calls", 4)
    kwargs.setdefault("cooldown", 30.0)
    return CircuitBreaker(clock=clock, **kwargs)


class TestStateMachine:
    """closed -> open -> half-open -> closed / reopen."""

    def test_starts_closed_and_allows(self):
        breaker = make_breaker(FakeClock())
        assert breaker.state == CLOSED
        assert all(breaker.allow() for _ in range(10))

    def test_one_failure_does_not_trip_a_cold_breaker(self):
        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_opens_at_failure_rate_with_min_calls(self):
        breaker = make_breaker(FakeClock())
        for _ in range(2):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/3 failures, below min_calls
        breaker.record_failure()
        assert breaker.state == OPEN  # 2/4 >= 0.5
        assert breaker.opens == 1

    def test_open_short_circuits_and_counts(self):
        breaker = make_breaker(FakeClock())
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.short_circuits == 2

    def test_half_open_admits_exactly_one_trial(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now += 30.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the trial
        assert not breaker.allow()  # everyone else keeps short-circuiting

    def test_trial_success_closes_and_resets_window(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now += 30.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # The old failure window is gone: one new failure must not trip.
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_trial_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now += 30.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert breaker.remaining_cooldown() == pytest.approx(30.0)

    def test_remaining_cooldown_counts_down(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now += 12.0
        assert breaker.remaining_cooldown() == pytest.approx(18.0)

    def test_to_dict_snapshot(self):
        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        snap = breaker.to_dict()
        assert snap["state"] == CLOSED
        assert snap["window_failures"] == 1
        assert snap["window_calls"] == 1

    def test_bad_configuration_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(min_calls=10, window=4)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestBreakerBoard:
    """Per-fingerprint isolation."""

    def test_boards_isolate_model_sets(self):
        board = BreakerBoard(window=4, min_calls=4, clock=FakeClock())
        for _ in range(4):
            board.breaker("sick-models").record_failure()
        assert board.breaker("sick-models").state == OPEN
        assert board.breaker("healthy-models").state == CLOSED
        assert len(board) == 2

    def test_board_aggregates(self):
        board = BreakerBoard(window=4, min_calls=4, clock=FakeClock())
        for _ in range(4):
            board.breaker("m1").record_failure()
        board.breaker("m1").allow()
        snap = board.to_dict()
        assert snap["open"] == 1
        assert snap["opens"] == 1
        assert snap["short_circuits"] == 1
        assert snap["breakers"]["m1"]["state"] == OPEN

    def test_get_does_not_create(self):
        board = BreakerBoard()
        assert board.get("never-seen") is None
        assert len(board) == 0

    def test_bad_config_fails_at_construction(self):
        with pytest.raises(ValueError):
            BreakerBoard(window=-1)


class TestEngineIntegration:
    """The engine consults, records on, and short-circuits through breakers."""

    def failing(self, name, scratch):
        calls = {"n": 0}

        def bad_partitioner(total, models, **kwargs):
            calls["n"] += 1
            raise SolverError("injected divergence")

        scratch(name, bad_partitioner)
        return calls

    def test_failures_open_breaker_and_short_circuit(self, scratch_partitioner):
        clock = FakeClock()
        calls = self.failing("always-fails", scratch_partitioner)
        engine = PlanEngine(
            policy=DegradationPolicy(),
            breakers=BreakerBoard(window=4, min_calls=4, clock=clock),
        )
        models = make_models()
        for total in (1000, 1001, 1002, 1003):
            result = engine.plan(models, total, partitioner="always-fails")
            assert "ladder engaged" in result.degraded
        assert calls["n"] == 4
        # Breaker now open: the next request never reaches the partitioner.
        result = engine.plan(models, 1004, partitioner="always-fails")
        assert calls["n"] == 4
        assert "circuit open" in result.degraded
        assert engine.counters.short_circuits == 1

    def test_short_circuited_plans_are_not_cached(self, scratch_partitioner):
        clock = FakeClock()
        self.failing("always-fails-2", scratch_partitioner)
        engine = PlanEngine(
            policy=DegradationPolicy(),
            breakers=BreakerBoard(window=4, min_calls=4, clock=clock),
        )
        models = make_models()
        for total in (1000, 1001, 1002, 1003):
            engine.plan(models, total, partitioner="always-fails-2")
        inserts_before = engine.cache.stats().inserts
        first = engine.plan(models, 2000, partitioner="always-fails-2")
        assert "circuit open" in first.degraded
        assert engine.cache.stats().inserts == inserts_before
        again = engine.plan(models, 2000, partitioner="always-fails-2")
        assert not again.cached  # served again, not from cache

    def test_open_without_policy_raises_typed(self, scratch_partitioner):
        clock = FakeClock()
        self.failing("always-fails-3", scratch_partitioner)
        engine = PlanEngine(
            breakers=BreakerBoard(window=4, min_calls=4, clock=clock),
        )
        models = make_models()
        for total in (1000, 1001, 1002, 1003):
            with pytest.raises(SolverError):
                engine.plan(models, total, partitioner="always-fails-3")
        with pytest.raises(CircuitOpenError) as exc_info:
            engine.plan(models, 1004, partitioner="always-fails-3")
        assert exc_info.value.retry_after == pytest.approx(30.0)

    def test_recovery_after_cooldown(self, scratch_partitioner):
        clock = FakeClock()
        state = {"healthy": False, "calls": 0}
        geometric = partitioner("geometric")

        def flaky(total, models, **kwargs):
            state["calls"] += 1
            if not state["healthy"]:
                raise SolverError("still sick")
            return geometric(total, models)

        scratch_partitioner("flaky-solver", flaky)
        engine = PlanEngine(
            policy=DegradationPolicy(),
            breakers=BreakerBoard(window=4, min_calls=4, cooldown=30.0,
                                  clock=clock),
        )
        models = make_models()
        for total in (1000, 1001, 1002, 1003):
            engine.plan(models, total, partitioner="flaky-solver")
        assert state["calls"] == 4
        state["healthy"] = True
        clock.now += 30.0
        trial = engine.plan(models, 1004, partitioner="flaky-solver")
        assert state["calls"] == 5
        assert trial.degraded == ""
        # Closed again: requests flow normally and get cached.
        after = engine.plan(models, 1005, partitioner="flaky-solver")
        assert after.degraded == ""
        assert engine.cache.get(trial.key) is not None

    def test_healthy_solves_never_touch_short_circuit_counters(self):
        engine = PlanEngine(breakers=BreakerBoard(clock=FakeClock()))
        models = make_models()
        engine.plan(models, 1000)
        engine.plan(models, 2000)
        assert engine.counters.short_circuits == 0
        snap = engine.breakers.to_dict()
        assert snap["open"] == 0 and snap["short_circuits"] == 0
