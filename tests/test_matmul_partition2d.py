"""Tests for the column-based 2D matrix partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.matmul.partition2d import (
    ColumnPartition,
    Rectangle,
    partition_columns,
    sum_half_perimeters,
)
from repro.errors import PartitionError


class TestRectangle:
    def test_area_and_half_perimeter(self):
        r = Rectangle(rank=0, row=0, col=0, height=3, width=4)
        assert r.area == 12
        assert r.half_perimeter == 7


class TestPartitionColumns:
    def test_single_processor_gets_everything(self):
        part = partition_columns([1.0], nb=8)
        assert part.rectangles[0].area == 64
        assert part.column_widths == [8]

    def test_equal_areas_tile_exactly(self):
        part = partition_columns([1.0, 1.0, 1.0, 1.0], nb=8)
        part.validate()
        assert sum(part.areas()) == 64

    def test_areas_proportional(self):
        part = partition_columns([3.0, 1.0], nb=16)
        areas = part.areas()
        assert sum(areas) == 256
        assert areas[0] / areas[1] == pytest.approx(3.0, rel=0.15)

    def test_rank_order_preserved(self):
        # Areas deliberately unsorted; rectangle i must belong to rank i.
        part = partition_columns([1.0, 5.0, 2.0], nb=12)
        areas = part.areas()
        assert areas[1] > areas[2] > areas[0]

    def test_zero_area_processor(self):
        part = partition_columns([1.0, 0.0, 1.0], nb=6)
        part.validate()
        assert part.areas()[1] == 0
        assert sum(part.areas()) == 36

    def test_near_square_for_similar_areas(self):
        part = partition_columns([1.0, 1.0, 1.0, 1.0], nb=16)
        for rect in part.rectangles:
            ratio = rect.height / rect.width
            assert 0.4 <= ratio <= 2.6

    def test_better_than_1d_for_many_procs(self):
        # Column-based should beat single-column (1D row) layout on the
        # half-perimeter metric for many equal processors.
        nb = 32
        areas = [1.0] * 16
        part = partition_columns(areas, nb)
        one_column = ColumnPartition(
            nb=nb,
            column_widths=[nb],
            rectangles=[
                Rectangle(rank=i, row=i * 2, col=0, height=2, width=nb)
                for i in range(16)
            ],
        )
        one_column.validate()
        assert sum_half_perimeters(part) < sum_half_perimeters(one_column)

    def test_validation_errors(self):
        with pytest.raises(PartitionError):
            partition_columns([], nb=4)
        with pytest.raises(PartitionError):
            partition_columns([1.0], nb=0)
        with pytest.raises(PartitionError):
            partition_columns([-1.0, 2.0], nb=4)
        with pytest.raises(PartitionError):
            partition_columns([0.0, 0.0], nb=4)

    def test_more_columns_than_grid_rejected(self):
        # 5 equal processors cannot each own a column of a 2-wide grid
        # (they end up grouped, so this should actually succeed)...
        part = partition_columns([1.0] * 5, nb=2)
        part.validate()

    def test_validate_catches_bad_tiling(self):
        bad = ColumnPartition(
            nb=4,
            column_widths=[4],
            rectangles=[Rectangle(rank=0, row=0, col=0, height=2, width=4)],
        )
        with pytest.raises(PartitionError):
            bad.validate()

    def test_validate_catches_out_of_grid(self):
        bad = ColumnPartition(
            nb=4,
            column_widths=[4],
            rectangles=[Rectangle(rank=0, row=2, col=0, height=4, width=4)],
        )
        with pytest.raises(PartitionError):
            bad.validate()


class TestPartitionProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=12),
        st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_tiles_grid_exactly(self, areas, nb):
        if sum(areas) <= 0:
            areas = areas + [1.0]
        if sum(a > 0 for a in areas) > nb:
            return  # more positive processors than grid columns can host
        part = partition_columns(areas, nb)
        part.validate()  # exact tiling + width consistency
        assert sum(part.areas()) == nb * nb

    @given(
        st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=8),
        st.integers(min_value=8, max_value=48),
    )
    @settings(max_examples=60, deadline=None)
    def test_area_proportionality(self, areas, nb):
        if len(areas) > nb:
            return
        part = partition_columns(areas, nb)
        total_area = sum(areas)
        grid = nb * nb
        for a, rect in zip(areas, part.rectangles):
            expected = a / total_area * grid
            # Snapping to the block grid costs at most one row + one column
            # per rectangle.
            assert abs(rect.area - expected) <= 2.0 * nb + 1


class TestPartitionRows:
    def test_heights_proportional(self):
        from repro.apps.matmul.partition2d import partition_rows

        part = partition_rows([3.0, 1.0], nb=8)
        part.validate()
        assert part.rectangles[0].height == 6
        assert part.rectangles[1].height == 2
        assert all(r.width == 8 for r in part.rectangles)

    def test_zero_area_rank(self):
        from repro.apps.matmul.partition2d import partition_rows

        part = partition_rows([1.0, 0.0], nb=4)
        part.validate()
        assert part.areas() == [16, 0]

    def test_never_beats_column_based(self):
        from repro.apps.matmul.partition2d import (
            partition_columns,
            partition_rows,
            sum_half_perimeters,
        )

        for areas in ([1.0] * 6, [5.0, 2.0, 1.0], [1.0, 1.0]):
            rows = partition_rows(areas, nb=24)
            cols = partition_columns(areas, nb=24)
            assert sum_half_perimeters(cols) <= sum_half_perimeters(rows)

    def test_validation(self):
        from repro.apps.matmul.partition2d import partition_rows

        with pytest.raises(PartitionError):
            partition_rows([], nb=4)
        with pytest.raises(PartitionError):
            partition_rows([1.0], nb=0)
        with pytest.raises(PartitionError):
            partition_rows([0.0], nb=4)
