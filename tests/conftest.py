"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Callable, List, Sequence

import pytest

from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.point import MeasurementPoint
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device, DeviceKind
from repro.platform.noise import NoNoise
from repro.platform.profiles import CacheHierarchyProfile, ConstantProfile, GpuProfile


def points_from_time_fn(
    time_fn: Callable[[int], float],
    sizes: Sequence[int],
) -> List[MeasurementPoint]:
    """Exact measurement points sampled from a time function."""
    return [MeasurementPoint(d=d, t=time_fn(d), reps=1, ci=0.0) for d in sizes]


def model_from_time_fn(model_cls, time_fn, sizes):
    """Build a model of the given class from exact samples of ``time_fn``."""
    model = model_cls()
    model.update_many(points_from_time_fn(time_fn, sizes))
    return model


@pytest.fixture
def constant_model():
    """CPM with speed exactly 100 units/second."""
    return model_from_time_fn(ConstantModel, lambda d: d / 100.0, [50])


@pytest.fixture
def linear_piecewise_model():
    """Piecewise FPM over a constant-speed (linear-time) device."""
    return model_from_time_fn(
        PiecewiseModel, lambda d: d / 100.0, [10, 100, 1000]
    )


@pytest.fixture
def linear_akima_model():
    """Akima FPM over a constant-speed (linear-time) device."""
    return model_from_time_fn(
        AkimaModel, lambda d: d / 100.0, [10, 100, 500, 1000]
    )


def noiseless_device(name: str, flops: float) -> Device:
    """A deterministic constant-speed device."""
    return Device(name, ConstantProfile(flops), noise=NoNoise())


@pytest.fixture
def two_speed_platform() -> Platform:
    """Two noiseless uniprocessors with speeds 3:1."""
    return Platform(
        [
            Node("fast", [noiseless_device("fast-cpu", 3.0e9)]),
            Node("slow", [noiseless_device("slow-cpu", 1.0e9)]),
        ]
    )


@pytest.fixture
def cliff_platform() -> Platform:
    """Two noiseless devices, one with a hard memory cliff at 1000 units.

    CPM built from small sizes will badly mispredict the cliff device,
    which is the scenario where FPM-based partitioning must win.
    """
    cliff = Device(
        "cliff-cpu",
        CacheHierarchyProfile(
            levels=[(1000.0, 4.0e9)], paged_flops=0.2e9, transition_width=0.02
        ),
        noise=NoNoise(),
    )
    steady = noiseless_device("steady-cpu", 2.0e9)
    return Platform([Node("n0", [cliff]), Node("n1", [steady])])


@pytest.fixture
def hybrid_like_platform() -> Platform:
    """CPU core + GPU pair, noiseless, with contention on the shared node."""
    cpu = Device(
        "h-cpu",
        CacheHierarchyProfile(levels=[(500.0, 4.0e9)], paged_flops=1.0e9),
        kind=DeviceKind.CPU_CORE,
        noise=NoNoise(),
    )
    gpu = Device(
        "h-gpu",
        GpuProfile(peak_flops=5.0e10, ramp_units=2000.0),
        kind=DeviceKind.GPU,
        noise=NoNoise(),
    )
    return Platform([Node("h0", [cpu, gpu], contention=[1.0, 0.9])])
