"""SweepCheckpoint: journal durability, corruption handling, resume."""

import json

import pytest

from repro.core.benchmark import ResilientPlatformBenchmark
from repro.core.builder import build_resilient_models
from repro.core.models import PiecewiseModel
from repro.core.point import MeasurementPoint
from repro.core.precision import Precision
from repro.errors import PersistenceError
from repro.faults import FaultPlan, RankFaults
from repro.io.checkpoint import SweepCheckpoint
from repro.platform.presets import heterogeneous_cluster

pytestmark = pytest.mark.faults


def _point(d=100, t=1.5):
    return MeasurementPoint(d=d, t=t, reps=3, ci=0.01)


class TestJournal:
    def test_missing_journal_is_empty(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "none.journal")
        assert not ck.exists
        assert ck.load() == {}

    def test_commit_load_round_trip(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "sweep.journal")
        ck.commit(0, _point(d=10, t=1.0))
        ck.commit(0, _point(d=20, t=2.0))
        ck.commit(3, _point(d=10, t=4.0))
        committed = ck.load()
        assert sorted(committed) == [0, 3]
        assert committed[0][20] == _point(d=20, t=2.0)
        assert committed[3][10].t == 4.0

    def test_parent_directory_created_on_first_commit(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "deep" / "nested" / "sweep.journal")
        ck.commit(0, _point())
        assert ck.exists

    def test_negative_rank_rejected(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "sweep.journal")
        with pytest.raises(PersistenceError, match="non-negative"):
            ck.commit(-1, _point())

    def test_duplicate_commit_keeps_latest(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "sweep.journal")
        ck.commit(0, _point(d=10, t=1.0))
        ck.commit(0, _point(d=10, t=9.0))
        assert ck.load()[0][10].t == 9.0

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.journal"
        ck = SweepCheckpoint(path)
        ck.commit(0, _point(d=10))
        ck.commit(1, _point(d=20))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"magic": "fupermod-journal", "rank": 2, "d": 3')
        committed = ck.load()  # the interrupted commit is simply not there
        assert sorted(committed) == [0, 1]

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = tmp_path / "sweep.journal"
        ck = SweepCheckpoint(path)
        ck.commit(0, _point(d=10))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage line\n")
        ck.commit(1, _point(d=20))
        with pytest.raises(PersistenceError, match="sweep.journal:2"):
            ck.load()

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_text(json.dumps({"rank": 0, "d": 1, "t": 1.0}) + "\n",
                        encoding="utf-8")
        with pytest.raises(PersistenceError, match="not a journal record"):
            SweepCheckpoint(path).load()

    def test_invalid_point_value_rejected(self, tmp_path):
        path = tmp_path / "sweep.journal"
        ck = SweepCheckpoint(path)
        bad = {"magic": "fupermod-journal", "v": 1, "rank": 0,
               "d": 10, "t": -1.0, "reps": 1, "ci": 0.0}
        path.write_text(json.dumps(bad) + "\n", encoding="utf-8")
        ck.commit(1, _point())  # the bad record is not a torn tail
        with pytest.raises(PersistenceError, match="sweep.journal:1"):
            ck.load()

    def test_compact_drops_duplicates_and_torn_tail(self, tmp_path):
        path = tmp_path / "sweep.journal"
        ck = SweepCheckpoint(path)
        ck.commit(0, _point(d=10, t=1.0))
        ck.commit(0, _point(d=10, t=2.0))
        ck.commit(1, _point(d=10, t=3.0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        before = ck.load()
        ck.compact()
        text = path.read_text(encoding="utf-8")
        assert len(text.strip().split("\n")) == 2  # one line per (rank, d)
        assert text.endswith("\n")
        assert ck.load() == before

    def test_clear_removes_the_journal(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "sweep.journal")
        ck.commit(0, _point())
        ck.clear()
        assert not ck.exists
        ck.clear()  # idempotent


class TestResume:
    SIZES = [64, 256, 1024]

    def _bench(self):
        return ResilientPlatformBenchmark(
            heterogeneous_cluster(),
            unit_flops=2.0 * 32**3,
            precision=Precision(reps_min=1, reps_max=2),
            seed=7,
            plan=FaultPlan({0: RankFaults(crash_at=2)}, seed=42),
        )

    def _points(self, models):
        return [[(p.d, p.t, p.reps, p.ci) for p in m.points] for m in models]

    def test_resume_reproduces_the_uninterrupted_run(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "sweep.journal")

        # "crash" after the first two sizes...
        partial = build_resilient_models(
            self._bench(), PiecewiseModel, self.SIZES[:2], checkpoint=ck
        )
        assert ck.exists
        committed = sum(m.count for m in partial.models)
        assert committed > 0

        # ...then a fresh process resumes the full sweep from the journal
        resumed = build_resilient_models(
            self._bench(), PiecewiseModel, self.SIZES, checkpoint=ck
        )
        reused = [e for e in resumed.report.events if e.kind == "resume"]
        assert len(reused) == committed

        # and one uninterrupted run is the ground truth
        reference = build_resilient_models(
            self._bench(), PiecewiseModel, self.SIZES
        )
        assert self._points(resumed.models) == self._points(reference.models)
        assert resumed.survivors == reference.survivors

        # resumed measurement cost covers only the remainder
        assert resumed.total_cost < reference.total_cost

    def test_journal_reflects_full_sweep_after_resume(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "sweep.journal")
        build_resilient_models(
            self._bench(), PiecewiseModel, self.SIZES[:1], checkpoint=ck
        )
        result = build_resilient_models(
            self._bench(), PiecewiseModel, self.SIZES, checkpoint=ck
        )
        committed = ck.load()
        for rank in result.survivors:
            assert sorted(committed[rank]) == self.SIZES
