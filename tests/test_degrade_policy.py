"""Tests for the model/partitioner fallback ladder.

The contract: given a well-formed request, the policy always produces a
valid full partition; every descent is recorded with its trigger; strict
mode propagates the first typed failure instead.
"""

from __future__ import annotations

import pytest

from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.partition.cert import ConvergenceCert
from repro.core.point import MeasurementPoint
from repro.degrade import (
    DEFAULT_MODEL_LADDER,
    DEFAULT_PARTITIONER_LADDER,
    DegradationPolicy,
    DegradationReport,
)
from repro.errors import ConvergenceError, ModelError, PartitionError


def _points(pairs):
    return [MeasurementPoint(d, t) for d, t in pairs]


MONOTONE = _points([(10, 0.1), (100, 1.0), (1000, 10.0)])
# Akima interpolates these exactly, so its curve must dip -- the FPM
# shape restriction rejects it; PCHIP's isotonic projection cannot dip.
NON_MONOTONE = _points([(10, 1.0), (100, 0.2), (1000, 5.0)])


class TestModelLadder:
    def test_monotone_data_keeps_first_rung(self):
        policy = DegradationPolicy()
        model = policy.fit_model(MONOTONE, rank=0)
        assert isinstance(model, AkimaModel)
        assert not policy.report.degraded

    def test_non_monotone_data_descends(self):
        policy = DegradationPolicy()
        model = policy.fit_model(NON_MONOTONE, rank=3)
        assert not isinstance(model, AkimaModel)
        steps = policy.report.fallbacks_for("model-fit")
        assert steps and steps[0].attempted == "akima"
        assert steps[0].rank == 3
        assert "shape restriction" in steps[0].trigger

    def test_primary_tried_first(self):
        policy = DegradationPolicy()
        model = policy.fit_model(MONOTONE, rank=0, primary="constant")
        assert isinstance(model, ConstantModel)

    def test_strict_mode_raises_first_failure(self):
        policy = DegradationPolicy(strict=True)
        with pytest.raises(ModelError, match="shape restriction"):
            policy.fit_model(NON_MONOTONE, rank=0)

    def test_empty_points_raise(self):
        policy = DegradationPolicy()
        with pytest.raises(ModelError, match="no measured points"):
            policy.fit_model([], rank=0)

    def test_shape_probe_can_be_disabled(self):
        policy = DegradationPolicy(require_monotone=False)
        model = policy.fit_model(NON_MONOTONE, rank=0)
        assert isinstance(model, AkimaModel)

    def test_every_rung_failing_raises(self):
        policy = DegradationPolicy(model_ladder=["akima"])
        with pytest.raises(ModelError, match="every model on the ladder"):
            policy.fit_model(NON_MONOTONE, rank=0)


def _models(speeds, sizes=(10, 100, 1000)):
    out = []
    for s in speeds:
        m = PiecewiseModel()
        m.update_many(_points([(d, d / s) for d in sizes]))
        out.append(m)
    return out


class TestPartitionerLadder:
    def test_happy_path_uses_first_rung(self):
        policy = DegradationPolicy()
        dist = policy.partition(500, _models([3.0, 1.0]))
        assert sum(dist.sizes) == 500
        assert dist.convergence.algorithm == "geometric"
        assert not policy.report.degraded
        assert policy.report.certs  # certification is always recorded

    def test_tiny_cap_descends_with_trigger(self):
        policy = DegradationPolicy(max_iter=1)
        dist = policy.partition(500, _models([3.0, 1.0]))
        assert sum(dist.sizes) == 500
        steps = policy.report.fallbacks_for("partition")
        assert steps and steps[0].attempted == "geometric"
        assert "ConvergenceError" in steps[0].trigger
        # The failed attempt's cert is kept alongside the winner's.
        algos = [c.algorithm for c in policy.report.certs]
        assert "geometric" in algos

    def test_even_floor_when_ladder_exhausted(self):
        policy = DegradationPolicy(partitioner_ladder=["geometric"], max_iter=1)
        dist = policy.partition(500, _models([3.0, 1.0]))
        assert sum(dist.sizes) == 500
        assert dist.convergence.algorithm == "even"
        assert policy.report.fallbacks_for("partition")[-1].fallback == "even"

    def test_strict_mode_raises(self):
        policy = DegradationPolicy(strict=True, max_iter=1)
        with pytest.raises(ConvergenceError):
            policy.partition(500, _models([3.0, 1.0]))

    def test_malformed_total_not_degraded_around(self):
        policy = DegradationPolicy()
        with pytest.raises(PartitionError):
            policy.partition(float("nan"), _models([3.0, 1.0]))

    def test_empty_models_not_degraded_around(self):
        policy = DegradationPolicy()
        with pytest.raises(PartitionError, match="empty"):
            policy.partition(100, [])

    def test_partition_function_is_drop_in(self):
        fn = DegradationPolicy().partition_function()
        dist = fn(500, _models([3.0, 1.0]))
        assert sum(dist.sizes) == 500

    def test_wrap_guards_a_failing_function(self):
        policy = DegradationPolicy()

        def exploding(total, models):
            raise PartitionError("boom")

        guarded = policy.wrap(exploding)
        dist = guarded(500, _models([3.0, 1.0]))
        assert sum(dist.sizes) == 500
        assert policy.report.degraded
        assert policy.report.steps[0].attempted == "exploding"

    def test_wrap_strict_propagates(self):
        policy = DegradationPolicy(strict=True)

        def exploding(total, models):
            raise PartitionError("boom")

        with pytest.raises(PartitionError, match="boom"):
            policy.wrap(exploding)(500, _models([3.0, 1.0]))

    def test_empty_ladders_rejected(self):
        with pytest.raises(PartitionError):
            DegradationPolicy(model_ladder=[])
        with pytest.raises(PartitionError):
            DegradationPolicy(partitioner_ladder=[])


class TestReport:
    def test_summary_names_each_fallback(self):
        report = DegradationReport()
        report.record("model-fit", 1, "akima", "pchip",
                      ModelError("shape violated"))
        text = report.summary()
        assert "akima -> pchip" in text
        assert "rank 1" in text

    def test_to_dict_round_trip(self):
        report = DegradationReport()
        report.record("partition", -1, "geometric", "numerical")
        report.record_cert(ConvergenceCert("geometric", False, 5, 5, 1.0, 0.1))
        d = report.to_dict()
        assert d["degraded"] is True
        assert d["steps"][0]["attempted"] == "geometric"
        assert d["certs"][0]["algorithm"] == "geometric"

    def test_clean_report(self):
        report = DegradationReport()
        assert not report.degraded
        assert "no degradation" in report.summary()

    def test_default_ladders_exposed(self):
        assert DEFAULT_MODEL_LADDER[0] == "akima"
        assert DEFAULT_MODEL_LADDER[-1] == "constant"
        assert DEFAULT_PARTITIONER_LADDER == ("geometric", "numerical", "basic")


class TestResilienceMirroring:
    def test_fallbacks_mirrored_into_resilience_report(self):
        from repro.faults.report import ResilienceReport

        resilience = ResilienceReport()
        policy = DegradationPolicy(resilience=resilience)
        policy.fit_model(NON_MONOTONE, rank=0)
        kinds = [e.kind for e in resilience.events]
        assert "ModelFallback" in kinds

    def test_certs_mirrored_into_resilience_report(self):
        from repro.faults.report import ResilienceReport

        resilience = ResilienceReport()
        policy = DegradationPolicy(resilience=resilience)
        policy.partition(500, _models([3.0, 1.0]))
        kinds = [e.kind for e in resilience.events]
        assert "convergence" in kinds
