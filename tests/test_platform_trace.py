"""Tests for execution traces and their Gantt rendering."""

from __future__ import annotations

import pytest

from repro.core.models import PiecewiseModel
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.errors import PlatformError
from repro.platform.trace import EventKind, TraceEvent, TraceRecorder


class TestTraceEvent:
    def test_duration(self):
        e = TraceEvent(0, EventKind.COMPUTE, 1.0, 3.5)
        assert e.duration == 2.5

    def test_marker_zero_duration(self):
        e = TraceEvent(0, EventKind.MARKER, 2.0, 2.0, "rebalance")
        assert e.duration == 0.0

    def test_validation(self):
        with pytest.raises(PlatformError):
            TraceEvent(-1, EventKind.COMPUTE, 0.0, 1.0)
        with pytest.raises(PlatformError):
            TraceEvent(0, EventKind.COMPUTE, 2.0, 1.0)
        with pytest.raises(PlatformError):
            TraceEvent(0, EventKind.COMPUTE, -1.0, 1.0)


class TestTraceRecorder:
    def _trace(self) -> TraceRecorder:
        t = TraceRecorder()
        t.compute(0, 0.0, 4.0, "work")
        t.comm(0, 4.0, 5.0, "gather")
        t.compute(1, 0.0, 2.0, "work")
        t.comm(1, 2.0, 5.0, "gather")
        t.marker(1, 2.0, "rebalance")
        return t

    def test_span(self):
        assert self._trace().span == (0.0, 5.0)

    def test_empty_span_raises(self):
        with pytest.raises(PlatformError):
            TraceRecorder().span

    def test_ranks(self):
        assert self._trace().ranks == [0, 1]

    def test_busy_fraction_all(self):
        t = self._trace()
        assert t.busy_fraction(0) == pytest.approx(1.0)
        assert t.busy_fraction(1) == pytest.approx(1.0)

    def test_busy_fraction_by_kind(self):
        t = self._trace()
        assert t.busy_fraction(0, EventKind.COMPUTE) == pytest.approx(0.8)
        assert t.busy_fraction(1, EventKind.COMPUTE) == pytest.approx(0.4)
        assert t.busy_fraction(1, EventKind.COMM) == pytest.approx(0.6)

    def test_busy_fraction_merges_overlaps(self):
        t = TraceRecorder()
        t.compute(0, 0.0, 3.0)
        t.compute(0, 2.0, 4.0)  # overlaps the first span
        t.compute(1, 0.0, 4.0)
        assert t.busy_fraction(0) == pytest.approx(1.0)

    def test_render_contains_lanes_and_chars(self):
        out = self._trace().render(width=40)
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 lanes
        assert "#" in lines[1] and "~" in lines[1]
        assert "|" in lines[2]

    def test_render_custom_labels(self):
        out = self._trace().render(width=30, labels={0: "gpu", 1: "cpu"})
        assert "gpu" in out and "cpu" in out

    def test_render_width_validated(self):
        with pytest.raises(PlatformError):
            self._trace().render(width=5)


class TestJacobiTraceIntegration:
    def test_trace_recorded_by_jacobi(self):
        from repro.apps.jacobi.distributed import run_balanced_jacobi
        from repro.platform.presets import fig4_trio

        platform = fig4_trio(noisy=False)
        models = [PiecewiseModel() for _ in range(platform.size)]
        balancer = LoadBalancer(partition_geometric, models, 90, threshold=0.05)
        trace = TraceRecorder()
        run_balanced_jacobi(
            platform, balancer, eps=1e-10, max_iterations=6, trace=trace
        )
        kinds = {e.kind for e in trace.events}
        assert EventKind.COMPUTE in kinds
        assert EventKind.COMM in kinds
        assert EventKind.MARKER in kinds  # the rebalance after iteration 1
        assert trace.ranks == [0, 1, 2]
        # Render is printable without error.
        assert trace.render(width=60)
