"""Tests for FPM shape checking and coarsening."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpolationError
from repro.interp.coarsening import coarsen_to_fpm_shape, satisfies_fpm_shape


class TestSatisfiesShape:
    def test_constant_speed_ok(self):
        pts = [(1.0, 5.0), (2.0, 5.0), (10.0, 5.0)]
        assert satisfies_fpm_shape(pts)

    def test_decreasing_speed_ok(self):
        pts = [(1.0, 5.0), (2.0, 4.0), (10.0, 1.0)]
        assert satisfies_fpm_shape(pts)

    def test_superlinear_growth_violates(self):
        # Speed doubling while size grows 50% -> angle increases.
        pts = [(1.0, 1.0), (1.5, 2.0)]
        assert not satisfies_fpm_shape(pts)

    def test_sublinear_growth_ok(self):
        # Speed may increase as long as it grows slower than x.
        pts = [(1.0, 2.0), (2.0, 3.0), (4.0, 4.0)]
        assert satisfies_fpm_shape(pts)

    def test_equal_angles_fail_strict_pass_lenient(self):
        pts = [(1.0, 2.0), (2.0, 4.0)]
        assert not satisfies_fpm_shape(pts, strict=True)
        assert satisfies_fpm_shape(pts, strict=False)

    def test_rejects_non_positive(self):
        with pytest.raises(InterpolationError):
            satisfies_fpm_shape([(0.0, 1.0)])
        with pytest.raises(InterpolationError):
            satisfies_fpm_shape([(1.0, -1.0)])


class TestCoarsening:
    def test_empty_rejected(self):
        with pytest.raises(InterpolationError):
            coarsen_to_fpm_shape([])

    def test_already_valid_untouched(self):
        pts = [(1.0, 5.0), (2.0, 4.5), (4.0, 4.0)]
        out = coarsen_to_fpm_shape(pts)
        assert out == pts

    def test_violating_point_clipped_down(self):
        pts = [(1.0, 1.0), (1.5, 2.0)]
        out = coarsen_to_fpm_shape(pts)
        assert out[0] == (1.0, 1.0)
        assert out[1][1] < 1.5  # clipped below the ray through (1, 1)

    def test_output_sorted(self):
        pts = [(5.0, 1.0), (1.0, 3.0), (3.0, 2.0)]
        out = coarsen_to_fpm_shape(pts)
        assert [x for x, _s in out] == [1.0, 3.0, 5.0]

    def test_duplicates_merged(self):
        out = coarsen_to_fpm_shape([(1.0, 2.0), (1.0, 4.0)])
        assert len(out) == 1
        assert out[0][1] == pytest.approx(3.0)

    def test_never_increases_speed(self):
        pts = [(1.0, 1.0), (2.0, 5.0), (3.0, 2.0), (4.0, 9.0)]
        out = coarsen_to_fpm_shape(pts)
        original = dict(pts)
        for x, s in out:
            assert s <= original[x] + 1e-12

    def test_rejects_non_positive(self):
        with pytest.raises(InterpolationError):
            coarsen_to_fpm_shape([(1.0, 0.0)])


@st.composite
def _speed_points(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    xs = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=1e4),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    ss = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=1e4), min_size=n, max_size=n
        )
    )
    return list(zip(xs, ss))


class TestCoarseningProperties:
    @given(_speed_points())
    @settings(max_examples=100)
    def test_output_satisfies_shape(self, pts):
        out = coarsen_to_fpm_shape(pts)
        assert satisfies_fpm_shape(out, strict=False)
        # Angles must be strictly decreasing up to float wobble.
        angles = [s / x for x, s in out]
        for a, b in zip(angles, angles[1:]):
            assert b < a * (1.0 + 1e-12)

    @given(_speed_points())
    @settings(max_examples=100)
    def test_speeds_only_clipped_down(self, pts):
        out = coarsen_to_fpm_shape(pts)
        # Merge duplicates as the function does, then compare.
        merged: dict = {}
        counts: dict = {}
        for x, s in pts:
            if x in merged:
                counts[x] += 1
                merged[x] += (s - merged[x]) / counts[x]
            else:
                merged[x] = s
                counts[x] = 1
        for x, s in out:
            assert s <= merged[x] + 1e-9
            assert s > 0.0

    @given(_speed_points())
    @settings(max_examples=60)
    def test_derived_time_strictly_increasing(self, pts):
        out = coarsen_to_fpm_shape(pts)
        times = [x / s for x, s in out]
        for t0, t1 in zip(times, times[1:]):
            assert t1 > t0
