"""Tests for the three computation performance models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.point import MeasurementPoint
from repro.errors import ModelError
from repro.interp.coarsening import satisfies_fpm_shape

from tests.conftest import model_from_time_fn, points_from_time_fn


class TestBase:
    def test_not_ready_raises(self):
        m = ConstantModel()
        assert not m.is_ready
        with pytest.raises(ModelError):
            m.time(10)

    def test_rejects_bad_points(self):
        m = ConstantModel()
        with pytest.raises(ModelError):
            m.update(MeasurementPoint(d=0, t=1.0))
        with pytest.raises(ModelError):
            m.update(MeasurementPoint(d=5, t=0.0))

    def test_points_recorded_in_order(self):
        m = ConstantModel()
        m.update(MeasurementPoint(d=5, t=1.0))
        m.update(MeasurementPoint(d=3, t=1.0))
        assert [p.d for p in m.points] == [5, 3]

    def test_update_many(self):
        m = PiecewiseModel()
        m.update_many(points_from_time_fn(lambda d: d / 10.0, [1, 2, 3]))
        assert m.count == 3

    def test_benchmark_cost(self):
        m = ConstantModel()
        m.update(MeasurementPoint(d=5, t=2.0, reps=3))
        assert m.benchmark_cost == pytest.approx(6.0)

    def test_size_range(self):
        m = PiecewiseModel()
        m.update_many(points_from_time_fn(lambda d: d, [5, 50, 20]))
        assert m.size_range == (5, 50)

    def test_size_range_empty_raises(self):
        with pytest.raises(ModelError):
            ConstantModel().size_range

    def test_speed_flops(self):
        m = model_from_time_fn(ConstantModel, lambda d: d / 100.0, [100])
        assert m.speed_flops(100, lambda x: 8.0 * x) == pytest.approx(800.0)


class TestConstantModel:
    def test_single_point(self):
        m = model_from_time_fn(ConstantModel, lambda d: d / 50.0, [100])
        assert m.constant_speed == pytest.approx(50.0)
        assert m.time(200) == pytest.approx(4.0)
        assert m.speed(123) == pytest.approx(50.0)

    def test_pooled_speed_over_points(self):
        m = ConstantModel()
        m.update(MeasurementPoint(d=100, t=1.0))  # 100 u/s
        m.update(MeasurementPoint(d=100, t=3.0))  # 33 u/s
        # Pooled: 200 units in 4 s.
        assert m.constant_speed == pytest.approx(50.0)

    def test_time_negative_size_rejected(self):
        m = model_from_time_fn(ConstantModel, lambda d: d, [10])
        with pytest.raises(ModelError):
            m.time(-5)

    def test_time_zero(self):
        m = model_from_time_fn(ConstantModel, lambda d: d, [10])
        assert m.time(0) == 0.0


class TestPiecewiseModel:
    def test_interpolates_speed_between_points(self):
        # Speed 100 at d=10, speed 50 at d=30 -> linear in between.
        m = PiecewiseModel()
        m.update(MeasurementPoint(d=10, t=0.1))
        m.update(MeasurementPoint(d=30, t=0.6))
        assert m.speed(10) == pytest.approx(100.0)
        assert m.speed(30) == pytest.approx(50.0)
        assert m.speed(20) == pytest.approx(75.0)

    def test_flat_extension_left_and_right(self):
        m = PiecewiseModel()
        m.update(MeasurementPoint(d=10, t=0.1))
        m.update(MeasurementPoint(d=30, t=0.6))
        assert m.speed(1) == pytest.approx(100.0)
        assert m.speed(1000) == pytest.approx(50.0)

    def test_time_at_zero(self):
        m = model_from_time_fn(PiecewiseModel, lambda d: d / 10.0, [10, 20])
        assert m.time(0) == 0.0

    def test_coarsening_applied(self):
        # Superlinear speed growth violates the shape; model must clip it.
        m = PiecewiseModel()
        m.update(MeasurementPoint(d=10, t=1.0))   # speed 10
        m.update(MeasurementPoint(d=12, t=0.6))   # speed 20: angle up!
        pts = m.coarsened_speed_points
        assert satisfies_fpm_shape(pts, strict=False)

    def test_time_strictly_increasing(self):
        # Even with wiggly data, the coarsened model's time function must
        # increase -- that is its contract with the geometric algorithm.
        m = PiecewiseModel()
        times = {10: 0.2, 20: 0.3, 30: 0.35, 40: 0.8, 50: 0.9, 60: 1.4}
        for d, t in times.items():
            m.update(MeasurementPoint(d=d, t=t))
        xs = [float(x) for x in range(1, 100, 3)]
        ts = [m.time(x) for x in xs]
        for a, b in zip(ts, ts[1:]):
            assert b > a

    def test_single_point_constant_speed(self):
        m = model_from_time_fn(PiecewiseModel, lambda d: d / 40.0, [100])
        assert m.speed(50) == pytest.approx(40.0)
        assert m.speed(500) == pytest.approx(40.0)


class TestAkimaModel:
    def test_linear_time_reproduced(self):
        m = model_from_time_fn(AkimaModel, lambda d: d / 100.0, [10, 50, 100, 200])
        for x in [10.0, 30.0, 120.0, 200.0]:
            assert m.time(x) == pytest.approx(x / 100.0, rel=1e-9)

    def test_origin_anchor(self):
        m = model_from_time_fn(AkimaModel, lambda d: d / 100.0, [100])
        assert m.time(0) == 0.0
        assert m.time(50) == pytest.approx(0.5)

    def test_no_origin_anchor_needs_two_points(self):
        # Rebuilds are lazy: the unfittable data surfaces at first evaluation.
        m = AkimaModel(include_origin=False)
        m.update(MeasurementPoint(d=10, t=1.0))
        with pytest.raises(ModelError):
            m.time(10)

    def test_extrapolation_increasing(self):
        m = model_from_time_fn(AkimaModel, lambda d: d / 10.0, [10, 20, 40])
        assert m.time(80) > m.time(40)
        assert m.time(400) > m.time(80)

    def test_derivative_continuous_at_knots(self):
        m = model_from_time_fn(
            AkimaModel, lambda d: 0.01 * d + 1e-5 * d * d, [10, 20, 40, 80]
        )
        for knot in [20.0, 40.0]:
            left = m.time_derivative(knot - 1e-7)
            right = m.time_derivative(knot + 1e-7)
            assert left == pytest.approx(right, rel=1e-3)

    def test_derivative_matches_fd(self):
        m = model_from_time_fn(
            AkimaModel, lambda d: 0.01 * d + 1e-5 * d * d, [10, 20, 40, 80]
        )
        for x in [15.0, 33.0, 66.0]:
            h = 1e-5
            fd = (m.time(x + h) - m.time(x - h)) / (2 * h)
            assert m.time_derivative(x) == pytest.approx(fd, rel=1e-3)

    def test_speed_positive(self):
        m = model_from_time_fn(AkimaModel, lambda d: 0.1 * math.sqrt(d), [4, 16, 64])
        for x in [1.0, 10.0, 100.0]:
            assert m.speed(x) > 0.0


class TestModelProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10_000),
                st.floats(min_value=1e-6, max_value=1e3),
            ),
            min_size=1,
            max_size=20,
            unique_by=lambda p: p[0],
        )
    )
    @settings(max_examples=60)
    def test_piecewise_time_monotone_property(self, raw):
        m = PiecewiseModel()
        m.update_many([MeasurementPoint(d=d, t=t) for d, t in raw])
        xs = sorted({d for d, _t in raw} | {1, 5000, 20000})
        ts = [m.time(float(x)) for x in xs]
        for a, b in zip(ts, ts[1:]):
            assert b > a

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10_000),
                st.floats(min_value=1e-6, max_value=1e3),
            ),
            min_size=1,
            max_size=15,
            unique_by=lambda p: p[0],
        )
    )
    @settings(max_examples=60)
    def test_all_models_positive_predictions(self, raw):
        points = [MeasurementPoint(d=d, t=t) for d, t in raw]
        for cls in (ConstantModel, PiecewiseModel, AkimaModel):
            m = cls()
            m.update_many(points)
            for x in [1.0, 100.0, 15000.0]:
                assert m.time(x) > 0.0
                assert m.speed(x) > 0.0
