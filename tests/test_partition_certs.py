"""Convergence certification and boundary validation of the partitioners.

Every iterative partitioner must say whether it converged (a
:class:`~repro.core.ConvergenceCert` on the returned distribution), warn
on cap exhaustion, and raise a typed
:class:`~repro.errors.ConvergenceError` in strict mode -- never return
silently from an exhausted loop.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.models import ConstantModel, PiecewiseModel
from repro.core.partition.basic import partition_constant
from repro.core.partition.cert import ConvergenceCert, certify
from repro.core.partition.dist import Distribution
from repro.core.partition.distributed import distributed_partition
from repro.core.partition.dynamic import DynamicPartitioner, LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.core.partition.validate import validate_partition_inputs, validate_total
from repro.core.point import MeasurementPoint
from repro.errors import ConvergenceError, ConvergenceWarning, PartitionError


def _model(pairs, cls=PiecewiseModel):
    m = cls()
    m.update_many([MeasurementPoint(d, t) for d, t in pairs])
    return m


def _linear_models(speeds, sizes=(10, 100, 1000)):
    return [_model([(d, d / s) for d in sizes]) for s in speeds]


class TestCertAttachment:
    def test_geometric_attaches_converged_cert(self):
        dist = partition_geometric(500, _linear_models([3.0, 1.0]))
        cert = dist.convergence
        assert isinstance(cert, ConvergenceCert)
        assert cert.algorithm == "geometric"
        assert cert.converged
        assert 0 < cert.iterations <= cert.max_iter
        assert "converged" in cert.summary()

    def test_numerical_attaches_cert(self):
        dist = partition_numerical(500, _linear_models([3.0, 1.0]))
        assert dist.convergence.algorithm == "numerical"
        assert dist.convergence.converged

    def test_basic_attaches_closed_form_cert(self):
        dist = partition_constant(500, _linear_models([3.0, 1.0], sizes=(10,)))
        assert dist.convergence.algorithm == "basic"
        assert dist.convergence.converged
        assert dist.convergence.iterations == 0

    def test_cert_to_dict_round_trips_floats(self):
        dist = partition_geometric(500, _linear_models([3.0, 1.0]))
        d = dist.convergence.to_dict()
        assert d["algorithm"] == "geometric"
        assert float(d["residual"]) == dist.convergence.residual

    def test_certs_sink_collects(self):
        sink = []
        partition_geometric(500, _linear_models([3.0, 1.0]), certs=sink)
        assert len(sink) == 1 and sink[0].algorithm == "geometric"


class TestCapExhaustion:
    def test_geometric_warns_not_silent(self):
        models = _linear_models([3.0, 1.0])
        with pytest.warns(ConvergenceWarning):
            dist = partition_geometric(500, models, max_iter=1)
        # Still a valid full partition, flagged as uncertified.
        assert sum(dist.sizes) == 500
        assert not dist.convergence.converged
        assert dist.convergence.iterations == 1

    def test_geometric_strict_raises_with_partial(self):
        models = _linear_models([3.0, 1.0])
        with pytest.raises(ConvergenceError) as exc_info:
            partition_geometric(500, models, max_iter=1, strict=True)
        exc = exc_info.value
        assert not exc.cert.converged
        assert exc.partial is not None
        assert sum(exc.partial.sizes) == 500

    def test_numerical_strict_raises_when_both_solvers_fail(self):
        # Flat time functions make the equal-time system degenerate (the
        # Jacobian is singular), so neither Newton nor the hybrid-Powell
        # fallback can meet a zero tolerance.  This used to return the
        # geometric seed silently; now it certifies the failure.
        models = [_model([(d, 1.0) for d in (10, 100, 1000)])
                  for _ in range(2)]
        with pytest.raises(ConvergenceError) as exc_info:
            partition_numerical(500, models, tol=0.0, max_iter=1, strict=True)
        assert "both failed" in exc_info.value.cert.detail
        # The partial result is still a valid full partition (the seed).
        assert sum(exc_info.value.partial.sizes) == 500

    def test_numerical_nonstrict_warns_when_both_solvers_fail(self):
        models = [_model([(d, 1.0) for d in (10, 100, 1000)])
                  for _ in range(2)]
        with pytest.warns(ConvergenceWarning):
            dist = partition_numerical(500, models, tol=0.0, max_iter=1)
        assert sum(dist.sizes) == 500
        assert not dist.convergence.converged


class TestDynamicCerts:
    @staticmethod
    def _measure(rates):
        def measure(sizes):
            return [
                None if d is None else MeasurementPoint(d, d / rate)
                for d, rate in zip(sizes, rates)
            ]
        return measure

    def test_dynamic_result_carries_cert(self):
        models = [PiecewiseModel() for _ in range(2)]
        dyn = DynamicPartitioner(
            partition_geometric, models, 200, self._measure([300.0, 100.0]),
            eps=0.05,
        )
        result = dyn.run()
        assert result.cert is not None
        assert result.cert.algorithm == "dynamic"
        assert result.cert.converged == result.converged

    def test_dynamic_strict_raises_on_cap(self):
        # Oscillating observed speeds keep the distribution moving, so a
        # 2-iteration cap cannot stabilise it.
        models = [PiecewiseModel() for _ in range(2)]
        flip = {"state": False}

        def measure(sizes):
            flip["state"] = not flip["state"]
            rates = [300.0, 10.0] if flip["state"] else [10.0, 300.0]
            return [
                None if d is None else MeasurementPoint(d, d / rate)
                for d, rate in zip(sizes, rates)
            ]

        dyn = DynamicPartitioner(
            partition_geometric, models, 200, measure,
            eps=1e-6, max_iterations=2, strict=True,
        )
        with pytest.raises(ConvergenceError):
            dyn.run()

    def test_load_balancer_harvests_certs(self):
        models = [PiecewiseModel() for _ in range(2)]
        lb = LoadBalancer(partition_geometric, models, total=200, threshold=0.0)
        lb.iterate([1.0, 3.0])
        lb.iterate([1.5, 2.5])
        assert lb.certs
        assert all(isinstance(c, ConvergenceCert) for c in lb.certs)


class TestDistributedCerts:
    @staticmethod
    def _bench(speeds):
        from repro.core.benchmark import PlatformBenchmark
        from repro.platform.cluster import Node, Platform
        from repro.platform.device import Device
        from repro.platform.noise import NoNoise
        from repro.platform.profiles import ConstantProfile

        platform = Platform([
            Node(f"n{i}", [Device(f"d{i}", ConstantProfile(s), noise=NoNoise())])
            for i, s in enumerate(speeds)
        ])
        return PlatformBenchmark(platform, unit_flops=1.0e6)

    def test_distributed_result_carries_cert(self):
        bench = self._bench([3.0e9, 1.0e9])
        result = distributed_partition(
            bench, partition_geometric, PiecewiseModel, 3000, eps=0.05
        )
        assert result.cert is not None
        assert result.cert.algorithm == "distributed"
        assert result.cert.converged == result.converged

    def test_distributed_cap_warns(self):
        bench = self._bench([3.0e9, 1.0e9])
        with pytest.warns(ConvergenceWarning):
            result = distributed_partition(
                bench, partition_geometric, PiecewiseModel, 3000,
                eps=-1.0, max_iterations=2,
            )
        assert not result.cert.converged

    def test_distributed_strict_raises(self):
        bench = self._bench([3.0e9, 1.0e9])
        with pytest.raises(ConvergenceError):
            distributed_partition(
                bench, partition_geometric, PiecewiseModel, 3000,
                eps=-1.0, max_iterations=2, strict=True,
            )


class TestCertifyHelper:
    def test_certify_attaches_and_returns(self):
        dist = Distribution.even(10, 2)
        cert = ConvergenceCert("x", True, 1, 5, 0.0, 1e-9)
        assert certify(dist, cert, strict=False) is dist
        assert dist.convergence is cert

    def test_certify_strict_raises_on_failure(self):
        dist = Distribution.even(10, 2)
        cert = ConvergenceCert("x", False, 5, 5, 1.0, 1e-9)
        with pytest.raises(ConvergenceError):
            certify(dist, cert, strict=True)

    def test_certify_nonstrict_warns_on_failure(self):
        dist = Distribution.even(10, 2)
        cert = ConvergenceCert("x", False, 5, 5, 1.0, 1e-9)
        with pytest.warns(ConvergenceWarning):
            certify(dist, cert, strict=False)


class TestBoundaryValidation:
    @pytest.mark.parametrize("fn", [partition_constant, partition_geometric,
                                    partition_numerical])
    def test_empty_models_rejected(self, fn):
        with pytest.raises(PartitionError, match="empty"):
            fn(100, [])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1, 1.5, True])
    def test_bad_totals_rejected(self, bad):
        models = _linear_models([1.0, 1.0])
        with pytest.raises(PartitionError):
            partition_geometric(bad, models)

    def test_validate_total_returns_int(self):
        assert validate_total(10.0) == 10
        assert isinstance(validate_total(10.0), int)

    def test_unready_model_rejected_with_actionable_message(self):
        with pytest.raises(PartitionError, match="measured point"):
            validate_partition_inputs(100, [PiecewiseModel()])

    def test_zero_total_skips_model_checks(self):
        assert validate_partition_inputs(0, [PiecewiseModel()]) == 0

    def test_zero_total_partitions_to_zeros(self):
        dist = partition_geometric(0, _linear_models([3.0, 1.0]))
        assert dist.sizes == [0, 0]
        assert dist.convergence.converged

    def test_domain_excluding_model_rejected(self):
        class BrokenModel(ConstantModel):
            def time(self, d):
                return float("nan")

        broken = BrokenModel()
        broken.update(MeasurementPoint(10, 1.0))
        with pytest.raises(PartitionError, match="domain excludes"):
            validate_partition_inputs(100, [broken])
