"""Netsplit suite: the partition-tolerant fleet, end to end.

Real worker processes, real sockets, real SIGKILLs.  The invariants the
replication layer (:mod:`repro.serve.replicate`) was built for:

* with ``replicas=2``, SIGKILLing any single shard mid-stream loses
  **zero acked plans** -- every plan served before the kill is served
  again afterwards, from a replica, **bit-identical** and without a
  re-solve;
* an asymmetric partition (home -> successor cut, reverse flowing)
  turns failed pushes into durable hints, drains them after the heal,
  and a follow-up anti-entropy pass finds **zero divergent keys**;
* a shard that rejoins empty (no WAL) is repaired by anti-entropy;
* the router propagates per-request deadlines (``X-Fupermod-Deadline``)
  and rejects exhausted budgets with 504 instead of queueing;
* failover draws from a token-bucket :class:`RetryBudget`, so a
  sustained partition degrades to fast failures, not a retry storm;
* a shard marked dead while actually healthy is revived by the router's
  half-open health probe without supervisor help.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.errors import FuPerModError
from repro.faults import NO_NET_FAULTS, NetFaultPlan
from repro.faults.serve import flood_totals
from repro.serve import PlanFleet, RetryBudget, ShardClient, affinity_key

pytestmark = [pytest.mark.netsplit, pytest.mark.fleet]


@pytest.fixture(scope="module")
def points_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("netsplit-points")
    assert cli_main([
        "build", "--platform", "fig4", "--sizes", "32,128,512",
        "--out", str(out),
    ]) == 0
    return out


def crash(fleet, shard_id):
    """SIGKILL without supervisor bookkeeping: the router must notice."""
    proc = fleet.shards[shard_id].proc
    proc.kill()
    proc.wait()


def wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def replication_gauges(fleet, shard_id):
    return fleet.shard_client(shard_id).metrics()["replication"]


def totals_homed_on(fleet, victim, count, seed=5):
    """Seeded totals whose affinity keys hash to ``victim``."""
    pool = [
        t for t in dict.fromkeys(
            flood_totals(96, pool=48, miss_rate=0.0, seed=seed)
        )
        if fleet.router.ring.lookup(affinity_key(t, "geometric", {}))
        == victim
    ]
    assert len(pool) >= count, "enlarge the pool: too few totals home here"
    return pool[:count]


def post_with_deadline(url, payload, deadline_s, timeout=10.0):
    """POST /plan with the budget riding the hop header, not the body."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            "X-Fupermod-Deadline": f"{deadline_s:.9f}",
        },
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestReplicaServing:
    def test_sigkill_loses_zero_acked_plans_bit_identically(
        self, points_dir
    ):
        with PlanFleet(points_dir, workers=3, probe=False,
                       replicas=2) as fleet:
            victim = "shard1"
            totals = totals_homed_on(fleet, victim, 3)
            client = ShardClient(fleet.url)
            try:
                acked = {}
                for total in totals:
                    cold = client.plan({"cmd": "plan", "total": total})
                    assert sum(cold["sizes"]) == total
                    status, warm_bytes = client.plan_raw(
                        {"cmd": "plan", "total": total}
                    )
                    assert status == 200
                    acked[total] = (cold["key"], warm_bytes)

                # Replication is async: wait for the home to push its
                # committed plans, then for the replicas to hold them.
                assert wait_for(
                    lambda: replication_gauges(fleet, victim)
                    ["pending_pushes"] == 0
                )
                for total, (key, _) in acked.items():
                    affinity = affinity_key(total, "geometric", {})
                    replica = fleet.router.ring.preference(affinity)[1]
                    assert replica != victim
                    assert wait_for(
                        lambda r=replica, k=key:
                        fleet.shard_client(r).get_cached(k) is not None
                    ), f"replica {replica} never received {key}"

                # The fleet metrics surface the replication layer.
                metrics = client.metrics()
                summary = metrics["fleet"]["replication"]
                assert summary["replica_set"] == 2
                assert summary["shards_reporting"] == 3
                assert summary["workers"]["replicas_written"] >= len(totals)
                assert "retry_budget_available" in summary["router"]

                crash(fleet, victim)  # no mark_dead: the router must cope

                for total, (key, warm_bytes) in acked.items():
                    status, failed_over = client.plan_raw(
                        {"cmd": "plan", "total": total}
                    )
                    assert status == 200
                    assert failed_over == warm_bytes, (
                        f"replica served different bytes for total={total}"
                    )
                    decoded = json.loads(failed_over)
                    assert decoded["cached"] is True  # a hit, not a re-solve
                # Only the first failed-over request pays a reroute; the
                # failure marks the home dead, so the rest go straight
                # to the replica.
                assert fleet.router.counters["reroutes"] >= 1
                assert fleet.router.counters["shard_errors"] >= 1
            finally:
                client.close()


class TestAsymmetricPartition:
    def test_partition_hints_then_heal_drains_and_converges(
        self, points_dir, tmp_path
    ):
        with PlanFleet(
            points_dir, workers=2, probe=False, replicas=2,
            cache_dir=tmp_path / "caches",
        ) as fleet:
            cut = NetFaultPlan(blocked=frozenset({("shard0", "shard1")}))
            assert fleet.shard_client("shard0").chaos(cut.to_dict())

            client = ShardClient(fleet.url)
            try:
                # Plans homed on shard0 cannot replicate: durable hints.
                blocked_totals = totals_homed_on(fleet, "shard0", 2)
                keys = {}
                for total in blocked_totals:
                    reply = client.plan({"cmd": "plan", "total": total})
                    assert sum(reply["sizes"]) == total  # serving unharmed
                    keys[total] = reply["key"]
                assert wait_for(
                    lambda: replication_gauges(fleet, "shard0")
                    ["pending_hints"] >= len(blocked_totals)
                )
                gauges = replication_gauges(fleet, "shard0")
                assert gauges["replicate_failures"] >= len(blocked_totals)
                assert gauges["durable_hints"] is True

                # The partition is *directed*: shard1 -> shard0 flows.
                reverse_total = totals_homed_on(fleet, "shard1", 1)[0]
                client.plan({"cmd": "plan", "total": reverse_total})
                assert wait_for(
                    lambda: replication_gauges(fleet, "shard1")
                    ["replicas_written"] >= 1
                )
                assert replication_gauges(
                    fleet, "shard0")["replicas_received"] >= 1

                # Heal; the roster re-broadcast wakes the hint drainer.
                assert fleet.shard_client("shard0").chaos(
                    NO_NET_FAULTS.to_dict()
                )
                fleet._broadcast_peers()
                assert wait_for(
                    lambda: replication_gauges(fleet, "shard0")
                    ["pending_hints"] == 0
                ), "hints never drained after the heal"
                assert replication_gauges(
                    fleet, "shard0")["hints_drained"] \
                    >= len(blocked_totals)

                # Every hinted plan reached its replica...
                for total, key in keys.items():
                    cached = fleet.shard_client("shard1").get_cached(key)
                    assert cached is not None
                    assert list(cached.sizes) == list(
                        client.plan({"cmd": "plan", "total": total})["sizes"]
                    )
                # ...and a post-heal anti-entropy pass finds nothing
                # left to repair: zero divergent keys.
                report = fleet.anti_entropy()
                assert report["divergent"] == 0
                assert report["failures"] == 0
                assert report["keys"] >= len(blocked_totals) + 1
            finally:
                client.close()


class TestAntiEntropyRepair:
    def test_rejoining_empty_shard_is_repaired(self, points_dir):
        with PlanFleet(points_dir, workers=2, probe=False,
                       replicas=2) as fleet:
            total = totals_homed_on(fleet, "shard0", 1)[0]
            client = ShardClient(fleet.url)
            try:
                key = client.plan({"cmd": "plan", "total": total})["key"]
                assert wait_for(
                    lambda: fleet.shard_client("shard1").get_cached(key)
                    is not None
                )
                # The replica dies and rejoins with nothing (no WAL).
                fleet.kill_shard("shard1")
                fleet.restart_shard("shard1")
                # restart_shard kicked a background repair; drive extra
                # passes while polling in case this test outraces it.
                def repaired():
                    if fleet.shard_client("shard1").get_cached(key):
                        return True
                    fleet.anti_entropy()
                    return bool(
                        fleet.shard_client("shard1").get_cached(key)
                    )

                assert wait_for(repaired), (
                    "anti-entropy never repaired the rejoined shard"
                )
                # Convergence: a fresh pass has nothing left to do.
                report = fleet.anti_entropy()
                assert report["divergent"] == 0
                # The repaired copy is the same entry, byte for byte.
                digests = fleet.digest_report()
                fps = {
                    sid: dict((e[0], e[1]) for e in d["entries"]).get(key)
                    for sid, d in digests.items()
                }
                assert fps["shard0"] is not None
                assert fps["shard0"] == fps["shard1"]
            finally:
                client.close()


class TestDeadlinePropagation:
    def test_exhausted_header_budget_rejects_with_504(self, points_dir):
        with PlanFleet(points_dir, workers=2, probe=False,
                       replicas=2) as fleet:
            # Through the router: the hop budget dies before any relay.
            status, body = post_with_deadline(
                f"{fleet.url}/plan", {"cmd": "plan", "total": 4040},
                deadline_s=1e-9,
            )
            assert status == 504
            assert "deadline" in body["error"]
            assert fleet.router.counters["deadline_rejected"] >= 1

            # Straight at a worker: the header merges into the payload
            # and the server's own deadline machinery answers 504.
            shard_url = fleet.shards["shard0"].url
            status, body = post_with_deadline(
                f"{shard_url}/plan", {"cmd": "plan", "total": 5050},
                deadline_s=1e-9,
            )
            assert status == 504
            assert "error" in body

            # A sane budget sails through both hops.
            status, body = post_with_deadline(
                f"{fleet.url}/plan", {"cmd": "plan", "total": 4040},
                deadline_s=30.0,
            )
            assert status == 200
            assert sum(body["sizes"]) == 4040


class TestRetryBudget:
    def test_token_bucket_contract(self):
        clock = [0.0]
        budget = RetryBudget(rate=1.0, burst=2.0, clock=lambda: clock[0])
        assert budget.try_acquire() and budget.try_acquire()
        assert not budget.try_acquire()  # bucket empty
        clock[0] += 1.0  # one second refills one token
        assert budget.try_acquire()
        assert not budget.try_acquire()
        clock[0] += 100.0  # refill caps at burst
        assert budget.available() == pytest.approx(2.0)

    def test_bad_parameters_refused(self):
        with pytest.raises(FuPerModError):
            RetryBudget(rate=-1.0)
        with pytest.raises(FuPerModError):
            RetryBudget(burst=0.0)

    def test_exhausted_budget_fails_fast_instead_of_storming(
        self, points_dir
    ):
        with PlanFleet(points_dir, workers=2, probe=False,
                       replicas=2) as fleet:
            total = totals_homed_on(fleet, "shard0", 1)[0]
            client = ShardClient(fleet.url)
            try:
                key = client.plan({"cmd": "plan", "total": total})["key"]
                assert wait_for(
                    lambda: fleet.shard_client("shard1").get_cached(key)
                    is not None
                )
                crash(fleet, "shard0")  # router not told
                # A budget too poor to afford one failover token: the
                # failed relay cannot fall over, so the request fails
                # fast with 503 instead of walking the candidate list.
                fleet.router.retry_budget = RetryBudget(rate=0.0, burst=0.5)
                reply = client.plan({"cmd": "plan", "total": total})
                assert reply.get("code") == 503
                assert fleet.router.counters["retry_budget_exhausted"] >= 1

                # With budget again, the same request serves from the
                # replica (the home is now marked dead: no token needed).
                fleet.router.retry_budget = RetryBudget()
                reply = client.plan({"cmd": "plan", "total": total})
                assert reply["cached"] is True
                assert sum(reply["sizes"]) == total
            finally:
                client.close()


class TestHalfOpenProbe:
    def test_probe_revives_a_healthy_shard_marked_dead(self, points_dir):
        with PlanFleet(points_dir, workers=2, probe=False,
                       replicas=2) as fleet:
            fleet.router.mark_dead("shard0")  # the process is still fine
            assert "shard0" not in fleet.router.alive()
            assert wait_for(
                lambda: "shard0" in fleet.router.alive(), timeout=10.0
            ), "half-open probe never revived the healthy shard"
            assert fleet.router.counters["health_probes"] >= 1
            assert fleet.router.counters["probe_revivals"] >= 1
