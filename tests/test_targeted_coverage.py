"""Targeted tests for less-travelled paths across the library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.core.point import MeasurementPoint
from repro.io.files import load_points, save_points
from repro.platform.presets import constant_speed_platform
from repro.platform.trace import EventKind, TraceRecorder

from tests.conftest import model_from_time_fn


class TestPointsFileProperty:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10**9),
                st.floats(min_value=1e-12, max_value=1e6),
                st.integers(min_value=1, max_value=1000),
                st.floats(min_value=0.0, max_value=1e3),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_save_load_identity(self, raw):
        import tempfile
        from pathlib import Path

        points = [
            MeasurementPoint(d=d, t=t, reps=r, ci=ci) for d, t, r, ci in raw
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.points"
            save_points(path, points)
            loaded, _meta = load_points(path)
        assert loaded == points


class TestGeometricWithOtherModels:
    def test_geometric_accepts_constant_models(self):
        models = [
            model_from_time_fn(ConstantModel, lambda d, s=s: d / s, [100])
            for s in (4.0, 1.0)
        ]
        dist = partition_geometric(500, models)
        assert dist.sizes == [400, 100]

    def test_geometric_accepts_akima_models(self):
        models = [
            model_from_time_fn(AkimaModel, lambda d, s=s: d / s, [10, 100, 1000])
            for s in (3.0, 1.0)
        ]
        dist = partition_geometric(4000, models)
        assert dist.sizes == [3000, 1000]


class TestNumericalFallbacks:
    def test_nonmonotone_model_still_partitions(self):
        # A pathological time function that dips: Newton may wander, but
        # the function must still return an exact-total distribution (via
        # scipy or the geometric fallback).
        class DippyModel(PiecewiseModel):
            def time(self, x):  # noqa: D102 - test double
                base = super().time(x)
                return base * (1.0 + 0.3 * np.sin(x / 50.0))

        models = [
            model_from_time_fn(DippyModel, lambda d: d / 10.0, [10, 100, 1000]),
            model_from_time_fn(PiecewiseModel, lambda d: d / 5.0, [10, 100, 1000]),
        ]
        dist = partition_numerical(900, models)
        assert dist.total == 900
        assert all(p.d >= 0 for p in dist.parts)

    def test_single_point_models(self):
        models = [
            model_from_time_fn(AkimaModel, lambda d: d / 7.0, [50]),
            model_from_time_fn(AkimaModel, lambda d: d / 3.0, [50]),
        ]
        dist = partition_numerical(1000, models)
        assert dist.total == 1000
        assert dist.sizes[0] == pytest.approx(700, abs=5)


class TestMatmulSimulationTrace:
    def test_trace_spans_recorded(self):
        from repro.apps.matmul.simulation import even_column_partition, simulate_matmul

        platform = constant_speed_platform([2.0e9, 1.0e9])
        trace = TraceRecorder()
        result = simulate_matmul(
            platform, even_column_partition(2, 8), b=16, trace=trace
        )
        kinds = {e.kind for e in trace.events}
        assert EventKind.COMPUTE in kinds
        assert EventKind.COMM in kinds
        # Trace horizon matches the simulated makespan.
        _lo, hi = trace.span
        assert hi == pytest.approx(result.total_time, rel=0.2)
        assert trace.render(width=40)


class TestDistributionEdgeCases:
    def test_from_sizes_accepts_any_sequence(self):
        from repro.core.partition.dist import Distribution

        dist = Distribution.from_sizes(tuple([1, 2, 3]))
        assert dist.total == 6

    def test_even_when_size_exceeds_total(self):
        from repro.core.partition.dist import Distribution

        dist = Distribution.even(2, 5)
        assert dist.total == 2
        assert sorted(dist.sizes, reverse=True)[:2] == [1, 1]


class TestPrecisionPresets:
    def test_thorough_used_by_benchmark(self):
        from repro.core.benchmark import Benchmark
        from repro.core.kernel import SimulatedKernel
        from repro.core.precision import Precision
        from repro.platform.device import Device
        from repro.platform.noise import GaussianNoise
        from repro.platform.profiles import ConstantProfile

        dev = Device("d", ConstantProfile(1.0e9), noise=GaussianNoise(0.05))
        kernel = SimulatedKernel(dev, 1.0e6, rng=np.random.default_rng(0))
        point = Benchmark(kernel, Precision.thorough()).run(100)
        assert point.reps >= 5
        # Tight interval achieved or cap hit.
        assert point.reps <= 100
