"""Tests for the simulated communicator."""

from __future__ import annotations

import math

import pytest

from repro.errors import CommunicationError
from repro.mpi.comm import SimCommunicator
from repro.mpi.network import LinkModel, Network


def _comm(size: int, latency: float = 1e-3, bandwidth: float = 1e6) -> SimCommunicator:
    link = LinkModel(latency, bandwidth)
    return SimCommunicator(size, network=Network(inter_node=link, intra_node=link))


class TestBasics:
    def test_size(self):
        assert SimCommunicator(4).size == 4

    def test_invalid_size(self):
        with pytest.raises(CommunicationError):
            SimCommunicator(0)

    def test_clocks_start_at_zero(self):
        c = SimCommunicator(3)
        assert c.times() == [0.0, 0.0, 0.0]
        assert c.max_time() == 0.0

    def test_compute_advances_one_rank(self):
        c = SimCommunicator(2)
        c.compute(0, 1.5)
        assert c.time(0) == 1.5
        assert c.time(1) == 0.0

    def test_negative_compute_rejected(self):
        with pytest.raises(CommunicationError):
            SimCommunicator(1).compute(0, -1.0)

    def test_bad_rank_rejected(self):
        c = SimCommunicator(2)
        with pytest.raises(CommunicationError):
            c.compute(2, 1.0)
        with pytest.raises(CommunicationError):
            c.time(-1)

    def test_reset(self):
        c = SimCommunicator(2)
        c.compute(0, 5.0)
        c.reset()
        assert c.times() == [0.0, 0.0]


class TestBarrier:
    def test_barrier_syncs_to_max(self):
        c = SimCommunicator(3)
        c.compute(0, 1.0)
        c.compute(1, 3.0)
        t = c.barrier()
        assert t == 3.0
        assert c.times() == [3.0, 3.0, 3.0]

    def test_partial_barrier(self):
        c = SimCommunicator(3)
        c.compute(0, 1.0)
        c.compute(2, 5.0)
        c.barrier(ranks=[0, 1])
        assert c.time(0) == 1.0
        assert c.time(1) == 1.0
        assert c.time(2) == 5.0

    def test_empty_group_rejected(self):
        with pytest.raises(CommunicationError):
            SimCommunicator(2).barrier(ranks=[])


class TestSend:
    def test_send_cost(self):
        c = _comm(2)
        done = c.send(0, 1, 1e6)  # 1e-3 + 1.0
        assert done == pytest.approx(1.001)
        assert c.time(1) == pytest.approx(1.001)

    def test_send_waits_for_sender(self):
        c = _comm(2)
        c.compute(0, 5.0)
        done = c.send(0, 1, 0)
        assert done == pytest.approx(5.0)

    def test_send_waits_for_receiver(self):
        c = _comm(2)
        c.compute(1, 7.0)
        done = c.send(0, 1, 1e6)
        assert done == pytest.approx(8.001)

    def test_self_send_free(self):
        c = _comm(2)
        assert c.send(0, 0, 1e9) == 0.0


class TestBcast:
    def test_single_rank_noop(self):
        c = _comm(1)
        assert c.bcast(0, 1e6) == 0.0

    def test_two_ranks_one_message(self):
        c = _comm(2)
        t = c.bcast(0, 1e6)
        assert t == pytest.approx(1.001)

    def test_log_rounds_scaling(self):
        # p ranks -> ceil(log2 p) rounds for the deepest leaf.
        msg = 1e6
        per_msg = 1e-3 + 1.0
        c = _comm(8)
        t = c.bcast(0, msg)
        assert t == pytest.approx(3 * per_msg)

    def test_bcast_synchronises_start(self):
        c = _comm(2)
        c.compute(1, 10.0)
        t = c.bcast(0, 1e6)
        assert t == pytest.approx(11.001)

    def test_root_must_be_in_group(self):
        c = _comm(4)
        with pytest.raises(CommunicationError):
            c.bcast(0, 10, ranks=[1, 2])

    def test_all_ranks_advance(self):
        c = _comm(5)
        c.bcast(0, 1e3)
        assert all(t > 0 for t in c.times())

    def test_nonzero_root(self):
        c = _comm(4)
        t = c.bcast(2, 1e6)
        assert t > 0
        assert c.time(2) > 0


class TestAllgatherv:
    def test_single_rank_noop(self):
        c = _comm(1)
        assert c.allgatherv([100.0]) == 0.0

    def test_ring_steps(self):
        # Equal chunks of 1e6 bytes, 4 ranks -> 3 steps of (1e-3 + 1).
        c = _comm(4)
        t = c.allgatherv([1e6] * 4)
        assert t == pytest.approx(3 * 1.001)

    def test_largest_chunk_dominates_each_step(self):
        c = _comm(3)
        t = c.allgatherv([1e6, 0.0, 0.0])
        # The big chunk travels in both steps.
        assert t == pytest.approx(2 * 1.001)

    def test_everyone_finishes_together(self):
        c = _comm(4)
        c.compute(2, 5.0)
        c.allgatherv([10.0] * 4)
        assert len(set(c.times())) == 1

    def test_size_mismatch_rejected(self):
        with pytest.raises(CommunicationError):
            _comm(3).allgatherv([1.0, 2.0])


class TestScatterGather:
    def test_scatterv_linear_cost(self):
        c = _comm(3)
        t = c.scatterv(0, [0.0, 1e6, 1e6])
        # Root sends two messages sequentially.
        assert t == pytest.approx(2 * 1.001)

    def test_scatterv_root_unmoved_chunk(self):
        c = _comm(2)
        c.scatterv(0, [1e9, 8.0])
        # Root's own (huge) chunk costs nothing; rank 1 pays only for its
        # own small message.
        assert c.time(1) == pytest.approx(1e-3 + 8e-6)

    def test_gatherv_linear_cost(self):
        c = _comm(3)
        t = c.gatherv(0, [0.0, 1e6, 1e6])
        assert t >= 1.001

    def test_gatherv_root_in_group(self):
        with pytest.raises(CommunicationError):
            _comm(3).gatherv(0, [1.0, 1.0], ranks=[1, 2])

    def test_scatterv_size_mismatch(self):
        with pytest.raises(CommunicationError):
            _comm(2).scatterv(0, [1.0])


class TestScenario:
    def test_compute_then_allgather_iteration(self):
        # A mini data-parallel iteration: unequal compute, then allgather.
        c = _comm(3, latency=0.0, bandwidth=math.inf)
        for r, w in enumerate([1.0, 2.0, 3.0]):
            c.compute(r, w)
        t = c.allgatherv([1.0, 1.0, 1.0])
        # With free communication, the iteration ends at the slowest rank.
        assert t == pytest.approx(3.0)
        assert c.times() == [3.0, 3.0, 3.0]
