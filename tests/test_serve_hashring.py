"""Consistent-hash ring: determinism, spread, and minimal remapping.

The ring is the fleet's placement function; these tests pin the three
properties the router and sibling fill depend on:

* placement is a pure function of the shard-id strings (two processes,
  or a restarted router, build identical rings);
* membership changes remap only the touched arcs (~K/N of K keys), not
  the whole keyspace like a modulo hash would;
* :meth:`~repro.serve.hashring.HashRing.preference` yields each shard
  exactly once, home first -- the deterministic fail-over order.
"""

from __future__ import annotations

import pytest

from repro.errors import FuPerModError
from repro.serve import HashRing
from repro.serve.fingerprint import affinity_key

pytestmark = [pytest.mark.serve, pytest.mark.fleet]

SHARDS = ("shard0", "shard1", "shard2", "shard3")

KEYS = [affinity_key(10_000 + 17 * i, "geometric", {}) for i in range(2000)]


class TestDeterminism:
    def test_identical_across_instances(self):
        a = HashRing(SHARDS)
        b = HashRing(reversed(SHARDS))  # insertion order must not matter
        assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]
        assert a.shards == b.shards == tuple(sorted(SHARDS))

    def test_preference_is_stable(self):
        ring = HashRing(SHARDS)
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert order == ring.preference(key)
            assert order[0] == ring.lookup(key)
            assert sorted(order) == sorted(SHARDS)  # each shard once

    def test_preference_limit(self):
        ring = HashRing(SHARDS)
        assert len(ring.preference(KEYS[0], limit=2)) == 2
        assert ring.preference(KEYS[0], limit=2) == ring.preference(KEYS[0])[:2]

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.preference("anything") == []
        with pytest.raises(FuPerModError):
            ring.lookup("anything")


class TestMembership:
    def test_double_add_and_missing_remove_refused(self):
        ring = HashRing(SHARDS)
        with pytest.raises(FuPerModError):
            ring.add("shard0")
        with pytest.raises(FuPerModError):
            ring.remove("nope")
        with pytest.raises(FuPerModError):
            HashRing(SHARDS, replicas=0)

    def test_join_remaps_at_most_its_share(self):
        before = HashRing(SHARDS)
        placed = {k: before.lookup(k) for k in KEYS}
        after = HashRing(SHARDS)
        after.add("shard4")
        moved = [k for k in KEYS if after.lookup(k) != placed[k]]
        # Ideal share is K/(N+1) = 20%; virtual nodes keep the real arc
        # within a modest factor of that.  A modulo hash would move ~80%.
        assert len(moved) / len(KEYS) < 0.40
        # Every moved key must have moved *to* the joiner, nowhere else.
        assert all(after.lookup(k) == "shard4" for k in moved)

    def test_leave_remaps_only_the_leavers_keys(self):
        ring = HashRing(SHARDS)
        placed = {k: ring.lookup(k) for k in KEYS}
        ring.remove("shard2")
        for key in KEYS:
            if placed[key] == "shard2":
                assert ring.lookup(key) != "shard2"
            else:  # survivors' keys must not move at all
                assert ring.lookup(key) == placed[key]

    def test_rejoin_restores_placement(self):
        ring = HashRing(SHARDS)
        placed = {k: ring.lookup(k) for k in KEYS}
        ring.remove("shard1")
        ring.add("shard1")
        assert {k: ring.lookup(k) for k in KEYS} == placed


class TestSpread:
    def test_no_shard_starves(self):
        ring = HashRing(SHARDS)
        counts = {s: 0 for s in SHARDS}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        share = len(KEYS) / len(SHARDS)
        for shard, count in counts.items():
            assert 0.4 * share < count < 1.8 * share, (
                f"{shard} owns {count}/{len(KEYS)} keys"
            )


class TestAffinityKey:
    def test_excludes_model_fingerprints(self):
        # Identical requests must share a key regardless of model state:
        # a refit must not remap the fleet's placement.
        assert affinity_key(1000, "geometric", {}) == affinity_key(
            1000, "geometric", {}
        )
        assert affinity_key(1000, "geometric", {}) != affinity_key(
            1001, "geometric", {}
        )
        assert affinity_key(1000, "geometric", {}) != affinity_key(
            1000, "dp", {}
        )
        assert affinity_key(1000, None, {}) != affinity_key(
            1000, None, {"tol": 0.5}
        )
