"""Tests for the running-statistics helpers."""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._stats import RunningStats, student_t_quantile


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_sample(self):
        s = RunningStats()
        s.add(5.0)
        assert s.count == 1
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.confidence_halfwidth() == math.inf

    def test_mean_of_known_samples(self):
        s = RunningStats()
        for x in [1.0, 2.0, 3.0, 4.0]:
            s.add(x)
        assert s.mean == pytest.approx(2.5)

    def test_variance_matches_statistics_module(self):
        samples = [0.1, 0.15, 0.12, 0.09, 0.2, 0.11]
        s = RunningStats()
        for x in samples:
            s.add(x)
        assert s.variance == pytest.approx(statistics.variance(samples))
        assert s.stddev == pytest.approx(statistics.stdev(samples))

    def test_stderr(self):
        samples = [1.0, 2.0, 3.0]
        s = RunningStats()
        for x in samples:
            s.add(x)
        assert s.stderr == pytest.approx(statistics.stdev(samples) / math.sqrt(3))

    def test_identical_samples_zero_interval(self):
        s = RunningStats()
        for _ in range(5):
            s.add(0.25)
        assert s.variance == pytest.approx(0.0, abs=1e-18)
        assert s.confidence_halfwidth() == pytest.approx(0.0, abs=1e-12)
        assert s.relative_error() == pytest.approx(0.0, abs=1e-12)

    def test_relative_error_zero_mean_is_inf(self):
        s = RunningStats()
        s.add(0.0)
        s.add(0.0)
        assert s.relative_error() == math.inf

    def test_confidence_interval_contains_known_value(self):
        # 95% CI of the mean of [9.9, 10.1] repeated should straddle 10.
        s = RunningStats()
        for x in [9.9, 10.1, 9.95, 10.05, 10.0]:
            s.add(x)
        hw = s.confidence_halfwidth(0.95)
        assert s.mean - hw <= 10.0 <= s.mean + hw

    def test_samples_recorded(self):
        s = RunningStats()
        s.add(1.0)
        s.add(2.0)
        assert s.samples == [1.0, 2.0]

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=2, max_size=50))
    def test_welford_matches_two_pass(self, samples):
        s = RunningStats()
        for x in samples:
            s.add(x)
        assert s.mean == pytest.approx(statistics.fmean(samples), rel=1e-9)
        assert s.variance == pytest.approx(statistics.variance(samples), rel=1e-6, abs=1e-12)


class TestStudentT:
    def test_known_quantile_dof10(self):
        # Classic table value: t(0.975, 10) = 2.228.
        assert student_t_quantile(0.95, 10) == pytest.approx(2.228, abs=2e-3)

    def test_known_quantile_dof1(self):
        # t(0.975, 1) = 12.706.
        assert student_t_quantile(0.95, 1) == pytest.approx(12.706, abs=1e-2)

    def test_approaches_normal_for_large_dof(self):
        assert student_t_quantile(0.95, 100000) == pytest.approx(1.9600, abs=1e-3)

    def test_higher_confidence_wider(self):
        assert student_t_quantile(0.99, 10) > student_t_quantile(0.95, 10)

    @pytest.mark.parametrize("cl", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_confidence_level(self, cl):
        with pytest.raises(ValueError):
            student_t_quantile(cl, 10)

    def test_invalid_dof(self):
        with pytest.raises(ValueError):
            student_t_quantile(0.95, 0)
