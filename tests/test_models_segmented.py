"""Tests for the segmented (piecewise analytical) model of ref. [14]."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import LinearModel, SegmentedLinearModel
from repro.core.partition.numerical import partition_numerical
from repro.core.point import MeasurementPoint
from repro.errors import ModelError

from tests.conftest import model_from_time_fn


def _cliff(d: float) -> float:
    return d / 1000.0 if d <= 1000 else 1.0 + (d - 1000) / 100.0


_CLIFF_SIZES = [100, 300, 500, 800, 1000, 1200, 1500, 2000, 3000]


class TestSegmentedLinearModel:
    def test_single_point_bandwidth_line(self):
        m = SegmentedLinearModel()
        m.update(MeasurementPoint(d=100, t=2.0))
        assert m.time(50) == pytest.approx(1.0)
        assert len(m.segments) == 1

    def test_affine_data_one_segment(self):
        m = model_from_time_fn(
            SegmentedLinearModel, lambda d: 0.5 + 0.01 * d, [10, 100, 500, 1000]
        )
        assert len(m.segments) == 1
        assert m.time(700) == pytest.approx(7.5, rel=1e-9)

    def test_cliff_recovered_with_two_segments(self):
        m = model_from_time_fn(SegmentedLinearModel, _cliff, _CLIFF_SIZES)
        assert len(m.segments) == 2
        for d in [400.0, 900.0, 1600.0, 2500.0]:
            assert m.time(d) == pytest.approx(_cliff(d), rel=1e-6)

    def test_beats_plain_linear_on_cliff(self):
        seg = model_from_time_fn(SegmentedLinearModel, _cliff, _CLIFF_SIZES)
        lin = model_from_time_fn(LinearModel, _cliff, _CLIFF_SIZES)
        err_seg = sum(abs(seg.time(d) - _cliff(d)) for d in [400, 900, 1600])
        err_lin = sum(abs(lin.time(d) - _cliff(d)) for d in [400, 900, 1600])
        assert err_seg < 0.05 * err_lin

    def test_segment_count_capped(self):
        rng = np.random.default_rng(0)
        m = SegmentedLinearModel(max_segments=2)
        for d in range(1, 30):
            m.update(MeasurementPoint(d=d * 10, t=float(rng.uniform(0.5, 2.0))))
        assert len(m.segments) <= 2

    def test_parsimonious_segment_choice(self):
        # Clean linear data must not be split, however generous the cap.
        m = SegmentedLinearModel(max_segments=4)
        m.update_many(
            [MeasurementPoint(d=d, t=0.002 * d) for d in [10, 50, 100, 400, 900]]
        )
        assert len(m.segments) == 1

    def test_boundaries_cover_positive_axis(self):
        m = model_from_time_fn(SegmentedLinearModel, _cliff, _CLIFF_SIZES)
        segs = m.segments
        assert segs[0].x_lo == 0.0
        assert segs[-1].x_hi == float("inf")
        for a, b in zip(segs, segs[1:]):
            assert a.x_hi == b.x_lo

    def test_derivative_piecewise_constant(self):
        m = model_from_time_fn(SegmentedLinearModel, _cliff, _CLIFF_SIZES)
        assert m.time_derivative(400) == pytest.approx(0.001, rel=1e-6)
        assert m.time_derivative(2500) == pytest.approx(0.01, rel=1e-6)

    def test_usable_by_numerical_partitioner(self):
        models = [
            model_from_time_fn(SegmentedLinearModel, _cliff, _CLIFF_SIZES),
            model_from_time_fn(
                SegmentedLinearModel, lambda d: d / 500.0, [100, 1000, 3000]
            ),
        ]
        dist = partition_numerical(3000, models)
        assert dist.total == 3000
        t0 = models[0].time(dist.sizes[0])
        t1 = models[1].time(dist.sizes[1])
        assert abs(t0 - t1) <= 0.05 * max(t0, t1)

    def test_time_positive_and_zero_at_origin(self):
        m = model_from_time_fn(SegmentedLinearModel, _cliff, _CLIFF_SIZES)
        assert m.time(0) == 0.0
        assert m.time(1) > 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            SegmentedLinearModel(max_segments=0)
        with pytest.raises(ModelError):
            SegmentedLinearModel(tolerance=-1.0)
        m = model_from_time_fn(SegmentedLinearModel, _cliff, _CLIFF_SIZES)
        with pytest.raises(ModelError):
            m.time(-5)

    def test_registered(self):
        from repro.core.registry import available_models

        assert "segmented" in available_models()

    @given(
        st.floats(min_value=1e-4, max_value=1e-2),
        st.floats(min_value=1.5, max_value=20.0),
        st.integers(min_value=300, max_value=3000),
    )
    @settings(max_examples=30, deadline=None)
    def test_two_regime_recovery_property(self, slope, jump, breakpoint):
        def tf(d):
            if d <= breakpoint:
                return slope * d
            return slope * breakpoint + slope * jump * (d - breakpoint)

        sizes = sorted(
            {int(breakpoint * f) for f in (0.2, 0.45, 0.7, 0.95, 1.0)}
            | {int(breakpoint * f) for f in (1.3, 1.8, 2.5, 3.5)}
        )
        sizes = [s for s in sizes if s >= 1]
        # Exact (noise-free) data: zero tolerance picks the true regime
        # count rather than trading accuracy for parsimony.
        m = SegmentedLinearModel(tolerance=0.0)
        m.update_many([MeasurementPoint(d=d, t=tf(d)) for d in sizes])
        # Predictions inside both regimes are accurate.
        probe_lo = breakpoint * 0.5
        probe_hi = breakpoint * 2.0
        assert m.time(probe_lo) == pytest.approx(tf(probe_lo), rel=0.1)
        assert m.time(probe_hi) == pytest.approx(tf(probe_hi), rel=0.1)
