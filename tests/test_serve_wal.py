"""Write-ahead journal and durable plan cache: the crash-safety contract.

The invariants under test:

* **write-ahead** -- a plan is journaled (fsynced) before it is applied,
  so once ``put`` returns it is committed;
* **bit-for-bit recovery** -- ``snapshot + WAL replay`` reproduces the
  cache exactly: same entries, same LRU order, same capacity evictions;
* **torn-tail tolerance** -- a journal cut mid-record (SIGKILL during an
  append) recovers everything before the tear and truncates the tear
  away, so later appends land on a clean record boundary;
* **interior corruption refusal** -- damage anywhere *except* the tail
  raises :class:`PersistenceError` instead of replaying records of
  unknown integrity;
* **compaction** -- the journal folds into the snapshot atomically, on
  threshold and on close, and recovery after compaction still matches.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import PersistenceError
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanResult
from repro.serve.wal import DurablePlanCache, PlanWAL

from tests.test_serve_cache import FakeClock, plan

pytestmark = pytest.mark.serve


def entries_of(cache: PlanCache):
    """The cache's full observable content, LRU order included."""
    return cache.to_payload()


def durable(tmp_path, **kwargs) -> DurablePlanCache:
    return DurablePlanCache(tmp_path / "plans.json", **kwargs)


class TestPlanWAL:
    """The journal file itself."""

    def test_missing_journal_replays_empty(self, tmp_path):
        wal = PlanWAL(tmp_path / "never-written.wal")
        replayed = wal.replay()
        assert replayed.ops == []
        assert replayed.valid_bytes == 0
        assert not replayed.dropped_tail

    def test_append_replay_roundtrip(self, tmp_path):
        wal = PlanWAL(tmp_path / "plans.wal")
        wal.append_put("k1", "m1", plan("k1"))
        wal.append_invalidate("k1")
        wal.append_clear()
        wal.close()
        replayed = wal.replay()
        assert [op["op"] for op in replayed.ops] == ["put", "invalidate", "clear"]
        assert replayed.ops[0]["key"] == "k1"
        assert not replayed.dropped_tail
        assert replayed.valid_bytes == (tmp_path / "plans.wal").stat().st_size
        assert PlanResult.from_dict(replayed.ops[0]["result"]) == plan("k1")

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        wal = PlanWAL(tmp_path / "plans.wal")
        wal.append_put("k1", "m1", plan("k1"))
        wal.append_put("k2", "m1", plan("k2"))
        wal.close()
        data = (tmp_path / "plans.wal").read_bytes()
        cut = data.index(b"\n") + 1 + 20  # 20 bytes into record 2
        (tmp_path / "plans.wal").write_bytes(data[:cut])
        replayed = wal.replay()
        assert [op["key"] for op in replayed.ops] == ["k1"]
        assert replayed.dropped_tail

    def test_truncate_then_append_keeps_journal_clean(self, tmp_path):
        path = tmp_path / "plans.wal"
        wal = PlanWAL(path)
        wal.append_put("k1", "m1", plan("k1"))
        wal.append_put("k2", "m1", plan("k2"))
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear the final record
        replayed = wal.replay()
        wal.truncate(replayed.valid_bytes)
        wal.append_put("k3", "m1", plan("k3"))
        wal.close()
        healed = wal.replay()
        assert [op["key"] for op in healed.ops] == ["k1", "k3"]
        assert not healed.dropped_tail

    def test_interior_corruption_refused(self, tmp_path):
        path = tmp_path / "plans.wal"
        wal = PlanWAL(path)
        for key in ("k1", "k2", "k3"):
            wal.append_put(key, "m1", plan(key))
        wal.close()
        lines = path.read_bytes().split(b"\n")
        lines[1] = b'{"not": "a wal record"}'
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(PersistenceError):
            wal.replay()

    def test_undecodable_bytes_refused(self, tmp_path):
        path = tmp_path / "plans.wal"
        wal = PlanWAL(path)
        wal.append_put("k1", "m1", plan("k1"))
        wal.append_put("k2", "m1", plan("k2"))
        wal.close()
        data = bytearray(path.read_bytes())
        data[3] ^= 0xFF  # interior byte flip -> invalid UTF-8 / JSON
        path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError):
            wal.replay()

    def test_foreign_fingerprint_records_are_skipped(self, tmp_path):
        path = tmp_path / "plans.wal"
        wal = PlanWAL(path)
        wal.append_put("k1", "m1", plan("k1"))
        wal.close()
        record = json.loads(path.read_text().strip())
        record["fp"] = "fp0-from-the-past"
        record["key"] = "k-old"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        replayed = wal.replay()
        assert [op["key"] for op in replayed.ops] == ["k1"]
        assert not replayed.dropped_tail  # skipped, but well-formed

    def test_malformed_put_payload_is_corruption(self, tmp_path):
        path = tmp_path / "plans.wal"
        wal = PlanWAL(path)
        wal.append_put("k1", "m1", plan("k1"))
        wal.close()
        record = json.loads(path.read_text().strip())
        del record["result"]["sizes"]
        path.write_text(json.dumps(record) + "\n")
        path_second = json.dumps({"op": "put"}) + "\n"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(path_second)
        with pytest.raises(PersistenceError):
            wal.replay()


class TestDurableRecovery:
    """snapshot + WAL replay == the cache that was killed."""

    def test_puts_recover_bit_for_bit(self, tmp_path):
        cache = durable(tmp_path)
        for key in ("a", "b", "c"):
            cache.put(key, plan(key), "m1")
        cache.get("a")  # touch: a becomes most-recent
        before = entries_of(cache)
        cache.wal.close()  # simulate SIGKILL: no compact, no snapshot

        recovered = durable(tmp_path)
        recovered.recover()
        # Replay cannot reproduce the post-put `get` LRU touch (gets are
        # not journaled -- they are not mutations), so compare puts only.
        assert {e["key"] for e in entries_of(recovered)} == {"a", "b", "c"}
        for entry, original in zip(
            sorted(entries_of(recovered), key=lambda e: e["key"]),
            sorted(before, key=lambda e: e["key"]),
        ):
            assert entry == original

    def test_recovery_reproduces_capacity_evictions(self, tmp_path):
        cache = durable(tmp_path, capacity=2)
        for key in ("a", "b", "c", "d"):
            cache.put(key, plan(key), "m1")
        before = entries_of(cache)
        assert [e["key"] for e in before] == ["c", "d"]
        cache.wal.close()

        recovered = durable(tmp_path, capacity=2)
        recovered.recover()
        assert entries_of(recovered) == before

    def test_invalidate_and_clear_recover(self, tmp_path):
        cache = durable(tmp_path)
        cache.put("a", plan("a"), "m1")
        cache.put("b", plan("b"), "m1")
        assert cache.invalidate("a")
        before = entries_of(cache)
        cache.wal.close()

        recovered = durable(tmp_path)
        recovered.recover()
        assert entries_of(recovered) == before

        cache2 = durable(tmp_path / "second")
        cache2.put("x", plan("x"), "m1")
        cache2.clear()
        cache2.put("y", plan("y"), "m1")
        cache2.wal.close()
        recovered2 = durable(tmp_path / "second")
        recovered2.recover()
        assert [e["key"] for e in entries_of(recovered2)] == ["y"]

    def test_invalidating_a_missing_key_is_not_journaled(self, tmp_path):
        cache = durable(tmp_path)
        assert not cache.invalidate("never-stored")
        assert cache.wal.records == 0

    def test_torn_tail_loses_at_most_the_last_commit(self, tmp_path):
        cache = durable(tmp_path)
        for key in ("a", "b", "c"):
            cache.put(key, plan(key), "m1")
        cache.wal.close()
        wal_path = cache.wal.path
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-10])  # die mid-append of "c"

        recovered = durable(tmp_path)
        snapshot_entries, wal_ops = recovered.recover()
        assert (snapshot_entries, wal_ops) == (0, 2)
        assert {e["key"] for e in entries_of(recovered)} == {"a", "b"}
        # The tear was truncated: appending and re-recovering stays clean.
        recovered.put("d", plan("d"), "m1")
        recovered.wal.close()
        third = durable(tmp_path)
        third.recover()
        assert {e["key"] for e in entries_of(third)} == {"a", "b", "d"}

    def test_recovery_grants_fresh_ttl_lease(self, tmp_path):
        clock = FakeClock()
        cache = durable(tmp_path, ttl=10.0, clock=clock)
        cache.put("a", plan("a"), "m1")
        cache.wal.close()

        late_clock = FakeClock()
        late_clock.now = 1e6  # a restart far in the future
        recovered = durable(tmp_path, ttl=10.0, clock=late_clock)
        recovered.recover()
        assert recovered.get("a") is not None

    def test_replayed_operations_are_not_rejournaled(self, tmp_path):
        cache = durable(tmp_path)
        for key in ("a", "b"):
            cache.put(key, plan(key), "m1")
        cache.wal.close()
        size_before = cache.wal.path.stat().st_size

        recovered = durable(tmp_path)
        recovered.recover()
        assert recovered.wal.path.stat().st_size == size_before


class TestCompaction:
    """Journal folds into the snapshot; recovery still matches."""

    def test_threshold_compaction_resets_journal(self, tmp_path):
        cache = durable(tmp_path, compact_every=3)
        for key in ("a", "b", "c"):
            cache.put(key, plan(key), "m1")
        assert cache.compactions == 1
        assert cache.wal.records == 0
        assert cache.snapshot_path.exists()
        recovered = durable(tmp_path)
        snapshot_entries, wal_ops = recovered.recover()
        assert (snapshot_entries, wal_ops) == (3, 0)
        assert entries_of(recovered) == entries_of(cache)

    def test_close_compacts(self, tmp_path):
        with durable(tmp_path) as cache:
            cache.put("a", plan("a"), "m1")
            assert not cache.snapshot_path.exists()
        assert cache.snapshot_path.exists()
        assert cache.wal.path.stat().st_size == 0
        recovered = durable(tmp_path)
        assert recovered.recover() == (1, 0)

    def test_post_compaction_mutations_recover(self, tmp_path):
        cache = durable(tmp_path, compact_every=2)
        for key in ("a", "b", "c"):  # compacts after b; c stays journaled
            cache.put(key, plan(key), "m1")
        cache.wal.close()
        recovered = durable(tmp_path)
        snapshot_entries, wal_ops = recovered.recover()
        assert (snapshot_entries, wal_ops) == (2, 1)
        assert entries_of(recovered) == entries_of(cache)

    def test_durability_stats_surface(self, tmp_path):
        cache = durable(tmp_path, compact_every=2)
        cache.put("a", plan("a"), "m1")
        stats = cache.durability_stats()
        assert stats["wal_records"] == 1
        assert stats["compactions"] == 0
        assert stats["compact_every"] == 2

    def test_write_ahead_ordering(self, tmp_path):
        """The journal holds a put before the entry is observable."""
        cache = durable(tmp_path)

        class Journal(PlanWAL):
            observed = []

            def append_put(self, key, models_fp, result):
                # At journal time the cache must NOT yet hold the entry.
                Journal.observed.append(key in cache)
                super().append_put(key, models_fp, result)

        cache.wal.close()
        cache.wal = Journal(cache.wal.path)
        cache.put("a", plan("a"), "m1")
        assert Journal.observed == [False]
        assert "a" in cache
