"""The durability degradation ladder: degrade instead of die.

:class:`~repro.serve.wal.DurablePlanCache` with a ``durability_budget``
must keep serving through a dead disk:

* journal-append failures are absorbed (the mutation lands in memory,
  the request succeeds) and honesty flips immediately --
  :meth:`ack_durable` is False from the *first* absorbed failure;
* after ``budget`` consecutive failures the cache trips to memory-only
  mode: appends stop, a background probe re-tests the disk;
* on heal the cache re-syncs from a fresh snapshot (the fsyncgate rule:
  never append to a journal a wounded handle touched) and every plan
  accepted while degraded survives the next crash;
* the ``on_transition`` hook fires exactly once per mode change --
  the serving layer's one-log-line-per-transition contract.

Faults come from seeded :class:`~repro.faults.disk.DiskFaultPlan`
schedules, so every scenario replays bit-identically.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import PersistenceError
from repro.faults import DiskFaultPlan, DiskFaults, faulty_open
from repro.serve import DurablePlanCache, PlanResult, PlanServer
from repro.serve.frontend import handle_request

from tests.test_serve_server import make_models

pytestmark = [pytest.mark.serve, pytest.mark.faults, pytest.mark.disk]


def plan_result(i, durable=True):
    return PlanResult(
        key=f"key-{i}", total=100 + i, sizes=(60 + i, 40),
        times=(0.6, 0.4), algorithm="geometric", durable=durable,
    )


def dying_cache(tmp_path, fail_after, heal_after=None, budget=2, **kwargs):
    """A durable cache whose WAL device dies on schedule.

    The pattern covers the WAL *and* its ``.probe`` sibling, so probe
    writes advance the same device clock the heal waits on.
    """
    plan = DiskFaultPlan({
        "plans.wal*": DiskFaults(fail_after=fail_after,
                                 heal_after=heal_after, error="ENOSPC"),
    })
    transitions = []
    cache = DurablePlanCache(
        tmp_path / "plans",
        durability_budget=budget,
        probe_interval=kwargs.pop("probe_interval", 30.0),
        opener=faulty_open(plan),
        on_transition=lambda mode, reason: transitions.append((mode, reason)),
        **kwargs,
    )
    return cache, transitions


class TestHistoricalBehaviour:
    def test_no_budget_raises_on_append_failure(self, tmp_path):
        plan = DiskFaultPlan({"plans.wal": DiskFaults(write_error_rate=1.0)})
        cache = DurablePlanCache(tmp_path / "plans", opener=faulty_open(plan))
        with pytest.raises(PersistenceError):
            cache.put("k", plan_result(0), "fp")

    def test_bad_guard_parameters_refused(self, tmp_path):
        with pytest.raises(ValueError):
            DurablePlanCache(tmp_path / "plans", durability_budget=0)
        with pytest.raises(ValueError):
            DurablePlanCache(tmp_path / "plans", probe_interval=0.0)


class TestDegradationLadder:
    def test_first_absorbed_failure_flips_acks(self, tmp_path):
        # Each put costs two device ops (write + fsync): puts 0 and 1
        # journal fine, put 2's write is op 4 -- the first casualty.
        cache, _ = dying_cache(tmp_path, fail_after=4)
        with cache:
            for i in range(2):
                cache.put(f"k{i}", plan_result(i), "fp")
            assert cache.ack_durable() is True
            cache.put("k2", plan_result(2), "fp")  # absorbed, not raised
            assert cache.get("k2") is not None
            assert cache.ack_durable() is False, (
                "an ack issued after an absorbed append failure must not "
                "claim durability, even before the trip"
            )
            assert cache.durability_mode == "durable"  # pre-trip window

    def test_trips_after_budget_and_stops_touching_the_disk(self, tmp_path):
        cache, transitions = dying_cache(tmp_path, fail_after=0, budget=2)
        with cache:
            for i in range(6):
                cache.put(f"k{i}", plan_result(i), "fp")
            assert cache.durability_mode == "memory-only"
            assert cache.trips == 1
            assert [m for m, _ in transitions] == ["memory-only"]
            device = cache.wal.opener.devices["plans.wal*"]
            mutations_at_trip = device.mutations
            for i in range(6, 10):
                cache.put(f"k{i}", plan_result(i), "fp")
            assert device.mutations == mutations_at_trip, (
                "memory-only mode must not attempt journal appends"
            )
            assert len(cache) == 10
            assert cache.ack_durable() is False

    def test_heal_resyncs_and_survives_the_next_crash(self, tmp_path):
        cache, transitions = dying_cache(
            tmp_path, fail_after=2, heal_after=9, budget=2,
        )
        for i in range(6):
            cache.put(f"k{i}", plan_result(i), "fp")
        assert cache.durability_mode == "memory-only"
        healed = False
        for _ in range(10):  # each probe advances the device clock
            if cache.probe_now():
                healed = True
                break
        assert healed
        assert cache.durability_mode == "durable"
        assert cache.heals == 1
        assert cache.ack_durable() is True
        assert [m for m, _ in transitions] == ["memory-only", "durable"]
        assert "re-synced" in transitions[1][1]
        # Post-heal mutations journal normally again.
        cache.put("post-heal", plan_result(99), "fp")
        # SIGKILL simulation: abandon the object (no close()) and
        # recover a pristine cache from the same files.
        fresh = DurablePlanCache(tmp_path / "plans")
        fresh.recover()
        try:
            survivors = list(cache._entries)
            assert set(fresh._entries) == set(survivors)
            for key in survivors:
                assert fresh.peek(key).to_dict() == cache.peek(key).to_dict()
        finally:
            fresh.close()
        cache.close()

    def test_background_probe_heals_without_help(self, tmp_path):
        cache, transitions = dying_cache(
            tmp_path, fail_after=0, heal_after=6, budget=1,
            probe_interval=0.02,
        )
        with cache:
            cache.put("k", plan_result(0), "fp")
            assert cache.durability_mode == "memory-only"
            deadline = time.monotonic() + 5.0
            while (cache.durability_mode != "durable"
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert cache.durability_mode == "durable", (
                "the probe thread never healed the cache"
            )
            assert [m for m, _ in transitions] == ["memory-only", "durable"]

    def test_invalidate_and_clear_are_absorbed_too(self, tmp_path):
        cache, _ = dying_cache(tmp_path, fail_after=0, budget=10)
        with cache:
            cache.put("k", plan_result(0), "fp")
            assert cache.invalidate("k") is True
            cache.put("k2", plan_result(1), "fp")
            cache.clear()
            assert len(cache) == 0

    def test_close_while_degraded_skips_the_dead_disk(self, tmp_path):
        cache, _ = dying_cache(tmp_path, fail_after=0, budget=1)
        cache.put("k", plan_result(0), "fp")
        assert cache.durability_mode == "memory-only"
        cache.close()  # must not raise, must not try to compact
        assert cache.compactions == 0

    def test_degraded_mode_defers_compaction(self, tmp_path):
        cache, _ = dying_cache(tmp_path, fail_after=0, budget=1,
                               compact_every=2)
        with cache:
            for i in range(8):
                cache.put(f"k{i}", plan_result(i), "fp")
            assert cache.compactions == 0, (
                "compaction against a dead disk must wait for the heal"
            )

    def test_durability_stats_tell_the_story(self, tmp_path):
        cache, _ = dying_cache(tmp_path, fail_after=0, budget=2)
        with cache:
            for i in range(3):
                cache.put(f"k{i}", plan_result(i), "fp")
            stats = cache.durability_stats()
            assert stats["mode"] == "memory-only"
            assert stats["budget"] == 2
            assert stats["trips"] == 1
            assert stats["heals"] == 0
            assert stats["append_errors"] >= 2
            assert "ENOSPC" in stats["last_disk_error"]


class TestDurableAckFlag:
    def test_result_serialisation_keeps_historical_layout(self):
        durable = plan_result(1)
        assert "durable" not in durable.to_dict()
        degraded = plan_result(1, durable=False)
        assert degraded.to_dict()["durable"] is False
        assert PlanResult.from_dict(durable.to_dict()).durable is True
        assert PlanResult.from_dict(degraded.to_dict()).durable is False

    def test_frontend_flags_acks_from_a_degraded_server(self, tmp_path):
        cache, _ = dying_cache(tmp_path, fail_after=0, budget=1)
        with PlanServer(make_models(), cache=cache) as server:
            assert server.ack_durable() is True
            first = handle_request(server, {"cmd": "plan", "total": 1000})
            assert first.get("durable") is False, (
                "the very first absorbed append must already flip the ack"
            )
            assert server.ack_durable() is False
            # The flag lands on the response copy only: the cached
            # entry itself stays layout-clean for a later healed ack.
            entry = cache.get(first["key"])
            assert "durable" not in entry.to_dict()
            hit = handle_request(server, {"cmd": "plan", "total": 1000})
            assert hit["cached"] is True and hit.get("durable") is False
            stats = server.stats()
            assert stats["durability"]["mode"] == "memory-only"

    def test_plain_cache_servers_omit_the_flag(self):
        with PlanServer(make_models()) as server:
            assert server.ack_durable() is None
            out = handle_request(server, {"cmd": "plan", "total": 1000})
            assert "durable" not in out
            assert json.dumps(out)  # stays JSON-serialisable
