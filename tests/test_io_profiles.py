"""Tests for JSON profile persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import PersistenceError
from repro.io.profiles import load_profile, save_profile
from repro.platform.profiles import (
    CacheHierarchyProfile,
    ConstantProfile,
    GpuProfile,
    ScaledProfile,
    TableProfile,
    WigglyProfile,
)

_PROBE_SIZES = [1, 50, 500, 5000, 50000]


def _assert_equivalent(a, b):
    for d in _PROBE_SIZES:
        assert b.flops_at(d) == pytest.approx(a.flops_at(d), rel=1e-12)


class TestRoundTrips:
    def test_constant(self, tmp_path):
        p = ConstantProfile(3.5e9)
        save_profile(tmp_path / "p.json", p)
        _assert_equivalent(p, load_profile(tmp_path / "p.json"))

    def test_table(self, tmp_path):
        p = TableProfile([(10, 1e9), (100, 2e9), (1000, 1.5e9)])
        save_profile(tmp_path / "p.json", p)
        _assert_equivalent(p, load_profile(tmp_path / "p.json"))

    def test_cache_hierarchy(self, tmp_path):
        p = CacheHierarchyProfile(
            levels=[(500, 4e9), (4000, 3e9)], paged_flops=5e8,
            transition_width=0.12,
        )
        save_profile(tmp_path / "p.json", p)
        _assert_equivalent(p, load_profile(tmp_path / "p.json"))

    def test_gpu_with_out_of_core(self, tmp_path):
        p = GpuProfile(
            peak_flops=9e10, ramp_units=3000, memory_limit_units=50000,
            out_of_core_factor=0.55, host_flops=1e9,
        )
        save_profile(tmp_path / "p.json", p)
        q = load_profile(tmp_path / "p.json")
        _assert_equivalent(p, q)
        assert q.memory_limit_units == 50000

    def test_gpu_minimal(self, tmp_path):
        p = GpuProfile(peak_flops=1e10, ramp_units=100)
        save_profile(tmp_path / "p.json", p)
        q = load_profile(tmp_path / "p.json")
        assert q.memory_limit_units is None
        _assert_equivalent(p, q)

    def test_wiggly(self, tmp_path):
        from repro.platform.presets import netlib_blas_profile

        p = netlib_blas_profile()
        save_profile(tmp_path / "p.json", p)
        _assert_equivalent(p, load_profile(tmp_path / "p.json"))

    def test_calibrated_fit_round_trips(self, tmp_path):
        from repro.platform.calibration import fit_gpu_profile

        truth = GpuProfile(peak_flops=5e10, ramp_units=800)
        samples = [(d, truth.flops_at(d)) for d in [50, 400, 2000, 20000]]
        fit = fit_gpu_profile(samples)
        save_profile(tmp_path / "twin.json", fit.profile)
        _assert_equivalent(fit.profile, load_profile(tmp_path / "twin.json"))


class TestErrors:
    def test_unsupported_profile_type(self, tmp_path):
        p = ScaledProfile(ConstantProfile(1e9), 0.5)
        with pytest.raises(PersistenceError, match="ScaledProfile"):
            save_profile(tmp_path / "p.json", p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_profile(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="JSON"):
            load_profile(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(PersistenceError, match="not a fupermod"):
            load_profile(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text(json.dumps({"format": "fupermod-profile", "version": 99}))
        with pytest.raises(PersistenceError, match="version"):
            load_profile(path)

    def test_unknown_type(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text(json.dumps(
            {"format": "fupermod-profile", "version": 1, "type": "quantum"}
        ))
        with pytest.raises(PersistenceError, match="quantum"):
            load_profile(path)

    def test_malformed_params(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text(json.dumps(
            {"format": "fupermod-profile", "version": 1, "type": "gpu",
             "params": {}}
        ))
        with pytest.raises(PersistenceError, match="malformed"):
            load_profile(path)
