"""Tests for the GEMM block kernel and the matmul simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matmul.kernel import GemmBlockKernel, block_grid_shape, gemm_unit_flops
from repro.apps.matmul.partition2d import partition_columns
from repro.apps.matmul.simulation import (
    MatmulResult,
    even_column_partition,
    simulate_matmul,
)
from repro.core.benchmark import Benchmark
from repro.core.precision import Precision
from repro.errors import BenchmarkError, PartitionError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


class TestBlockGridShape:
    def test_square(self):
        assert block_grid_shape(16) == (4, 4)

    def test_near_square(self):
        m, n = block_grid_shape(12)
        assert m == 3 and n == 4

    def test_one_unit(self):
        assert block_grid_shape(1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(BenchmarkError):
            block_grid_shape(0)

    def test_mn_at_most_d(self):
        for d in [2, 3, 5, 7, 10, 99, 1000]:
            m, n = block_grid_shape(d)
            assert m * n <= d
            assert m * n >= d - m  # floor loss bounded by one row


class TestGemmUnitFlops:
    def test_formula(self):
        assert gemm_unit_flops(16) == 2.0 * 16**3

    def test_invalid(self):
        with pytest.raises(BenchmarkError):
            gemm_unit_flops(0)


class TestGemmBlockKernel:
    def test_complexity_formula(self):
        k = GemmBlockKernel(b=8)
        m, n = block_grid_shape(12)
        assert k.complexity(12) == 2.0 * (m * 8) * (n * 8) * 8

    def test_real_execution_produces_time(self):
        k = GemmBlockKernel(b=8)
        ctx = k.initialize(4)
        elapsed = k.execute(ctx)
        assert elapsed > 0.0
        k.finalize(ctx)
        assert ctx.payload is None

    def test_updates_accumulate(self):
        k = GemmBlockKernel(b=4)
        ctx = k.initialize(4)
        ws = ctx.payload
        before = ws.c_sub.copy()
        k.execute(ctx)
        assert not np.allclose(ws.c_sub, before)

    def test_benchmark_integration(self):
        # A real measurement through the statistical machinery.
        k = GemmBlockKernel(b=8)
        point = Benchmark(k, Precision(reps_min=2, reps_max=3)).run(4)
        assert point.d == 4
        assert point.t > 0.0
        assert 2 <= point.reps <= 3

    def test_invalid_blocking_factor(self):
        with pytest.raises(BenchmarkError):
            GemmBlockKernel(b=0)


def _platform(speeds):
    nodes = [
        Node(f"n{i}", [Device(f"d{i}", ConstantProfile(s), noise=NoNoise())])
        for i, s in enumerate(speeds)
    ]
    return Platform(nodes)


class TestSimulateMatmul:
    def test_result_structure(self):
        platform = _platform([2.0e9, 1.0e9])
        part = even_column_partition(2, nb=8)
        result = simulate_matmul(platform, part, b=16)
        assert isinstance(result, MatmulResult)
        assert len(result.iteration_times) == 8
        assert result.total_time == pytest.approx(sum(result.iteration_times))
        assert len(result.compute_time) == 2

    def test_balanced_beats_even_on_heterogeneous(self):
        platform = _platform([4.0e9, 1.0e9])
        nb = 16
        even = simulate_matmul(platform, even_column_partition(2, nb), b=16)
        prop = simulate_matmul(
            platform, partition_columns([4.0, 1.0], nb), b=16
        )
        assert prop.total_time < even.total_time
        assert prop.compute_imbalance < even.compute_imbalance

    def test_even_is_fine_on_homogeneous(self):
        platform = _platform([1.0e9, 1.0e9])
        result = simulate_matmul(platform, even_column_partition(2, 8), b=16)
        assert result.compute_imbalance < 0.05

    def test_zero_area_rank_idle(self):
        platform = _platform([1.0e9, 1.0e9])
        part = partition_columns([1.0, 0.0], nb=8)
        result = simulate_matmul(platform, part, b=16)
        assert result.compute_time[1] == 0.0
        assert result.areas[1] == 0

    def test_size_mismatch_rejected(self):
        platform = _platform([1.0e9])
        part = even_column_partition(2, 8)
        with pytest.raises(PartitionError):
            simulate_matmul(platform, part, b=16)

    def test_deterministic_with_seed(self):
        platform = _platform([2.0e9, 1.0e9])
        part = even_column_partition(2, 8)
        r1 = simulate_matmul(platform, part, b=16, seed=3)
        r2 = simulate_matmul(platform, part, b=16, seed=3)
        assert r1.total_time == r2.total_time

    def test_comm_time_positive_for_multi_rank(self):
        platform = _platform([1.0e9, 1.0e9])
        result = simulate_matmul(platform, even_column_partition(2, 8), b=16)
        assert sum(result.comm_time) > 0.0
