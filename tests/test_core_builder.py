"""Tests for the adaptive model builder."""

from __future__ import annotations

import pytest

from repro.core.builder import build_adaptive_model
from repro.core.models import AkimaModel, PiecewiseModel
from repro.core.point import MeasurementPoint
from repro.errors import BenchmarkError


def _oracle(time_fn, log=None):
    """A deterministic measurement oracle from a time function."""

    def measure(d: int) -> MeasurementPoint:
        if log is not None:
            log.append(d)
        return MeasurementPoint(d=d, t=time_fn(d), reps=1, ci=0.0)

    return measure


def _cliff_time(d: float) -> float:
    """Linear time with a 5x slope change at 1000 units."""
    if d <= 1000:
        return d / 1000.0
    return 1.0 + (d - 1000) / 200.0


class TestBuildAdaptiveModel:
    def test_linear_time_stops_at_skeleton_plus_probes(self):
        log = []
        result = build_adaptive_model(
            _oracle(lambda d: d / 100.0, log),
            AkimaModel,
            (10, 10_000),
            accuracy=0.05,
            max_points=30,
            initial_points=4,
        )
        # A linear time function is modelled exactly; each skeleton gap is
        # probed once and never split again.
        assert result.converged
        assert result.points_used <= 4 + 3
        assert result.max_observed_error <= 0.05

    def test_cliff_is_refined(self):
        log = []
        result = build_adaptive_model(
            _oracle(_cliff_time, log),
            AkimaModel,
            (10, 10_000),
            accuracy=0.02,
            max_points=24,
            initial_points=4,
        )
        # Probes must concentrate around the cliff at 1000.
        near_cliff = [d for d in log if 500 <= d <= 2500]
        assert len(near_cliff) >= 3
        # The refined model predicts both regimes well.
        assert result.model.time(500) == pytest.approx(0.5, rel=0.05)
        assert result.model.time(5000) == pytest.approx(21.0, rel=0.1)

    def test_budget_respected(self):
        result = build_adaptive_model(
            _oracle(_cliff_time),
            AkimaModel,
            (10, 10_000),
            accuracy=1e-9,  # unreachable: must stop on budget
            max_points=12,
        )
        assert result.points_used <= 12
        assert not result.converged

    def test_cost_accumulated(self):
        result = build_adaptive_model(
            _oracle(lambda d: d / 10.0),
            AkimaModel,
            (10, 1000),
            max_points=8,
        )
        expected = sum(p.benchmark_cost for p in result.model.points)
        assert result.total_cost == pytest.approx(expected)

    def test_works_with_piecewise_model(self):
        result = build_adaptive_model(
            _oracle(_cliff_time),
            PiecewiseModel,
            (10, 10_000),
            accuracy=0.05,
            max_points=20,
        )
        assert result.model.count == result.points_used

    def test_tiny_range_terminates(self):
        result = build_adaptive_model(
            _oracle(lambda d: d),
            AkimaModel,
            (1, 4),
            accuracy=1e-9,
            max_points=32,
        )
        # All integer sizes exhausted; must converge rather than loop.
        assert result.points_used <= 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_range=(0, 10)),
            dict(size_range=(10, 10)),
            dict(accuracy=0.0),
            dict(initial_points=1),
            dict(initial_points=8, max_points=4),
        ],
    )
    def test_validation(self, kwargs):
        base = dict(
            measure=_oracle(lambda d: d),
            model_factory=AkimaModel,
            size_range=(1, 100),
            accuracy=0.05,
            max_points=16,
            initial_points=4,
        )
        base.update(kwargs)
        with pytest.raises(BenchmarkError):
            build_adaptive_model(**base)
