"""The feedback trust boundary, the regression-gated refit, the taxonomy.

The closed loop treats every report as hostile until proven otherwise.
The layers under test, inside out:

* schema validation (:meth:`FeedbackReport.from_payload`): structural
  garbage raises the bare-``FuPerModError``/400 contract, while NaN --
  which Python's ``json`` parses happily -- crosses to the quarantine
  on purpose;
* :class:`FeedbackQuarantine`: each rejection reason fires and is named
  in the :class:`QuarantineReport`, strikes accumulate into a
  quarantine, rate limiting answers with a retry hint;
* the model families themselves: every registered family refuses
  non-finite and non-positive ingest with :class:`ModelError`, and
  ``update_many`` is atomic (no partial ingest);
* :class:`FeedbackController`: honest feedback commits epochs and
  re-solves invalidated plans; a refit the regression gate dislikes
  rolls back and changes nothing served;
* the wire: both taxonomy mappings (400/403/429) through
  :func:`handle_request`, and :meth:`PlanClient.feedback` retrying 429
  with the server's hint while refusing to resend a 400/403.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np
import pytest

from tests.conftest import model_from_time_fn, points_from_time_fn
from repro.core.models import PiecewiseModel
from repro.core.registry import model_factory
from repro.errors import (
    FeedbackRejected,
    FuPerModError,
    ModelError,
    QuarantineError,
)
from repro.serve import (
    FeedbackController,
    FeedbackQuarantine,
    FeedbackReport,
    ModelLineage,
    PlanClient,
    PlanServer,
    handle_request,
)

pytestmark = [pytest.mark.serve, pytest.mark.feedback]

SPEEDS = (100.0, 200.0, 400.0)


def make_models(speeds=SPEEDS):
    return [
        model_from_time_fn(PiecewiseModel, lambda d, s=s: d / s,
                           [16, 128, 1024, 4096])
        for s in speeds
    ]


def honest_payload(source="app0", total=700, sizes=(100, 200, 400),
                   factor=1.0, speeds=SPEEDS):
    """A report whose times are exactly ``factor`` x the true time."""
    return {
        "cmd": "feedback",
        "source": source,
        "total": total,
        "sizes": list(sizes),
        "times": [factor * d / s for d, s in zip(sizes, speeds)],
    }


def make_loop(refit_every=4, **quarantine_kw):
    server = PlanServer(make_models(), max_workers=2)
    lineage = ModelLineage(server.models)
    controller = FeedbackController(
        server, lineage,
        quarantine=FeedbackQuarantine(**quarantine_kw),
        refit_every=refit_every,
    )
    server.attach_feedback(controller)
    return server, lineage, controller


class TestSchemaLayer:
    @pytest.mark.parametrize("payload", [
        "not an object",
        {},
        {"source": "", "total": 10, "sizes": [10], "times": [0.1]},
        {"source": "a", "total": "ten", "sizes": [10], "times": [0.1]},
        {"source": "a", "total": 10, "sizes": [], "times": []},
        {"source": "a", "total": 10, "sizes": [5, 5], "times": [0.1]},
        {"source": "a", "total": 10, "sizes": [5.0, 5.0], "times": [0.1, 0.1]},
        {"source": "a", "total": 10, "sizes": [5, 5], "times": ["x", 0.1]},
        {"source": "a", "total": 10, "sizes": [5, 5], "times": [0.1, 0.1],
         "partitioner": 7},
        {"source": "a", "total": 10, "sizes": [5, 5], "times": [0.1, 0.1],
         "options": "fast"},
    ])
    def test_structural_garbage_is_a_bare_400(self, payload):
        with pytest.raises(FuPerModError) as excinfo:
            FeedbackReport.from_payload(payload)
        assert type(excinfo.value) is FuPerModError

    def test_nan_crosses_the_schema_layer(self):
        # json.loads('NaN') yields float('nan'); stopping it is the
        # quarantine's job, where it gets named and counted.
        report = FeedbackReport.from_payload({
            "source": "a", "total": 10, "sizes": [5, 5],
            "times": [float("nan"), 0.1],
        })
        assert math.isnan(report.times[0])


class TestQuarantineScoring:
    def admit(self, payload, **kw):
        quarantine = FeedbackQuarantine(**kw)
        quarantine.admit(FeedbackReport.from_payload(payload), make_models())
        return quarantine

    def reject(self, payload, **kw):
        quarantine = FeedbackQuarantine(**kw)
        with pytest.raises(FeedbackRejected) as excinfo:
            quarantine.admit(
                FeedbackReport.from_payload(payload), make_models()
            )
        return quarantine, excinfo.value

    def test_honest_report_accepted(self):
        quarantine = self.admit(honest_payload())
        assert quarantine.report.accepted == 1
        assert not quarantine.report.rejections

    def test_honest_drift_passes_the_gate(self):
        # 3x platform drift is honest reality, not an attack.
        self.admit(honest_payload(factor=3.0))

    @pytest.mark.parametrize("mangle,reason", [
        (lambda p: p.update(sizes=[100, 200], times=p["times"][:2]),
         "impossible-sizes"),
        (lambda p: p.update(sizes=[0, 300, 400]), "impossible-sizes"),
        (lambda p: p.update(total=9999), "impossible-sizes"),
        (lambda p: p["times"].__setitem__(0, float("nan")), "non-finite"),
        (lambda p: p["times"].__setitem__(1, float("inf")), "non-finite"),
        (lambda p: p["times"].__setitem__(0, -0.5), "negative"),
        (lambda p: p["times"].__setitem__(0, 0.0), "negative"),
        (lambda p: p["times"].__setitem__(2, p["times"][2] * 64.0), "outlier"),
        (lambda p: p["times"].__setitem__(2, p["times"][2] / 64.0), "outlier"),
    ])
    def test_each_reason_fires_and_is_named(self, mangle, reason):
        payload = honest_payload()
        mangle(payload)
        quarantine, exc = self.reject(payload)
        assert reason in exc.reasons
        assert exc.source == "app0"
        assert quarantine.report.rejections[0].reasons == exc.reasons
        assert "app0" in quarantine.report.sources_named

    def test_rejection_is_whole_report_atomic(self):
        # Two honest ranks riding alongside one NaN must not get in.
        payload = honest_payload()
        payload["times"][1] = float("nan")
        quarantine, _ = self.reject(payload)
        assert quarantine.report.accepted == 0

    def test_strikes_accumulate_into_quarantine(self):
        quarantine = FeedbackQuarantine(max_strikes=3)
        models = make_models()
        bad = honest_payload(factor=100.0)  # far outside k=8
        for _ in range(3):
            with pytest.raises(FeedbackRejected):
                quarantine.admit(FeedbackReport.from_payload(bad), models)
        assert quarantine.quarantined_sources() == ["app0"]
        # Standing quarantine: even an honest report is now refused.
        with pytest.raises(QuarantineError) as excinfo:
            quarantine.admit(
                FeedbackReport.from_payload(honest_payload()), models
            )
        assert excinfo.value.source == "app0"

    def test_accepted_report_resets_the_streak(self):
        quarantine = FeedbackQuarantine(max_strikes=3)
        models = make_models()
        bad = honest_payload(factor=100.0)
        for _ in range(2):
            with pytest.raises(FeedbackRejected):
                quarantine.admit(FeedbackReport.from_payload(bad), models)
        quarantine.admit(FeedbackReport.from_payload(honest_payload()), models)
        for _ in range(2):
            with pytest.raises(FeedbackRejected):
                quarantine.admit(FeedbackReport.from_payload(bad), models)
        assert quarantine.quarantined_sources() == []

    def test_rate_limit_answers_with_a_retry_hint(self):
        clock = SimpleNamespace(now=0.0)
        quarantine = FeedbackQuarantine(
            rate_limit=2, rate_window=60.0, clock=lambda: clock.now
        )
        models = make_models()
        for _ in range(2):
            quarantine.admit(
                FeedbackReport.from_payload(honest_payload()), models
            )
        clock.now = 10.0
        with pytest.raises(FeedbackRejected) as excinfo:
            quarantine.admit(
                FeedbackReport.from_payload(honest_payload()), models
            )
        assert excinfo.value.reasons == ("rate-limit",)
        assert excinfo.value.retry_after == pytest.approx(50.0)
        # The window drains: the same source is welcome again later.
        clock.now = 70.0
        quarantine.admit(FeedbackReport.from_payload(honest_payload()), models)

    def test_report_to_dict_is_deterministic(self):
        def run():
            quarantine = FeedbackQuarantine(max_strikes=2)
            models = make_models()
            for factor in (1.0, 100.0, 100.0):
                try:
                    quarantine.admit(
                        FeedbackReport.from_payload(
                            honest_payload(factor=factor)
                        ),
                        models,
                    )
                except FeedbackRejected:
                    pass
            return quarantine.report.to_dict()

        assert run() == run()


FAMILIES = ["constant", "piecewise", "akima", "linear", "pchip", "segmented"]


class TestModelIngestBoundary:
    """Every family shares one typed rejection at the ingest boundary.

    ``MeasurementPoint`` cannot even hold NaN, so the hostile values
    arrive as duck-typed point objects -- exactly how a buggy caller or
    a hand-built feedback path would smuggle them in.
    """

    GOOD = [SimpleNamespace(d=d, t=d / 100.0) for d in (16, 128, 1024, 4096)]
    BAD = [
        SimpleNamespace(d=64, t=float("nan")),
        SimpleNamespace(d=64, t=float("inf")),
        SimpleNamespace(d=64, t=-1.0),
        SimpleNamespace(d=64, t=0.0),
        SimpleNamespace(d=float("nan"), t=0.5),
        SimpleNamespace(d=0, t=0.5),
    ]

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("bad", BAD, ids=lambda p: f"d={p.d},t={p.t}")
    def test_update_rejects_with_model_error(self, family, bad):
        model = model_factory(family)()
        with pytest.raises(ModelError):
            model.update(bad)
        assert model.count == 0

    @pytest.mark.parametrize("family", FAMILIES)
    def test_update_many_is_atomic(self, family):
        model = model_factory(family)()
        batch = list(self.GOOD)
        batch.insert(2, SimpleNamespace(d=64, t=float("nan")))
        with pytest.raises(ModelError):
            model.update_many(batch)
        # Nothing before the offender got in either.
        assert model.count == 0
        model.update_many(self.GOOD)
        assert model.count == len(self.GOOD)


class TestControllerRefit:
    def test_accepted_reports_buffer_until_refit(self):
        server, lineage, controller = make_loop(refit_every=4)
        for i in range(3):
            out = server.feedback.handle(honest_payload(source=f"app{i}"))
            assert out["status"] == "accepted"
            assert out["refit"] is None
        assert controller.pending() == 3
        assert lineage.epoch == 0

    def test_honest_feedback_commits_an_epoch(self):
        server, lineage, controller = make_loop(refit_every=4)
        root_models = server.models
        root_fp = lineage.fingerprint
        outs = [
            server.feedback.handle(honest_payload(factor=2.0))
            for _ in range(4)
        ]
        assert outs[-1]["refit"] == "committed"
        assert lineage.epoch == 1
        assert lineage.parent_fp == root_fp
        assert server.models is lineage.models
        assert server.models is not root_models
        assert controller.counters.refits == 1
        # Holdback returns to the buffer; train was consumed.
        assert controller.pending() == 1

    def test_commit_converges_predictions_toward_reports(self):
        server, lineage, _ = make_loop(refit_every=8)
        before = server.models[0].time(100.0)
        for _ in range(8):
            server.feedback.handle(honest_payload(factor=2.5))
        assert lineage.epoch == 1
        after = server.models[0].time(100.0)
        truth = 2.5 * 100.0 / SPEEDS[0]
        assert abs(after - truth) < abs(before - truth)

    def test_regression_gate_rolls_back(self):
        # Train on 3x-drifted reports, hold back an honest one: the
        # candidate predicts the holdback worse than the parent does.
        server, lineage, controller = make_loop(refit_every=4)
        root_models = server.models
        root_fp = lineage.fingerprint
        for _ in range(3):
            server.feedback.handle(honest_payload(factor=3.0))
        out = server.feedback.handle(honest_payload(factor=1.0))
        assert out["refit"] == "rolled-back"
        assert lineage.epoch == 0
        assert lineage.fingerprint == root_fp
        assert server.models is root_models
        assert controller.counters.rollbacks == 1
        # Nothing was folded in: every report stays pending.
        assert controller.pending() == 4

    def test_commit_invalidates_and_resolves_cached_plans(self):
        server, lineage, controller = make_loop(refit_every=4)
        stale = server.request(700)
        assert not stale.cached
        for _ in range(4):
            server.feedback.handle(honest_payload(factor=2.0))
        assert lineage.epoch == 1
        assert controller.counters.invalidated_plans == 1
        assert controller.counters.resolved_plans == 1
        # The re-solve pre-warmed the child epoch's entry off the
        # request path: the next request is a hit under the new models.
        fresh = server.request(700)
        assert fresh.cached
        assert fresh.key != stale.key

    def test_metrics_surface_the_loop(self):
        server, _, _ = make_loop(refit_every=100, max_strikes=2)
        server.feedback.handle(honest_payload())
        for _ in range(2):
            with pytest.raises(FeedbackRejected):
                server.feedback.handle(honest_payload(factor=100.0))
        feedback = server.metrics()["feedback"]
        assert feedback["accepted"] == 1
        assert feedback["rejected"] == {"outlier": 2}
        assert feedback["quarantined_sources"] == ["app0"]
        assert feedback["lineage"]["epoch"] == 0


class TestWireTaxonomy:
    def test_malformed_payload_maps_to_400(self):
        server, _, controller = make_loop()
        out = handle_request(server, {"cmd": "feedback", "source": "a"})
        assert out["code"] == 400 and "rejected" not in out
        assert controller.counters.malformed == 1

    def test_content_rejection_maps_to_400_with_reasons(self):
        server, _, _ = make_loop()
        out = handle_request(server, honest_payload(factor=100.0))
        assert out["code"] == 400
        assert out["rejected"] == ["outlier"]
        assert out["source"] == "app0"
        assert "retry_after" not in out

    def test_quarantined_source_maps_to_403(self):
        server, _, _ = make_loop(max_strikes=1)
        handle_request(server, honest_payload(factor=100.0))
        out = handle_request(server, honest_payload())
        assert out["code"] == 403
        assert out["quarantined"] is True
        assert out["source"] == "app0"

    def test_rate_limit_maps_to_429_with_retry_after(self):
        server, _, _ = make_loop(rate_limit=1, rate_window=30.0)
        handle_request(server, honest_payload())
        out = handle_request(server, honest_payload())
        assert out["code"] == 429
        assert out["rejected"] == ["rate-limit"]
        assert out["retry_after"] == pytest.approx(30.0, abs=1.0)

    def test_server_without_a_loop_answers_400(self):
        server = PlanServer(make_models(), max_workers=2)
        out = handle_request(server, honest_payload())
        assert out["code"] == 400
        assert "no feedback loop" in out["error"]

    def test_acceptance_flows_through_the_front_end(self):
        server, _, _ = make_loop()
        out = handle_request(server, honest_payload())
        assert out["status"] == "accepted"
        assert out["epoch"] == 0 and out["buffered"] == 1


class TestClientFeedback:
    def test_429_retries_with_the_servers_floor(self):
        script = [
            {"error": "slow down", "code": 429, "rejected": ["rate-limit"],
             "retry_after": 1.5},
            {"status": "accepted", "epoch": 0, "buffered": 1, "refit": None},
        ]
        sleeps = []
        client = PlanClient(
            lambda p: script.pop(0), max_attempts=3, base_delay=0.01,
            rng=np.random.default_rng(0), sleep=sleeps.append,
        )
        out = client.feedback("app0", 700, (100, 200, 400), (1.0, 1.0, 1.0))
        assert out["status"] == "accepted"
        assert client.retries == 1
        assert sleeps == [pytest.approx(1.5)]  # hint floors the jitter

    def test_content_rejection_is_not_retried(self):
        calls = []

        def transport(payload):
            calls.append(payload)
            return {"error": "rejected: outlier", "code": 400,
                    "rejected": ["outlier"], "source": "app0"}

        client = PlanClient(transport, max_attempts=5, sleep=lambda _s: None)
        with pytest.raises(FeedbackRejected) as excinfo:
            client.feedback("app0", 700, (100, 200, 400), (9e9, 1.0, 1.0))
        assert len(calls) == 1  # resending a lie is a strike, not a retry
        assert excinfo.value.reasons == ("outlier",)

    def test_quarantine_is_not_retried(self):
        calls = []

        def transport(payload):
            calls.append(payload)
            return {"error": "quarantined", "code": 403, "quarantined": True,
                    "source": "app0"}

        client = PlanClient(transport, max_attempts=5, sleep=lambda _s: None)
        with pytest.raises(QuarantineError) as excinfo:
            client.feedback("app0", 700, (100, 200, 400), (1.0, 1.0, 1.0))
        assert len(calls) == 1
        assert excinfo.value.source == "app0"

    def test_payload_shape_on_the_wire(self):
        seen = {}

        def transport(payload):
            seen.update(payload)
            return {"status": "accepted"}

        PlanClient(transport).feedback(
            "app0", 700, [100.0, 200.0, 400.0], [1, 2, 3],
            partitioner="geometric",
        )
        assert seen["cmd"] == "feedback"
        assert seen["sizes"] == [100, 200, 400]  # coerced to ints
        assert seen["times"] == [1.0, 2.0, 3.0]  # coerced to floats
        assert seen["partitioner"] == "geometric"
