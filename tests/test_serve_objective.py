"""Objective-keyed serving: kinds, cache keys, WAL, replication, client.

The regression this file pins is *cross-kind cache aliasing*: a
``"time"`` plan (seconds) and a ``"pareto"`` plan (a joule/second
trade-off front) computed from the same speed models must never answer
each other's requests.  Keys differ by construction
(:func:`fingerprint_objective_request` mixes in the kind and the
energy-model fingerprint) and every storage boundary -- in-memory
cache, write-ahead journal, replication push -- refuses an entry whose
request spec and result disagree on the kind.
"""

from __future__ import annotations

import math

import pytest

from repro.core.models import PiecewiseModel
from repro.core.models.energy import PiecewiseEnergyModel
from repro.core.partition.cert import ConvergenceCert
from repro.core.point import MeasurementPoint
from repro.errors import FuPerModError, PartitionError
from repro.platform.power import (
    ConstantPower,
    LinearPower,
    energy_points_from_power,
)
from repro.serve import (
    DurablePlanCache,
    PlanCache,
    PlanClient,
    PlanEngine,
    PlanServer,
    fingerprint_models,
    fingerprint_objective_request,
)
from repro.serve.cache import check_spec_kind
from repro.serve.frontend import handle_request, validate_objective
from repro.serve.plan import PLAN_KINDS, PlanResult
from repro.serve.router import PlanRouter

pytestmark = [pytest.mark.serve, pytest.mark.energy]

SIZES = (64, 128, 256, 512, 1024)


def build_platform():
    """Fast-but-hungry rank 0 vs slow-but-frugal rank 1."""
    specs = [(400.0, 30.0, 220.0), (100.0, 5.0, 15.0)]
    models, emodels = [], []
    for speed, idle, dyn in specs:
        pts = [MeasurementPoint(d, d / speed) for d in SIZES]
        m = PiecewiseModel()
        m.update_many(pts)
        models.append(m)
        em = PiecewiseEnergyModel()
        em.update_many(energy_points_from_power(
            pts, ConstantPower(idle_watts=idle, dynamic_watts=dyn)))
        emodels.append(em)
    return models, emodels


@pytest.fixture
def platform():
    return build_platform()


@pytest.fixture
def server(platform):
    models, emodels = platform
    srv = PlanServer(models, engine=PlanEngine(cache=PlanCache()))
    srv.attach_energy(emodels)
    return srv


class TestObjectiveKeys:
    def test_time_and_pareto_keys_never_collide(self, platform):
        models, emodels = platform
        mfp = fingerprint_models(models)
        efp = fingerprint_models(emodels)
        time_key = fingerprint_objective_request(
            "time", mfp, "", 1000, "geometric", {}, {})
        pareto_key = fingerprint_objective_request(
            "pareto", mfp, efp, 1000, "geometric", {}, {})
        assert time_key != pareto_key

    def test_time_kind_keeps_legacy_key(self, platform):
        """Pre-kind caches and replicas stay bit-compatible."""
        from repro.serve.fingerprint import fingerprint_request

        models, _ = platform
        mfp = fingerprint_models(models)
        assert fingerprint_objective_request(
            "time", mfp, "ignored", 500, "geometric", {"tol": 1e-9}, {},
        ) == fingerprint_request(mfp, 500, "geometric", {"tol": 1e-9})

    def test_energy_refit_invalidates_only_pareto_keys(self, platform):
        models, emodels = platform
        mfp = fingerprint_models(models)
        key_a = fingerprint_objective_request(
            "pareto", mfp, "efp-epoch-1", 1000, "geometric", {}, {})
        key_b = fingerprint_objective_request(
            "pareto", mfp, "efp-epoch-2", 1000, "geometric", {}, {})
        assert key_a != key_b
        assert fingerprint_objective_request(
            "time", mfp, "efp-epoch-1", 1000, "geometric", {}, {},
        ) == fingerprint_objective_request(
            "time", mfp, "efp-epoch-2", 1000, "geometric", {}, {})


def time_plan(key="k", total=100):
    return PlanResult(
        key=key, total=total, sizes=(50, 50), times=(0.5, 0.5),
        algorithm="geometric",
        cert=ConvergenceCert("geometric", True, 5, 200, 1e-11, 1e-10, ""),
    )


class TestCrossKindAliasing:
    def test_cache_put_refuses_kind_mismatch(self):
        cache = PlanCache()
        spec = (100, "geometric", {}, "pareto", {})
        with pytest.raises(PartitionError):
            cache.put("k", time_plan(), "mfp", spec=spec)

    def test_check_spec_kind_defaults_legacy_specs_to_time(self):
        check_spec_kind(time_plan(), (100, "geometric", {}))
        check_spec_kind(time_plan(), None)

    def test_durable_cache_refuses_before_journaling(self, tmp_path):
        cache = DurablePlanCache(tmp_path / "plans.json")
        cache.recover()
        with pytest.raises(PartitionError):
            cache.put("k", time_plan(), "mfp",
                      spec=(100, "geometric", {}, "pareto", {}))
        # The poisoned record must not have reached the journal: a
        # fresh recovery replays zero operations.
        fresh = DurablePlanCache(tmp_path / "plans.json")
        snapshot_entries, wal_ops = fresh.recover()
        assert (snapshot_entries, wal_ops) == (0, 0)

    def test_time_plan_never_serves_pareto_request(self, server):
        """The end-to-end regression: same models, different kinds."""
        out = handle_request(server, {"cmd": "plan", "total": 1000})
        assert "code" not in out and out.get("kind", "time") == "time"
        hit = server.try_cached(1000, None, {}, "pareto", {})
        assert hit is None
        out2 = handle_request(
            server, {"cmd": "plan", "total": 1000, "objective": "pareto"})
        assert out2["kind"] == "pareto" and not out2["cached"]
        assert out2["front"], "pareto plan must carry its front"

    def test_replicate_rejects_cross_kind_push(self, tmp_path):
        from repro.serve.replicate import PlanReplicator

        rep = PlanReplicator("shard-0", PlanCache(), replicas=1)
        result = time_plan(key="k1")
        status, body = rep.apply_replicate({
            "key": "k1",
            "models_fp": "mfp",
            "result": result.to_dict(),
            "spec": [100, "geometric", {}, "pareto", {}],
        })
        assert status == 400
        assert "rejected replicated plan" in body["error"]
        assert rep.cache.get("k1") is None


class TestServingRoundTrip:
    def test_pareto_plan_round_trips_through_wal(self, tmp_path, platform):
        models, emodels = platform
        cache = DurablePlanCache(tmp_path / "plans.json")
        cache.recover()
        srv = PlanServer(models, engine=PlanEngine(cache=cache))
        srv.attach_energy(emodels)
        out = handle_request(
            srv, {"cmd": "plan", "total": 2000, "objective": "pareto",
                  "alpha": 0.5})
        assert out["kind"] == "pareto"
        # A recovered cache serves the identical front without solving.
        recovered = DurablePlanCache(tmp_path / "plans.json")
        recovered.recover()
        srv2 = PlanServer(models, engine=PlanEngine(cache=recovered))
        srv2.attach_energy(emodels)
        out2 = handle_request(
            srv2, {"cmd": "plan", "total": 2000, "objective": "pareto",
                   "alpha": 0.5})
        assert out2["cached"]
        assert out2["sizes"] == out["sizes"]
        assert [p["sizes"] for p in out2["front"]] == [
            p["sizes"] for p in out["front"]]

    def test_time_endpoint_matches_time_only_plan(self, server):
        pareto = handle_request(
            server, {"cmd": "plan", "total": 5000, "objective": "pareto",
                     "alpha": 1.0})
        time_only = handle_request(server, {"cmd": "plan", "total": 5000})
        assert pareto["front"][0]["sizes"] == time_only["sizes"]
        assert pareto["sizes"] == time_only["sizes"]

    def test_energy_cap_selection(self, server):
        sweep = handle_request(
            server, {"cmd": "plan", "total": 5000, "objective": "pareto"})
        energies = [float(p["energy"]) for p in sweep["front"]]
        cap = sorted(energies)[len(energies) // 2]
        out = handle_request(
            server, {"cmd": "plan", "total": 5000, "objective": "pareto",
                     "energy_cap": cap})
        picked = [p for p in out["front"] if p["sizes"] == out["sizes"]]
        assert picked and float(picked[0]["energy"]) <= cap

    def test_infeasible_energy_cap_is_500_not_silent(self, server):
        out = handle_request(
            server, {"cmd": "plan", "total": 5000, "objective": "pareto",
                     "energy_cap": 1e-9})
        assert out["code"] == 500  # solver-level PartitionError

    def test_plans_by_kind_in_metrics(self, server):
        handle_request(server, {"cmd": "plan", "total": 1000})
        handle_request(server, {"cmd": "plan", "total": 1000,
                                "objective": "pareto"})
        handle_request(server, {"cmd": "plan", "total": 1000,
                                "objective": "pareto"})
        met = handle_request(server, {"cmd": "metrics"})["metrics"]
        assert met["schema"] == "fupermod-metrics/4"
        assert met["plans_by_kind"]["time"] == 1
        assert met["plans_by_kind"]["pareto"] == 2

    def test_fleet_metrics_sum_plans_by_kind(self):
        per_shard = {
            "s0": {"plans_by_kind": {"time": 3, "pareto": 1}},
            "s1": {"plans_by_kind": {"time": 2}},
            "s2": {"error": "unreachable"},
        }
        summary = PlanRouter._plans_by_kind_summary(per_shard)
        assert summary == {"time": 5, "pareto": 1}


class TestProtocolValidation:
    def test_unknown_objective_is_400(self, server):
        out = handle_request(
            server, {"cmd": "plan", "total": 100, "objective": "carbon"})
        assert out["code"] == 400
        assert "objective" in out["error"]

    @pytest.mark.parametrize("alpha", [-0.1, 1.5, "half", float("nan")])
    def test_bad_alpha_is_400(self, server, alpha):
        out = handle_request(
            server, {"cmd": "plan", "total": 100, "objective": "pareto",
                     "alpha": alpha})
        assert out["code"] == 400
        assert "alpha" in out["error"]

    @pytest.mark.parametrize("cap", [0, -5.0, float("inf"), "lots"])
    def test_bad_energy_cap_is_400(self, server, cap):
        out = handle_request(
            server, {"cmd": "plan", "total": 100, "objective": "pareto",
                     "energy_cap": cap})
        assert out["code"] == 400
        assert "energy_cap" in out["error"]

    @pytest.mark.parametrize("npoints", [1, 0, 65, 2.5, "nine"])
    def test_bad_npoints_is_400(self, server, npoints):
        out = handle_request(
            server, {"cmd": "plan", "total": 100, "objective": "pareto",
                     "npoints": npoints})
        assert out["code"] == 400
        assert "npoints" in out["error"]

    def test_objective_params_without_pareto_are_400(self, server):
        out = handle_request(
            server, {"cmd": "plan", "total": 100, "alpha": 0.5})
        assert out["code"] == 400

    def test_pareto_without_energy_models_is_400(self, platform):
        models, _ = platform
        bare = PlanServer(models, engine=PlanEngine(cache=PlanCache()))
        out = handle_request(
            bare, {"cmd": "plan", "total": 100, "objective": "pareto"})
        assert out["code"] == 400
        assert "energy models" in out["error"]

    def test_validate_objective_passes_plain_time(self, server):
        assert validate_objective({"total": 100}, server) == ("time", {})
        assert "time" in PLAN_KINDS and "pareto" in PLAN_KINDS


class TestClientSideValidation:
    """Bad objective parameters never reach the wire."""

    @pytest.fixture
    def client(self):
        def explode(payload):
            raise AssertionError("transport must not be reached")

        return PlanClient(explode, max_attempts=1)

    @pytest.mark.parametrize("alpha", [-0.5, 1.0001, float("nan")])
    def test_alpha_out_of_range(self, client, alpha):
        with pytest.raises(ValueError, match="alpha"):
            client.plan(100, objective="pareto", alpha=alpha)

    @pytest.mark.parametrize("cap", [0.0, -1.0, float("inf"), float("nan")])
    def test_energy_cap_not_positive_finite(self, client, cap):
        with pytest.raises(ValueError, match="energy_cap"):
            client.plan(100, objective="pareto", energy_cap=cap)

    def test_npoints_validated(self, client):
        with pytest.raises(ValueError, match="npoints"):
            client.plan(100, objective="pareto", npoints=1)

    def test_objective_params_require_pareto(self, client):
        with pytest.raises(ValueError, match="objective"):
            client.plan(100, alpha=0.5)

    def test_valid_objective_reaches_transport(self, platform):
        models, emodels = platform
        srv = PlanServer(models, engine=PlanEngine(cache=PlanCache()))
        srv.attach_energy(emodels)
        client = PlanClient(lambda p: handle_request(srv, p), max_attempts=1)
        result = client.plan(1000, objective="pareto", alpha=0.25)
        assert result.kind == "pareto"
        assert result.front
        assert sum(result.sizes) == 1000


class TestWarmStarts:
    def test_neighboring_front_seeds_warm_start_bit_identically(
            self, platform):
        models, emodels = platform
        warm_srv = PlanServer(models, engine=PlanEngine(cache=PlanCache()))
        warm_srv.attach_energy(emodels)
        handle_request(warm_srv, {"cmd": "plan", "total": 10_000,
                                  "objective": "pareto"})
        warm = handle_request(warm_srv, {"cmd": "plan", "total": 10_100,
                                         "objective": "pareto"})
        cold_srv = PlanServer(models, engine=PlanEngine(
            cache=PlanCache(), warm=False))
        cold_srv.attach_energy(emodels)
        cold = handle_request(cold_srv, {"cmd": "plan", "total": 10_100,
                                         "objective": "pareto"})
        assert warm["sizes"] == cold["sizes"]
        assert [p["sizes"] for p in warm["front"]] == [
            p["sizes"] for p in cold["front"]]
        assert [p["time"] for p in warm["front"]] == [
            p["time"] for p in cold["front"]]
        assert warm_srv.engine.counters.warm_starts >= 1

    def test_time_warm_hints_never_cross_kinds(self, server):
        handle_request(server, {"cmd": "plan", "total": 10_000})
        near = server.engine.cache.nearest(
            fingerprint_models(server.models), 10_050, kind="pareto")
        assert near is None


class TestAioFastLane:
    def test_cached_pareto_rides_fast_lane(self, server):
        from repro.serve.aio import try_fast_plan

        payload = {"cmd": "plan", "total": 3000, "objective": "pareto"}
        assert try_fast_plan(server, payload) is None  # cold: slow path
        handle_request(server, payload)
        out = try_fast_plan(server, payload)
        assert out is not None and out["kind"] == "pareto" and out["cached"]

    def test_malformed_objective_falls_through(self, server):
        from repro.serve.aio import try_fast_plan

        assert try_fast_plan(
            server, {"cmd": "plan", "total": 100, "objective": "pareto",
                     "alpha": 7}) is None
