"""Replica placement, hinted handoff and epoch verification -- in process.

The netsplit suite (``test_fleet_netsplit.py``) proves the replication
layer end to end with real worker processes; this file proves the unit
contracts it is built from, without sockets:

* :func:`~repro.serve.replicate.entry_fingerprint` keys digest diffs on
  the full serialized result, not just the cache key;
* :class:`~repro.serve.replicate.HintLog` follows the WAL discipline --
  hint/ack netting on replay, torn tail dropped and truncated, interior
  corruption refused loudly;
* :class:`~repro.serve.replicate.PlanReplicator` pushes committed plans
  to ring successors, journals failed pushes as durable hints, drains
  them when the peer answers again, and survives a home crash between
  the two;
* ``apply_replicate`` refuses entries that do not answer their own key
  (the poisoning guard) and never routes through the engine (no
  replication storms);
* a plan-WAL / lineage-WAL epoch disagreement (torn lineage tail)
  recovers to a consistent *older* epoch and purges the cache entries
  whose fingerprints the shorter lineage can no longer vouch for.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict

import pytest

from tests.conftest import model_from_time_fn, points_from_time_fn
from repro.core.models import PiecewiseModel
from repro.errors import FuPerModError, PersistenceError
from repro.faults import corrupt_wal
from repro.serve import (
    DurablePlanCache,
    HashRing,
    HintLog,
    ModelLineage,
    PlanCache,
    PlanReplicator,
    PlanRequest,
    PlanResult,
    affinity_key,
    entry_fingerprint,
)
from repro.serve.worker import purge_unverified

pytestmark = [pytest.mark.serve, pytest.mark.fleet]

FP = "a" * 16


def make_result(total=100, sizes=(60, 40), times=(0.6, 0.4), fp=FP,
                partitioner="geometric"):
    request = PlanRequest.make(fp, total, partitioner)
    result = PlanResult(
        key=request.key,
        total=total,
        sizes=list(sizes),
        times=[float(t) for t in times],
        algorithm=partitioner,
    )
    return request, result


def make_entry(total=100, sizes=(60, 40), fp=FP, source="s0"):
    request, result = make_result(total=total, sizes=sizes, fp=fp)
    return {
        "key": request.key,
        "models_fp": fp,
        "result": result.to_dict(),
        "spec": [request.total, request.partitioner, request.option_dict()],
        "source": source,
    }


class StubNet:
    """A fake fleet: records pushes per shard, fails the 'down' ones."""

    def __init__(self):
        self.down = set()
        self.pushes = defaultdict(list)
        self.lock = threading.Lock()

    def factory(self, url, sid, timeout):
        net = self

        class _Client:
            def replicate(self, entry):
                with net.lock:
                    if sid in net.down:
                        raise ConnectionError(f"{sid} unreachable")
                    net.pushes[sid].append(entry)
                return True

            def close(self):
                pass

        return _Client()

    def count(self, sid):
        with self.lock:
            return len(self.pushes[sid])


def roster(*sids):
    return [{"shard_id": sid, "url": f"http://127.0.0.1:0/{sid}"}
            for sid in sids]


def wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestEntryFingerprint:
    def test_covers_the_full_serialized_result(self):
        _, result = make_result()
        same = entry_fingerprint(result.key, result)
        assert entry_fingerprint(result.key, result) == same
        _, drifted = make_result(times=(0.61, 0.4))
        assert drifted.key == result.key  # same request...
        assert entry_fingerprint(result.key, drifted) != same  # ...new bytes

    def test_distinct_keys_distinct_fingerprints(self):
        _, a = make_result(total=100)
        _, b = make_result(total=101, sizes=(61, 40))
        assert entry_fingerprint(a.key, a) != entry_fingerprint(b.key, b)


class TestHintLog:
    def test_replay_nets_acks_and_orders_by_seq(self, tmp_path):
        log = HintLog(tmp_path / "hints.wal")
        log.append_hint(1, "s1", make_entry(total=100))
        log.append_hint(2, "s2", make_entry(total=200, sizes=(120, 80)))
        log.append_ack(1)
        log.close()
        pending, _, dropped = HintLog(tmp_path / "hints.wal").replay()
        assert not dropped
        assert [h["seq"] for h in pending] == [2]
        assert pending[0]["target"] == "s2"

    def test_missing_journal_replays_empty(self, tmp_path):
        pending, valid, dropped = HintLog(tmp_path / "never.wal").replay()
        assert (pending, valid, dropped) == ([], 0, False)

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "hints.wal"
        log = HintLog(path)
        log.append_hint(1, "s1", make_entry())
        log.append_hint(2, "s2", make_entry(total=200, sizes=(150, 50)))
        log.close()
        corrupt_wal(path, "torn-tail")
        reborn = HintLog(path)
        pending, valid_bytes, dropped = reborn.replay()
        assert dropped
        assert [h["seq"] for h in pending] == [1]
        reborn.truncate(valid_bytes)
        # Post-truncate, the journal replays clean.
        pending2, _, dropped2 = HintLog(path).replay()
        assert not dropped2
        assert [h["seq"] for h in pending2] == [1]

    def test_interior_corruption_refused(self, tmp_path):
        path = tmp_path / "hints.wal"
        log = HintLog(path)
        log.append_hint(1, "s1", make_entry())
        log.append_hint(2, "s2", make_entry(total=200, sizes=(150, 50)))
        log.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(PersistenceError):
            HintLog(path).replay()

    def test_reset_empties_the_journal(self, tmp_path):
        path = tmp_path / "hints.wal"
        log = HintLog(path)
        log.append_hint(1, "s1", make_entry())
        log.reset()
        log.close()
        assert path.stat().st_size == 0
        assert HintLog(path).replay() == ([], 0, False)


class TestReplicaSet:
    def test_replica_set_is_the_ring_preference_prefix(self):
        ring = HashRing()
        for sid in ("s0", "s1", "s2", "s3"):
            ring.add(sid)
        for key in ("alpha", "beta", "gamma"):
            replicas = ring.replica_set(key, 2)
            assert replicas == ring.preference(key, limit=2)
            assert replicas[0] == ring.lookup(key)
            assert len(set(replicas)) == 2

    def test_replica_set_caps_at_membership(self):
        ring = HashRing()
        ring.add("only")
        assert ring.replica_set("k", 3) == ["only"]


class TestPlanReplicator:
    def _replicator(self, net, tmp_path=None, **kwargs):
        kwargs.setdefault("retry_interval", 0.05)
        hint_path = (
            str(tmp_path / "s0.hints") if tmp_path is not None else None
        )
        rep = PlanReplicator(
            "s0", PlanCache(), replicas=2, hint_path=hint_path,
            client_factory=net.factory, **kwargs,
        )
        rep.set_peers(roster("s0", "s1", "s2"))
        return rep

    def _home_target(self, rep, request):
        """The one non-self member of the entry's replica set."""
        key = affinity_key(request.total, request.partitioner,
                           request.option_dict())
        targets = [
            sid for sid in rep._ring.replica_set(key, rep.replicas)
            if sid != rep.shard_id
        ]
        assert len(targets) == 1
        return targets[0]

    def test_committed_plans_push_to_ring_successors(self):
        net = StubNet()
        rep = self._replicator(net)
        try:
            request, result = make_result()
            target = self._home_target(rep, request)
            rep.plan_committed(request, result)
            assert rep.quiesce(timeout=5.0)
            assert net.count(target) == 1
            pushed = net.pushes[target][0]
            assert pushed["key"] == request.key
            assert pushed["source"] == "s0"
            assert PlanResult.from_dict(pushed["result"]).to_dict() \
                == result.to_dict()
            assert rep.stats()["replicas_written"] == 1
        finally:
            rep.close()

    def test_replicas_one_disables_pushing(self):
        net = StubNet()
        rep = PlanReplicator("s0", PlanCache(), replicas=1,
                             client_factory=net.factory)
        rep.set_peers(roster("s0", "s1"))
        try:
            request, result = make_result()
            rep.plan_committed(request, result)
            assert rep.quiesce()
            assert rep.stats()["pending_pushes"] == 0
            assert sum(net.count(s) for s in ("s1",)) == 0
        finally:
            rep.close()

    def test_bad_replica_count_refused(self):
        with pytest.raises(FuPerModError):
            PlanReplicator("s0", PlanCache(), replicas=0)

    def test_failed_push_becomes_a_durable_hint(self, tmp_path):
        net = StubNet()
        rep = self._replicator(net, tmp_path)
        try:
            request, result = make_result()
            target = self._home_target(rep, request)
            net.down.add(target)
            rep.plan_committed(request, result)
            assert rep.quiesce()
            assert wait_for(lambda: rep.stats()["pending_hints"] == 1)
            assert rep.hint_log.records >= 1
            # The peer answers again: the drainer hands the hint off.
            with net.lock:
                net.down.discard(target)
            assert wait_for(lambda: net.count(target) == 1)
            assert wait_for(lambda: rep.stats()["pending_hints"] == 0)
            stats = rep.stats()
            assert stats["hints_queued"] == 1
            assert stats["hints_drained"] == 1
            # Every hint acked: the journal resets to zero bytes.
            assert wait_for(
                lambda: (tmp_path / "s0.hints").stat().st_size == 0
            )
        finally:
            rep.close()

    def test_hints_survive_a_home_crash(self, tmp_path):
        net = StubNet()
        rep = self._replicator(net, tmp_path)
        request, result = make_result()
        target = self._home_target(rep, request)
        net.down.add(target)
        rep.plan_committed(request, result)
        assert rep.quiesce()
        assert wait_for(lambda: rep.stats()["pending_hints"] == 1)
        rep.close()  # the "crash": hints only exist in the journal now

        with net.lock:
            net.down.discard(target)
        reborn = self._replicator(net, tmp_path)
        try:
            assert reborn.recover() == 1
            assert wait_for(lambda: net.count(target) == 1)
            assert net.pushes[target][0]["key"] == request.key
        finally:
            reborn.close()

    def test_hint_cap_abandons_the_oldest(self):
        net = StubNet()
        rep = PlanReplicator(
            "s0", PlanCache(), replicas=2, max_hints=2,
            retry_interval=30.0, client_factory=net.factory,
        )
        rep.set_peers(roster("s0", "s1"))
        try:
            net.down.add("s1")
            for total in (100, 200, 300):
                request, result = make_result(
                    total=total, sizes=(total - 40, 40)
                )
                rep.plan_committed(request, result)
            assert rep.quiesce()
            assert wait_for(lambda: rep.stats()["hints_queued"] == 3)
            stats = rep.stats()
            assert stats["pending_hints"] == 2  # bounded, not growing
            assert stats["hints_dropped"] == 1
        finally:
            rep.close()


class TestApplyReplicate:
    def _receiver(self):
        return PlanReplicator("s1", PlanCache(), replicas=2)

    def test_valid_entry_lands_bit_identically(self):
        rep = self._receiver()
        try:
            entry = make_entry()
            status, reply = rep.apply_replicate(entry)
            assert status == 200 and reply["ok"]
            exported = rep.cache.export_entry(entry["key"])
            assert exported is not None
            result, models_fp, spec = exported
            assert result.to_dict() == entry["result"]
            assert models_fp == FP
            assert list(spec) == entry["spec"]
            assert rep.stats()["replicas_received"] == 1
            assert rep.stats()["repairs_applied"] == 0
        finally:
            rep.close()

    def test_repair_pushes_are_counted(self):
        rep = self._receiver()
        try:
            status, _ = rep.apply_replicate(dict(make_entry(), repair=True))
            assert status == 200
            assert rep.stats()["repairs_applied"] == 1
        finally:
            rep.close()

    @pytest.mark.parametrize("mangle", [
        lambda e: None,
        lambda e: "not a dict",
        lambda e: {k: v for k, v in e.items() if k != "result"},
        lambda e: dict(e, result=dict(e["result"], key="someone-else")),
        lambda e: dict(e, result=dict(e["result"], sizes=[1, 1])),
        lambda e: dict(e, result=dict(e["result"], times=["0.5"])),
    ])
    def test_poisoned_entries_refused(self, mangle):
        rep = self._receiver()
        try:
            status, reply = rep.apply_replicate(mangle(make_entry()))
            assert status == 400 and "error" in reply
            assert rep.cache.export_entry(make_entry()["key"]) is None
            assert rep.stats()["replicas_received"] == 0
        finally:
            rep.close()


class TestDigest:
    def test_digest_is_sorted_and_spec_aware(self):
        rep = PlanReplicator("s0", PlanCache(), replicas=2)
        try:
            with_spec = make_entry(total=100)
            rep.apply_replicate(with_spec)
            _, bare = make_result(total=200, sizes=(150, 50))
            rep.cache.put(bare.key, bare, FP)  # no spec: not placeable
            digest = rep.digest()
            assert digest["shard_id"] == "s0"
            keys = [row[0] for row in digest["entries"]]
            assert keys == sorted(keys) and len(keys) == 2
            by_key = {row[0]: row for row in digest["entries"]}
            assert by_key[with_spec["key"]][2] is not None  # affinity key
            assert by_key[bare.key][2] is None  # anti-entropy skips it
            stored = rep.cache.export_entry(with_spec["key"])[0]
            assert by_key[with_spec["key"]][1] == entry_fingerprint(
                with_spec["key"], stored
            )
            assert digest["pending_hints"] == 0
            assert rep.stats()["digests_served"] == 1
        finally:
            rep.close()

    def test_digest_carries_the_epoch_when_sourced(self):
        rep = PlanReplicator(
            "s0", PlanCache(), replicas=2,
            epoch_source=lambda: (7, "f" * 16),
        )
        try:
            digest = rep.digest()
            assert digest["epoch"] == 7
            assert digest["models_fp"] == "f" * 16
        finally:
            rep.close()


SIZES = [16, 128, 1024, 4096]


def make_models(speeds=(100.0, 200.0)):
    return [
        model_from_time_fn(PiecewiseModel, lambda d, s=s: d / s, SIZES)
        for s in speeds
    ]


def drift_points(speeds, factor, sizes=(48, 2048)):
    return [
        points_from_time_fn(lambda d, s=s: factor * d / s, sizes)
        for s in speeds
    ]


class TestEpochVerification:
    """Satellite: plan WAL vs lineage WAL disagreeing about the epoch."""

    def test_verified_fingerprints_cover_every_committed_epoch(self):
        speeds = (100.0, 200.0)
        lineage = ModelLineage(make_models(speeds))
        root_fp = lineage.fingerprint
        lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        child_fp = lineage.fingerprint
        verified = lineage.verified_fingerprints()
        assert verified == {root_fp, child_fp}

    def test_purge_drops_only_unverifiable_plans(self):
        lineage = ModelLineage(make_models())
        cache = PlanCache()
        good_req, good = make_result(fp=lineage.fingerprint)
        cache.put(good_req.key, good, lineage.fingerprint)
        bad_req, bad = make_result(total=200, sizes=(150, 50),
                                   fp="dead" * 4)
        cache.put(bad_req.key, bad, "dead" * 4)
        assert purge_unverified(cache, lineage) == 1
        assert cache.export_entry(good_req.key) is not None
        assert cache.export_entry(bad_req.key) is None

    def test_torn_lineage_tail_never_serves_unverifiable_plans(
        self, tmp_path
    ):
        """The epoch-disagreement crash.

        The plan WAL committed a plan against epoch 1's models; the
        lineage WAL lost epoch 1 to a torn tail.  Recovery must land on
        the consistent *older* epoch and refuse to serve the plan whose
        fingerprint the shorter lineage cannot vouch for -- plans from
        surviving epochs stay servable.
        """
        speeds = (100.0, 200.0)
        lineage_wal = tmp_path / "models.lineage"
        snapshot = tmp_path / "plans.json"

        lineage = ModelLineage(make_models(speeds), wal_path=lineage_wal)
        root_fp = lineage.fingerprint
        cache = DurablePlanCache(snapshot)
        old_req, old_plan = make_result(fp=root_fp)
        cache.put(old_req.key, old_plan, root_fp)

        lineage.commit(lineage.propose(drift_points(speeds, 2.0)))
        epoch1_fp = lineage.fingerprint
        new_req, new_plan = make_result(total=200, sizes=(150, 50),
                                        fp=epoch1_fp)
        cache.put(new_req.key, new_plan, epoch1_fp)
        lineage.close()
        cache.wal.close()

        # The crash: the plan WAL kept epoch 1's plan, the lineage WAL
        # tore mid-commit and lost epoch 1 itself.
        corrupt_wal(lineage_wal, "torn-tail")

        reborn_lineage = ModelLineage(make_models(speeds),
                                      wal_path=lineage_wal)
        assert reborn_lineage.recover() == 0
        assert reborn_lineage.epoch == 0
        assert reborn_lineage.fingerprint == root_fp

        reborn_cache = DurablePlanCache(snapshot)
        reborn_cache.recover()
        assert reborn_cache.export_entry(new_req.key) is not None  # replayed

        purged = purge_unverified(reborn_cache, reborn_lineage)
        assert purged == 1
        assert reborn_cache.export_entry(new_req.key) is None
        assert reborn_cache.export_entry(old_req.key) is not None
        served = reborn_cache.export_entry(old_req.key)[0]
        assert served.to_dict() == old_plan.to_dict()
