"""Tests for process-binding behaviour in platform benchmarking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import PlatformBenchmark
from repro.core.precision import Precision
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


def _platform():
    return Platform(
        [Node("n", [Device("d", ConstantProfile(1.0e9), noise=NoNoise())])]
    )


class TestBinding:
    def test_bound_is_default_and_deterministic(self):
        bench = PlatformBenchmark(_platform(), unit_flops=1.0e6, seed=1)
        assert bench.bound
        point = bench.measure(0, 1000)
        # Noiseless device, bound process: exact time (1e9 flops at 1 GF/s).
        assert point.t == pytest.approx(1.0)
        assert point.ci == pytest.approx(0.0, abs=1e-15)

    def test_unbound_injects_jitter_solo(self):
        bench = PlatformBenchmark(
            _platform(), unit_flops=1.0e6,
            precision=Precision(reps_min=10, reps_max=10), seed=1, bound=False,
        )
        point = bench.measure(0, 1000)
        # Jitter makes the confidence interval visibly non-zero.
        assert point.ci > 0.0
        assert point.t == pytest.approx(1.0, rel=0.5)

    def test_unbound_injects_jitter_group(self):
        bench = PlatformBenchmark(
            _platform(), unit_flops=1.0e6,
            precision=Precision(reps_min=10, reps_max=10), seed=1, bound=False,
        )
        (point,) = bench.measure_group([1000])
        assert point is not None
        assert point.ci > 0.0

    def test_unbound_mean_biased_upwards(self):
        # Migration spikes only slow things down, so the unbound mean over
        # many reps exceeds the bound mean.
        bound = PlatformBenchmark(
            _platform(), unit_flops=1.0e6,
            precision=Precision(reps_min=25, reps_max=25), seed=3,
        ).measure(0, 1000)
        unbound = PlatformBenchmark(
            _platform(), unit_flops=1.0e6,
            precision=Precision(reps_min=25, reps_max=25), seed=3, bound=False,
        ).measure(0, 1000)
        assert unbound.t > bound.t

    def test_outlier_filter_tames_unbound_mean(self):
        naive = PlatformBenchmark(
            _platform(), unit_flops=1.0e6,
            precision=Precision(reps_min=25, reps_max=25), seed=5, bound=False,
        ).measure(0, 1000)
        robust = PlatformBenchmark(
            _platform(), unit_flops=1.0e6,
            precision=Precision(reps_min=25, reps_max=25, outlier_threshold=3.5),
            seed=5, bound=False,
        ).measure(0, 1000)
        nominal = 1.0
        assert abs(robust.t - nominal) <= abs(naive.t - nominal)

    def test_unbound_reproducible_with_seed(self):
        a = PlatformBenchmark(_platform(), 1.0e6, seed=9, bound=False).measure(0, 100)
        b = PlatformBenchmark(_platform(), 1.0e6, seed=9, bound=False).measure(0, 100)
        assert a.t == b.t

    def test_binding_factor_statistics(self):
        bench = PlatformBenchmark(_platform(), 1.0e6, seed=2, bound=False)
        factors = [bench._binding_factor(0) for _ in range(3000)]
        assert all(f > 0 for f in factors)
        # Spikes occur at roughly the configured probability.
        spikes = sum(1 for f in factors if f > 1.4)
        assert 0.02 < spikes / len(factors) < 0.12
        assert float(np.median(factors)) == pytest.approx(1.0, abs=0.05)
