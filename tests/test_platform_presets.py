"""Tests for platform presets."""

from __future__ import annotations

import pytest

from repro.platform.device import DeviceKind
from repro.platform.presets import (
    constant_speed_platform,
    fig2_device,
    fig4_trio,
    heterogeneous_cluster,
    hybrid_node,
    netlib_blas_profile,
    uniprocessor_node,
)


class TestNetlibProfile:
    def test_shape_peaks_around_5_gflops(self):
        p = netlib_blas_profile()
        rates = [p.flops_at(d) for d in range(50, 5000, 50)]
        assert 4.0e9 < max(rates) < 6.0e9

    def test_wiggles_in_fig2_range(self):
        p = netlib_blas_profile()
        rates = [p.flops_at(d) for d in range(200, 5000, 25)]
        rises = sum(1 for a, b in zip(rates, rates[1:]) if b > a)
        falls = sum(1 for a, b in zip(rates, rates[1:]) if b < a)
        assert rises > 5 and falls > 5

    def test_fig2_device_kind(self):
        assert fig2_device().kind is DeviceKind.CPU_CORE


class TestHybridNode:
    def test_device_count(self):
        node = hybrid_node(cores=4)
        assert len(node) == 5  # 4 CPU cores + 1 GPU

    def test_gpu_present(self):
        node = hybrid_node()
        kinds = [d.kind for d in node.devices]
        assert DeviceKind.GPU in kinds

    def test_cores_heterogeneous(self):
        node = hybrid_node(cores=3, noisy=False)
        speeds = [d.profile.flops_at(100) for d in node.devices[:3]]
        assert len(set(speeds)) == 3

    def test_contention_declared(self):
        node = hybrid_node()
        assert node.contention_factor(2) < 1.0

    def test_gpu_faster_than_cpu_at_large_sizes(self):
        node = hybrid_node(noisy=False)
        cpu = node.devices[0]
        gpu = node.devices[-1]
        assert gpu.profile.flops_at(40000) > 5 * cpu.profile.flops_at(40000)

    def test_cpu_faster_than_gpu_at_tiny_sizes(self):
        node = hybrid_node(noisy=False)
        cpu = node.devices[0]
        gpu = node.devices[-1]
        assert cpu.profile.flops_at(10) > gpu.profile.flops_at(10)


class TestClusterPresets:
    def test_heterogeneous_cluster_size(self):
        p = heterogeneous_cluster()
        assert p.size == 7  # 4 cores + gpu + 2 uniprocessors
        assert len(p.nodes) == 3

    def test_unique_device_names(self):
        p = heterogeneous_cluster()
        names = [d.name for d in p.devices]
        assert len(set(names)) == len(names)

    def test_fig4_trio_speed_ratio(self):
        p = fig4_trio(noisy=False)
        assert p.size == 3
        speeds = [d.profile.flops_at(100) for d in p.devices]
        assert speeds[0] / speeds[2] == pytest.approx(16.0 / 9.0, rel=0.01)
        assert speeds[0] / speeds[1] == pytest.approx(16.0 / 11.0, rel=0.01)

    def test_uniprocessor_node(self):
        n = uniprocessor_node("u", 3.0e9, noisy=False)
        assert len(n) == 1
        assert n.devices[0].profile.flops_at(50) == pytest.approx(3.0e9, rel=0.05)

    def test_constant_speed_platform(self):
        p = constant_speed_platform([1.0e9, 2.0e9])
        assert p.size == 2
        assert p.device(1).profile.flops_at(12345) == 2.0e9
