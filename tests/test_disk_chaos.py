"""Disk chaos: kill a shard's storage mid-flood, degrade, heal, recover.

The durability ladder driven end to end with real worker processes and
a seeded :class:`~repro.faults.disk.DiskFaultPlan` spliced under one
shard's journals (the ``--disk-fault-plan`` seam):

* **disk death mid-flood**: shard0's WAL device dies under a mixed
  flood -- every request still succeeds (zero storage-caused errors),
  the wounded shard's acks flip ``durable: false``, its ``/stats`` and
  ``/health`` tell the truth, and the fleet ``/metrics`` aggregate
  reports it memory-only under the ``fupermod-fleet-metrics/4`` schema
  once the router's durability poll notices;
* **heal then SIGKILL**: the device heals on schedule, the background
  probe re-syncs the journal (plans accepted while degraded included),
  and a SIGKILL immediately after recovers every acked plan from disk,
  served identically.
"""

from __future__ import annotations

import time

import pytest

from repro.cli import main as cli_main
from repro.faults import DiskFaultPlan, DiskFaults
from repro.faults.serve import flood_totals
from repro.serve import PlanFleet, ShardClient, affinity_key

pytestmark = [pytest.mark.chaos, pytest.mark.fleet, pytest.mark.disk]


@pytest.fixture(scope="module")
def points_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("disk-chaos-points")
    assert cli_main([
        "build", "--platform", "fig4", "--sizes", "32,128,512",
        "--out", str(out),
    ]) == 0
    return out


def save_fault_plan(tmp_path, **fault_fields):
    """A saved plan killing shard0's WAL device (probe file included)."""
    plan = DiskFaultPlan({
        "shard0.plans.wal*": DiskFaults(error="ENOSPC", **fault_fields),
    })
    path = tmp_path / "disk-faults.json"
    plan.save(path)
    return path


def crash(fleet, shard_id):
    """SIGKILL without supervisor bookkeeping (how real crashes land)."""
    proc = fleet.shards[shard_id].proc
    proc.kill()
    proc.wait()


def wait_for(predicate, timeout=10.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDiskDeathMidFlood:
    def test_dead_disk_never_surfaces_as_a_request_error(
        self, points_dir, tmp_path
    ):
        faults = save_fault_plan(tmp_path, fail_after=0)
        stream = flood_totals(36, pool=12, miss_rate=0.3, seed=21)
        with PlanFleet(
            points_dir, workers=2, probe=False,
            cache_dir=tmp_path / "caches", disk_fault_plan=faults,
        ) as fleet:
            placed = {
                t: fleet.router.ring.lookup(affinity_key(t, "geometric", {}))
                for t in set(stream)
            }
            # Replication pushes every plan to both shards anyway, but
            # the flood must also home real traffic on the victim.
            assert sum(1 for s in placed.values() if s == "shard0") >= 4

            client = ShardClient(fleet.url)
            try:
                for index, total in enumerate(stream):
                    reply = client.plan({"cmd": "plan", "total": total})
                    assert "error" not in reply, (
                        f"request {index} (total={total}) died with the "
                        f"disk: {reply}"
                    )
                    assert sum(reply["sizes"]) == total

                # The wounded shard, asked directly, is honest about it.
                direct = fleet.shard_client("shard0")
                stats = direct.stats()
                durability = stats["durability"]
                assert durability["mode"] == "memory-only"
                assert durability["trips"] == 1
                assert durability["append_errors"] >= 3
                assert "ENOSPC" in durability["last_disk_error"]
                status, health = direct._json("GET", "/health")
                assert status == 200 and health["durable"] is False

                # A fresh solve on the dead-disk shard acks loudly.
                degraded = direct.plan({"cmd": "plan", "total": 777_001})
                assert "error" not in degraded
                assert degraded.get("durable") is False

                # The healthy shard's acks stay layout-clean.
                healthy = fleet.shard_client("shard1")
                clean = healthy.plan({"cmd": "plan", "total": 777_002})
                assert "error" not in clean
                assert "durable" not in clean

                # The router's durability poll notices and the fleet
                # metrics aggregate reports it under the /4 schema.
                assert wait_for(
                    lambda: fleet.router.memory_only() == ["shard0"]
                ), "the router never noticed the memory-only shard"
                metrics = client.metrics()
                assert metrics["schema"] == "fupermod-fleet-metrics/4"
                summary = metrics["fleet"]["durability"]
                assert summary["memory_only"] == ["shard0"]
                assert summary["modes"]["memory-only"] == 1
                assert summary["modes"]["durable"] == 1
                assert summary["workers"]["trips"] >= 1
                assert summary["router"]["durability_probes"] >= 1
                assert metrics["fleet"]["memory_only"] == ["shard0"]
            finally:
                client.close()


class TestHealThenSigkill:
    def test_heal_resyncs_and_a_sigkill_recovers_every_ack(
        self, points_dir, tmp_path
    ):
        # Device ops: one clean put (2), then budget=3 failed appends
        # trip the guard at op 5.  Each degraded-mode probe burns one op
        # until the window closes at 16, so the 0.1 s probe loop heals
        # within a couple of seconds.
        faults = save_fault_plan(tmp_path, fail_after=2, heal_after=16)
        with PlanFleet(
            points_dir, workers=2, probe=False,
            cache_dir=tmp_path / "caches", disk_fault_plan=faults,
            worker_args=["--probe-interval", "0.1"],
        ) as fleet:
            victim = "shard0"
            pool = [
                t for t in flood_totals(64, pool=32, miss_rate=0.0, seed=3)
                if fleet.router.ring.lookup(
                    affinity_key(t, "geometric", {})) == victim
            ]
            assert len(pool) >= 6, "enlarge the pool: too few victim totals"

            client = ShardClient(fleet.url)
            direct = fleet.shard_client(victim)
            try:
                served = {}
                for total in pool[:5]:
                    reply = client.plan({"cmd": "plan", "total": total})
                    assert "error" not in reply
                    served[total] = (reply["sizes"], reply["times"])
                assert direct.stats()["durability"]["trips"] == 1

                # The background probe must heal the shard on its own.
                assert wait_for(
                    lambda: direct.stats()["durability"]["mode"] == "durable"
                ), "the worker's probe loop never healed the disk"
                assert direct.stats()["durability"]["heals"] == 1

                # Once the router's poll sees the heal, the home shard
                # is preferred again and post-heal traffic journals
                # normally on it.
                assert wait_for(
                    lambda: fleet.router.memory_only() == []
                ), "the router never noticed the heal"
                post_heal = pool[5]
                reply = client.plan({"cmd": "plan", "total": post_heal})
                assert "error" not in reply
                served[post_heal] = (reply["sizes"], reply["times"])

                # SIGKILL right after the heal: the re-synced journal
                # must hold every ack, including the degraded-mode ones.
                crash(fleet, victim)
                fleet.router.mark_dead(victim)
                ready = fleet.restart_shard(victim)
                assert ready["recovered"] >= len(served), (
                    "plans accepted while degraded were lost on restart"
                )
                assert ready["durability"] == "durable"

                fresh = fleet.shard_client(victim)
                for total, (sizes, times) in served.items():
                    again = fresh.plan({"cmd": "plan", "total": total})
                    assert "error" not in again
                    assert again["cached"] is True, (
                        f"total={total} re-solved instead of recovered"
                    )
                    assert again["sizes"] == sizes
                    assert again["times"] == times
            finally:
                client.close()
