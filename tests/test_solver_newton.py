"""Tests for the damped Newton system solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver.newton import newton_system


class TestNewtonSystem:
    def test_linear_system(self):
        # Solve A x = b as F(x) = A x - b.
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([5.0, 10.0])
        res = newton_system(lambda x: a @ x - b, [0.0, 0.0])
        assert res.converged
        assert res.x == pytest.approx(np.linalg.solve(a, b), abs=1e-8)

    def test_nonlinear_2d(self):
        # x^2 + y^2 = 4, x - y = 0 -> x = y = sqrt(2).
        def f(v):
            x, y = v
            return np.array([x * x + y * y - 4.0, x - y])

        res = newton_system(f, [1.0, 0.5])
        assert res.converged
        assert res.x[0] == pytest.approx(np.sqrt(2.0), abs=1e-8)
        assert res.x[1] == pytest.approx(np.sqrt(2.0), abs=1e-8)

    def test_analytic_jacobian_used(self):
        calls = {"jac": 0}

        def f(v):
            return np.array([v[0] ** 3 - 8.0])

        def jac(v):
            calls["jac"] += 1
            return np.array([[3.0 * v[0] ** 2]])

        res = newton_system(f, [1.0], jacobian=jac)
        assert res.converged
        assert res.x[0] == pytest.approx(2.0, abs=1e-8)
        assert calls["jac"] > 0

    def test_bounds_projection(self):
        # Root at x = -2 is outside the box; solver must stay inside and
        # report non-convergence.
        res = newton_system(
            lambda x: np.array([x[0] + 2.0]), [1.0], lower=[0.0], upper=[10.0],
            max_iter=20,
        )
        assert not res.converged
        assert res.x[0] >= 0.0

    def test_already_at_root(self):
        res = newton_system(lambda x: np.array([x[0] - 1.0]), [1.0])
        assert res.converged
        assert res.iterations == 0

    def test_singular_jacobian_falls_back_to_lstsq(self):
        # F constant in one variable -> singular Jacobian; lstsq step still
        # reduces the residual of the other equation.
        def f(v):
            return np.array([v[0] - 3.0, 0.0 * v[1]])

        res = newton_system(f, [0.0, 0.0], max_iter=50)
        assert res.x[0] == pytest.approx(3.0, abs=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(SolverError):
            newton_system(lambda x: np.array([1.0, 2.0]), [0.0])

    def test_stalls_report_not_converged(self):
        # |x| has no root reachable by Newton from 1 with this residual:
        # f(x) = x^2 + 1 > 0 everywhere.
        res = newton_system(lambda x: np.array([x[0] ** 2 + 1.0]), [1.0], max_iter=30)
        assert not res.converged
        assert res.residual_norm >= 1.0 - 1e-9

    def test_equal_time_partitioning_shape(self):
        # The actual use case: t_i(x_i) equal, sum x = D, linear times.
        speeds = np.array([4.0, 2.0, 1.0])
        total = 70.0

        def f(x):
            t = x / speeds
            return np.array([t[0] - t[2], t[1] - t[2], x.sum() - total])

        res = newton_system(f, [total / 3] * 3)
        assert res.converged
        assert res.x == pytest.approx(np.array([40.0, 20.0, 10.0]), abs=1e-6)
