"""Integration tests combining features across subsystems.

Each test wires together pieces that have only been tested separately,
following paths a real user would take: capacity limits inside a
hierarchical split, adaptive models feeding partitioners, calibrated twins
feeding the whole pipeline, end-to-end persistence, and the CLI's stencil
demo.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.benchmark import Benchmark, PlatformBenchmark, build_full_models
from repro.core.builder import build_adaptive_model
from repro.core.kernel import SimulatedKernel
from repro.core.models import AkimaModel, PiecewiseModel
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.hierarchical import (
    group_models_by_node,
    partition_hierarchical,
)
from repro.core.partition.limits import partition_with_limits
from repro.core.precision import Precision
from repro.io.files import load_model, save_points
from repro.platform.calibration import fit_cache_profile, speed_samples_from_points
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import CacheHierarchyProfile, ConstantProfile


def _flat_platform(speeds):
    return Platform(
        [
            Node(f"n{i}", [Device(f"d{i}", ConstantProfile(s), noise=NoNoise())])
            for i, s in enumerate(speeds)
        ]
    )


class TestLimitsInsideHierarchy:
    def test_capped_device_inside_node(self):
        # Node 0 has two devices, one capped; hierarchical top-level split
        # feeds a limit-aware bottom level.
        platform = _flat_platform([4.0e9, 4.0e9, 2.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        models, _ = build_full_models(bench, PiecewiseModel, [64, 1024, 8192])
        groups = [models[:2], models[2:]]
        hier = partition_hierarchical(10_000, groups, [100, 1000, 10000])
        node0_share = hier.node_distribution.parts[0].d
        capped = partition_with_limits(
            partition_geometric, node0_share, groups[0], [1000, None]
        )
        assert capped.total == node0_share
        assert capped.sizes[0] <= 1000
        # The cap's overflow lands on the sibling device, not elsewhere.
        assert capped.sizes[1] == node0_share - capped.sizes[0]


class TestAdaptiveModelsFeedPartitioners:
    def test_adaptive_built_models_balance(self):
        cliff = Device(
            "cliff",
            CacheHierarchyProfile(
                levels=[(1000.0, 6.0e9)], paged_flops=0.6e9, transition_width=0.05
            ),
            noise=NoNoise(),
        )
        steady = Device("steady", ConstantProfile(2.0e9), noise=NoNoise())
        models = []
        for device in (cliff, steady):
            kernel = SimulatedKernel(device, unit_flops=1.0e6)
            bench = Benchmark(kernel, Precision(reps_min=2, reps_max=2))
            result = build_adaptive_model(
                bench.run, AkimaModel, (16, 60_000), accuracy=0.03, max_points=20
            )
            models.append(result.model)
        dist = partition_geometric(40_000, models)
        # Judge against ground truth.
        times = [
            device.ideal_time(1.0e6 * d, d)
            for device, d in zip((cliff, steady), dist.sizes)
        ]
        assert (max(times) - min(times)) / max(times) < 0.25


class TestCalibratedTwinPipeline:
    def test_twin_platform_partitions_like_original(self):
        truth = CacheHierarchyProfile(
            levels=[(1500.0, 5.0e9)], paged_flops=0.7e9, transition_width=0.1
        )
        original = Device("orig", truth, noise=NoNoise())
        kernel = SimulatedKernel(original, unit_flops=1.0e6)
        bench = Benchmark(kernel, Precision(reps_min=2, reps_max=2))
        points = [bench.run(int(d)) for d in np.geomspace(20, 50000, 14)]
        fit = fit_cache_profile(
            speed_samples_from_points(points, kernel.complexity)
        )
        twin = Device("twin", fit.profile, noise=NoNoise())

        steady = Device("steady", ConstantProfile(2.0e9), noise=NoNoise())
        dists = []
        for first in (original, twin):
            platform = Platform([Node("a", [first]), Node("b", [steady])])
            pb = PlatformBenchmark(platform, unit_flops=1.0e6)
            models, _ = build_full_models(
                pb, PiecewiseModel,
                sorted({int(round(32 * 2 ** (k / 2))) for k in range(22)}),
            )
            dists.append(partition_geometric(30_000, models))
        for a, b in zip(dists[0].sizes, dists[1].sizes):
            assert abs(a - b) <= 0.05 * 30_000


class TestPersistenceAcrossModelTypes:
    @pytest.mark.parametrize("name", ["constant", "piecewise", "akima", "pchip",
                                      "linear"])
    def test_every_registered_model_round_trips(self, name, tmp_path):
        from repro.core.registry import model_factory

        platform = _flat_platform([3.0e9])
        bench = PlatformBenchmark(platform, unit_flops=1.0e6)
        factory = model_factory(name)
        models, _ = build_full_models(bench, factory, [64, 256, 1024])
        path = tmp_path / "m.points"
        save_points(path, list(models[0].points))
        reloaded = load_model(path, factory)
        for x in [50.0, 500.0, 2000.0]:
            assert reloaded.time(x) == pytest.approx(models[0].time(x), rel=1e-9)


class TestCliStencilDemo:
    def test_runs(self, capsys):
        code = main(["demo-stencil", "--rows", "90", "--width", "16",
                     "--iterations", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "final rows" in out
        assert "heat stencil" in out
