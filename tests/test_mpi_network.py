"""Tests for the Hockney link model and platform-aware network."""

from __future__ import annotations

import pytest

from repro.errors import CommunicationError
from repro.mpi.network import DEFAULT_INTER_NODE, DEFAULT_INTRA_NODE, LinkModel, Network
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


class TestLinkModel:
    def test_hockney_formula(self):
        link = LinkModel(latency=1e-3, bandwidth=1e6)
        assert link.time(1e6) == pytest.approx(1e-3 + 1.0)

    def test_zero_bytes_free(self):
        link = LinkModel(latency=1e-3, bandwidth=1e6)
        assert link.time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(CommunicationError):
            LinkModel(1e-3, 1e6).time(-1)

    def test_negative_latency_rejected(self):
        with pytest.raises(CommunicationError):
            LinkModel(-1.0, 1e6)

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(CommunicationError):
            LinkModel(0.0, 0.0)

    def test_latency_dominates_small_messages(self):
        link = LinkModel(latency=1e-4, bandwidth=1e9)
        assert link.time(8) == pytest.approx(1e-4, rel=1e-3)

    def test_defaults_sane(self):
        assert DEFAULT_INTRA_NODE.time(1e6) < DEFAULT_INTER_NODE.time(1e6)


def _platform_two_nodes() -> Platform:
    def dev(name):
        return Device(name, ConstantProfile(1e9), noise=NoNoise())

    return Platform(
        [Node("n0", [dev("a"), dev("b")]), Node("n1", [dev("c")])]
    )


class TestNetwork:
    def test_uniform_without_platform(self):
        net = Network()
        assert net.time(0, 1, 1000) == net.time(0, 5, 1000)

    def test_self_message_free(self):
        net = Network()
        assert net.time(3, 3, 1e9) == 0.0

    def test_platform_aware_intra_vs_inter(self):
        net = Network(platform=_platform_two_nodes())
        intra = net.time(0, 1, 1e6)  # a -> b, same node
        inter = net.time(0, 2, 1e6)  # a -> c, across nodes
        assert intra < inter

    def test_link_selection(self):
        net = Network(platform=_platform_two_nodes())
        assert net.link(0, 1) is net.intra_node
        assert net.link(0, 2) is net.inter_node

    def test_custom_links(self):
        fast = LinkModel(0.0, 1e12)
        slow = LinkModel(1.0, 1.0)
        net = Network(inter_node=slow, intra_node=fast)
        assert net.time(0, 1, 10) == pytest.approx(1.0 + 10.0)
