"""Repository self-consistency guards.

These tests keep the documentation contract honest:

* every bench target named in DESIGN.md's experiment index exists, and
  every bench file is registered in the index (no orphan experiments);
* every public module, class and function in the library carries a
  docstring (the documentation deliverable, enforced).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import repro

_ROOT = Path(__file__).resolve().parent.parent


class TestExperimentIndex:
    def _design_targets(self):
        text = (_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        return set(re.findall(r"`(benchmarks/bench_[a-z0-9_]+\.py)`", text))

    def _bench_files(self):
        return {
            f"benchmarks/{p.name}"
            for p in (_ROOT / "benchmarks").glob("bench_*.py")
        }

    def test_every_indexed_bench_exists(self):
        missing = self._design_targets() - self._bench_files()
        assert not missing, f"DESIGN.md names missing benches: {sorted(missing)}"

    def test_every_bench_is_indexed(self):
        orphans = self._bench_files() - self._design_targets()
        assert not orphans, f"benches absent from DESIGN.md: {sorted(orphans)}"

    def test_experiments_md_covers_every_figure_and_ablation(self):
        text = (_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        design = (_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        ids = set(re.findall(r"^\| (F\d+|A\d+) \|", design, flags=re.M))
        assert ids, "DESIGN.md experiment index not found"
        for exp_id in sorted(ids):
            assert re.search(rf"## {exp_id} ", text) or re.search(
                rf"{exp_id} addendum", text
            ), f"EXPERIMENTS.md has no section for {exp_id}"


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


class TestDocstrings:
    def _modules(self):
        out = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.rsplit(".", 1)[-1].startswith("_"):
                continue
            out.append(importlib.import_module(info.name))
        return out

    def test_every_public_module_documented(self):
        undocumented = [
            m.__name__ for m in self._modules() if not (m.__doc__ or "").strip()
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in self._modules():
            for name, obj in _public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for m_name, member in vars(obj).items():
                        if m_name.startswith("_"):
                            continue
                        if not inspect.isfunction(member):
                            continue
                        if (member.__doc__ or "").strip():
                            continue
                        # Overrides inherit the base method's docstring.
                        inherited = any(
                            (getattr(base, m_name, None) is not None
                             and (getattr(base, m_name).__doc__ or "").strip())
                            for base in obj.__mro__[1:]
                        )
                        if not inherited:
                            undocumented.append(
                                f"{module.__name__}.{name}.{m_name}"
                            )
        assert not undocumented, (
            f"{len(undocumented)} public items lack docstrings: "
            f"{sorted(set(undocumented))[:20]}"
        )
