"""SimCommunicator argument-validation error paths.

A simulated communicator has no MPI runtime underneath it to crash
loudly, so every malformed call must be rejected eagerly: invalid ranks,
empty and duplicate rank groups, non-finite or negative message sizes,
and zero-size collectives all raise CommunicationError instead of
silently producing a wrong schedule.
"""

import math

import pytest

from repro.errors import CommunicationError
from repro.mpi.comm import SimCommunicator


@pytest.fixture
def comm():
    return SimCommunicator(4)


# -- communicator construction -------------------------------------------

@pytest.mark.parametrize("size", [0, -1])
def test_nonpositive_size_rejected(size):
    with pytest.raises(CommunicationError, match="size must be >= 1"):
        SimCommunicator(size)


# -- invalid ranks --------------------------------------------------------

@pytest.mark.parametrize("rank", [-1, 4, 100])
def test_out_of_range_rank_rejected(comm, rank):
    with pytest.raises(CommunicationError, match="out of range"):
        comm.time(rank)
    with pytest.raises(CommunicationError, match="out of range"):
        comm.compute(rank, 1.0)
    with pytest.raises(CommunicationError, match="out of range"):
        comm.send(0, rank, 8.0)
    with pytest.raises(CommunicationError, match="out of range"):
        comm.exchange(rank, 0, 8.0)


def test_bad_rank_inside_group_rejected(comm):
    with pytest.raises(CommunicationError, match="out of range"):
        comm.barrier([0, 1, 7])
    with pytest.raises(CommunicationError, match="out of range"):
        comm.allreduce(8.0, ranks=[-1, 0])


def test_root_outside_group_rejected(comm):
    with pytest.raises(CommunicationError, match="root 3 not in group"):
        comm.bcast(3, 8.0, ranks=[0, 1])
    with pytest.raises(CommunicationError, match="root 3 not in group"):
        comm.scatterv(3, [8.0, 8.0], ranks=[0, 1])
    with pytest.raises(CommunicationError, match="root 3 not in group"):
        comm.gatherv(3, [8.0, 8.0], ranks=[0, 1])


# -- empty and duplicate groups ------------------------------------------

def test_empty_group_rejected(comm):
    for op in (
        lambda: comm.barrier([]),
        lambda: comm.allreduce(8.0, ranks=[]),
        lambda: comm.allgatherv([], ranks=[]),
    ):
        with pytest.raises(CommunicationError, match="empty rank group"):
            op()


def test_duplicate_group_rejected(comm):
    with pytest.raises(CommunicationError, match="duplicate ranks"):
        comm.barrier([0, 1, 1])
    with pytest.raises(CommunicationError, match="duplicate ranks"):
        comm.allreduce(8.0, ranks=[2, 2])
    with pytest.raises(CommunicationError, match="duplicate ranks"):
        comm.allgatherv([8.0, 8.0, 8.0], ranks=[0, 1, 0])


# -- malformed message sizes ---------------------------------------------

@pytest.mark.parametrize("nbytes", [-1.0, float("nan"), float("inf")])
def test_bad_message_size_rejected(comm, nbytes):
    with pytest.raises(CommunicationError, match="finite and non-negative"):
        comm.send(0, 1, nbytes)
    with pytest.raises(CommunicationError, match="finite and non-negative"):
        comm.exchange(0, 1, nbytes)
    with pytest.raises(CommunicationError, match="finite and non-negative"):
        comm.allreduce(nbytes)
    with pytest.raises(CommunicationError, match="finite and non-negative"):
        comm.bcast(0, nbytes)
    with pytest.raises(CommunicationError, match="finite and non-negative"):
        comm.allgatherv([8.0, nbytes, 8.0, 8.0])


def test_size_count_must_match_group(comm):
    with pytest.raises(CommunicationError, match="allgatherv: 2 sizes"):
        comm.allgatherv([8.0, 8.0])
    with pytest.raises(CommunicationError, match="scatterv: 3 sizes"):
        comm.scatterv(0, [8.0, 8.0, 8.0])
    with pytest.raises(CommunicationError, match="gatherv: 1 sizes"):
        comm.gatherv(0, [8.0], ranks=[0, 1])


# -- zero-size collectives -----------------------------------------------
#
# A collective whose *total* payload is zero moves no data: a caller bug,
# not a no-op.  Individual zero entries among non-zero ones stay legal --
# empty ranks contribute nothing to an allgather but still participate.

def test_zero_total_exchange_rejected(comm):
    with pytest.raises(CommunicationError, match="zero-size"):
        comm.exchange(0, 1, 0.0)
    with pytest.raises(CommunicationError, match="zero-size"):
        comm.exchange(0, 1, 0.0, 0.0)


def test_asymmetric_exchange_with_one_zero_leg_is_legal(comm):
    assert comm.exchange(0, 1, 0.0, 64.0) > 0.0


@pytest.mark.parametrize("op", ["allgatherv", "scatterv", "gatherv"])
def test_zero_total_vector_collective_rejected(comm, op):
    sizes = [0.0, 0.0, 0.0, 0.0]
    call = {
        "allgatherv": lambda: comm.allgatherv(sizes),
        "scatterv": lambda: comm.scatterv(0, sizes),
        "gatherv": lambda: comm.gatherv(0, sizes),
    }[op]
    with pytest.raises(CommunicationError, match="zero-size"):
        call()


@pytest.mark.parametrize("op", ["allgatherv", "scatterv", "gatherv"])
def test_partially_zero_vector_collective_is_legal(comm, op):
    sizes = [64.0, 0.0, 64.0, 0.0]
    call = {
        "allgatherv": lambda: comm.allgatherv(sizes),
        "scatterv": lambda: comm.scatterv(0, sizes),
        "gatherv": lambda: comm.gatherv(0, sizes),
    }[op]
    assert math.isfinite(call())


def test_clocks_untouched_after_rejected_call(comm):
    comm.compute(0, 1.0)
    before = comm.times()
    with pytest.raises(CommunicationError):
        comm.exchange(0, 1, 0.0)
    with pytest.raises(CommunicationError):
        comm.allgatherv([0.0] * 4)
    assert comm.times() == before
