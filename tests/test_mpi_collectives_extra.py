"""Tests for exchange and allreduce (the stencil's collectives)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.comm import SimCommunicator
from repro.mpi.network import LinkModel, Network


def _comm(size, latency=1e-3, bandwidth=1e6):
    link = LinkModel(latency, bandwidth)
    return SimCommunicator(size, network=Network(inter_node=link, intra_node=link))


class TestExchange:
    def test_symmetric_cost(self):
        c = _comm(2)
        done = c.exchange(0, 1, 1e6)
        assert done == pytest.approx(1.001)
        assert c.time(0) == c.time(1) == pytest.approx(1.001)

    def test_full_duplex_larger_direction_dominates(self):
        c = _comm(2)
        done = c.exchange(0, 1, 1e6, nbytes_ba=10.0)
        assert done == pytest.approx(1.001)

    def test_waits_for_slower_party(self):
        c = _comm(2)
        c.compute(1, 5.0)
        done = c.exchange(0, 1, 1e6)
        assert done == pytest.approx(5.0 + 1.001)
        assert c.time(0) == pytest.approx(5.0 + 1.001)

    def test_zero_size_exchange_rejected(self):
        from repro.errors import CommunicationError
        c = _comm(2)
        with pytest.raises(CommunicationError):
            c.exchange(0, 1, 0.0)

    def test_self_exchange_free(self):
        c = _comm(2)
        assert c.exchange(1, 1, 1e9) == 0.0

    def test_other_ranks_untouched(self):
        c = _comm(3)
        c.exchange(0, 1, 1e6)
        assert c.time(2) == 0.0


class TestAllreduce:
    def test_single_rank_noop(self):
        c = _comm(1)
        assert c.allreduce(8) == 0.0

    def test_two_ranks_one_round(self):
        c = _comm(2)
        t = c.allreduce(8.0)
        assert t == pytest.approx(1e-3 + 8e-6)

    def test_log_rounds(self):
        c = _comm(8)
        per_round = 1e-3 + 8e-6
        assert c.allreduce(8.0) == pytest.approx(3 * per_round)

    def test_non_power_of_two(self):
        c = _comm(5)
        per_round = 1e-3 + 8e-6
        assert c.allreduce(8.0) == pytest.approx(3 * per_round)

    def test_synchronises(self):
        c = _comm(4)
        c.compute(2, 7.0)
        c.allreduce(8.0)
        assert len(set(c.times())) == 1
        assert c.max_time() > 7.0


class TestClockInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["compute", "send", "bcast", "allgatherv",
                                 "exchange", "allreduce", "barrier"]),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=1.0, max_value=1e6),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_clocks_never_go_backwards(self, ops):
        """Property: any operation sequence keeps all clocks monotone."""
        c = _comm(4)
        previous = c.times()
        for op, a, b, amount in ops:
            if op == "compute":
                c.compute(a, amount * 1e-6)
            elif op == "send":
                c.send(a, b, amount)
            elif op == "bcast":
                c.bcast(a, amount)
            elif op == "allgatherv":
                c.allgatherv([amount] * 4)
            elif op == "exchange":
                c.exchange(a, b, amount)
            elif op == "allreduce":
                c.allreduce(amount)
            elif op == "barrier":
                c.barrier()
            current = c.times()
            for before, after in zip(previous, current):
                assert after >= before - 1e-15
            previous = current
        assert all(math.isfinite(t) for t in c.times())
