"""Property suite: every journal recovers exactly its committed prefix.

Hypothesis drives the four :class:`~repro.serve.journal.AppendJournal`
subclasses -- the plan WAL, the lineage WAL, the hint log and the sweep
checkpoint -- through the failure shapes a real disk produces:

* **truncation** at an arbitrary byte (the SIGKILL-mid-append family):
  replay returns exactly the records whose full line survived, flags
  the torn tail, and never raises;
* **garbage tails** (a crash mid-write of any byte salad): dropped,
  never parsed into a record;
* **seeded fault schedules** (:class:`~repro.faults.disk.DiskFaultPlan`
  write/fsync/short-write storms): every append that *returned* is
  recoverable afterwards, in commit order -- append-is-commit survives
  arbitrary interleavings of failures, including short writes followed
  by successful appends (the taint-repair path);
* **read corruption**: a damaged journal is refused loudly or loses
  only its tail -- replay never silently yields an altered record.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.point import MeasurementPoint
from repro.errors import DiskFaultError, PersistenceError
from repro.faults import DiskFaultPlan, DiskFaults, faulty_open
from repro.io.checkpoint import SweepCheckpoint
from repro.serve import PlanResult
from repro.serve.lineage import LineageWAL
from repro.serve.replicate import HintLog
from repro.serve.wal import PlanWAL

pytestmark = [pytest.mark.faults, pytest.mark.disk]

COMMON = dict(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _result(i: int) -> PlanResult:
    return PlanResult(
        key=f"key-{i}", total=1000 + i, sizes=(600 + i, 400),
        times=(0.6, 0.4), algorithm="geometric",
    )


# Journal harnesses: (constructor, per-index appender).  Appenders emit
# records that differ per index, so recovered entries identify exactly
# which commits survived.
JOURNALS = {
    "plan-wal": (
        lambda path, opener: PlanWAL(path, opener=opener),
        lambda j, i: j.append_put(f"k{i}", "fp", _result(i)),
    ),
    "lineage-wal": (
        lambda path, opener: LineageWAL(path, opener=opener),
        lambda j, i: j.append_rollback(i, f"parent-{i}", f"reason-{i}"),
    ),
    "hint-log": (
        lambda path, opener: HintLog(path, opener=opener),
        lambda j, i: j.append_hint(i, f"shard{i % 3}", {
            "key": f"k{i}", "models_fp": "fp",
            "result": _result(i).to_dict(),
        }),
    ),
    "sweep-checkpoint": (
        lambda path, opener: SweepCheckpoint(path, opener=opener),
        lambda j, i: j.commit(i % 4, MeasurementPoint(
            d=10 + i, t=0.25 + i, reps=1, ci=0.0,
        )),
    ),
}

journal_kinds = pytest.mark.parametrize("kind", sorted(JOURNALS))


def canonical(journal):
    """Replayed entries in a comparable form (JSON-stable)."""
    entries, valid_bytes, dropped = journal.replay_lines()
    out = []
    for entry in entries:
        if entry is None:
            continue
        if isinstance(entry, tuple):  # sweep checkpoint: (rank, point)
            rank, point = entry
            out.append((rank, point.d, point.t, point.reps, point.ci))
        else:
            out.append(json.dumps(entry, sort_keys=True))
    return out, valid_bytes, dropped


def committed_journal(tmp_path, kind, count):
    """A journal with ``count`` clean commits; returns it + its entries."""
    make, append = JOURNALS[kind]
    journal = make(tmp_path / f"{kind}.log", None)
    for i in range(count):
        append(journal, i)
    journal.close()
    entries, _bytes, dropped = canonical(journal)
    assert not dropped and len(entries) == count
    return journal, entries


class TestTruncation:
    @journal_kinds
    @given(count=st.integers(1, 8), data=st.data())
    @settings(**COMMON)
    def test_any_truncation_recovers_the_exact_committed_prefix(
        self, tmp_path_factory, kind, count, data
    ):
        tmp_path = tmp_path_factory.mktemp("trunc")
        journal, entries = committed_journal(tmp_path, kind, count)
        raw = journal.path.read_bytes()
        cut = data.draw(st.integers(0, len(raw)), label="cut")
        journal.path.write_bytes(raw[:cut])

        survived, valid_bytes, dropped = canonical(journal)
        complete_lines = raw[:cut].count(b"\n")
        assert survived == entries[:complete_lines], (
            f"cut at byte {cut}: recovered records are not the exact "
            f"prefix of the committed sequence"
        )
        assert dropped == (cut > 0 and raw[cut - 1:cut] != b"\n")
        assert valid_bytes <= cut

    @journal_kinds
    @given(count=st.integers(1, 6),
           garbage=st.binary(min_size=1, max_size=40).map(
               lambda b: b.replace(b"\n", b"x")))
    @settings(**COMMON)
    def test_garbage_tail_is_dropped_not_parsed(
        self, tmp_path_factory, kind, count, garbage
    ):
        tmp_path = tmp_path_factory.mktemp("garbage")
        journal, entries = committed_journal(tmp_path, kind, count)
        with open(journal.path, "ab") as handle:
            handle.write(garbage)

        try:
            survived, _valid, dropped = canonical(journal)
        except PersistenceError:
            return  # refusing the damage loudly is always acceptable
        assert survived == entries
        assert dropped is True


class TestFaultSchedules:
    @journal_kinds
    @given(
        seed=st.integers(0, 2**16),
        write_rate=st.floats(0.0, 0.6),
        fsync_rate=st.floats(0.0, 0.6),
        short_rate=st.floats(0.0, 0.6),
        attempts=st.integers(1, 12),
    )
    @settings(**COMMON)
    def test_every_acked_append_survives_the_storm(
        self, tmp_path_factory, kind, seed, write_rate, fsync_rate,
        short_rate, attempts
    ):
        tmp_path = tmp_path_factory.mktemp("storm")
        plan = DiskFaultPlan({"*.log": DiskFaults(
            write_error_rate=write_rate,
            fsync_error_rate=fsync_rate,
            short_write_rate=short_rate,
        )}, seed=seed)
        make, append = JOURNALS[kind]
        journal = make(tmp_path / f"{kind}.log", faulty_open(plan))
        committed = []
        for i in range(attempts):
            try:
                append(journal, i)
            except PersistenceError:
                continue
            committed.append(i)
        journal.close()

        # Recover with a *clean* opener: what does the disk really hold?
        clean = make(journal.path, None)
        survived, _valid, _dropped = canonical(clean)
        # Committed appends must all be present, in commit order.  An
        # append that *failed* after its bytes landed (fsync fault) may
        # legitimately also appear; it must never displace or reorder
        # the acked ones.
        expected = expected_entries(tmp_path, kind, committed)
        positions = []
        cursor = 0
        for entry in expected:
            try:
                cursor = survived.index(entry, cursor) + 1
            except ValueError:
                pytest.fail(
                    f"acked append missing after the storm: {entry!r}"
                )
            positions.append(cursor)
        assert positions == sorted(positions)

    @journal_kinds
    @given(count=st.integers(1, 6), seed=st.integers(0, 2**16))
    @settings(**COMMON)
    def test_read_corruption_never_silently_alters_a_record(
        self, tmp_path_factory, kind, count, seed
    ):
        tmp_path = tmp_path_factory.mktemp("corrupt")
        journal, entries = committed_journal(tmp_path, kind, count)
        plan = DiskFaultPlan(
            {"*.log": DiskFaults(read_corrupt_rate=1.0)}, seed=seed,
        )
        make, _append = JOURNALS[kind]
        corrupted = make(journal.path, faulty_open(plan))
        try:
            survived, _valid, _dropped = canonical(corrupted)
        except PersistenceError:
            return  # detected and refused: the safe outcome
        # Tail damage may be forgiven, but whatever is returned must be
        # a prefix of what was really committed -- never altered data.
        assert survived == entries[:len(survived)]


class TestShortWriteWeld:
    @journal_kinds
    def test_append_after_short_write_stays_recoverable(
        self, tmp_path, kind
    ):
        """The taint-repair regression: short write, then a clean append.

        Without tail repair the fragment welds onto the next record and
        recovery dies on interior corruption -- the worst failure mode a
        journal can have (one torn byte poisons the whole log).
        """
        plan = DiskFaultPlan({"*.log": DiskFaults(
            short_write_rate=1.0, heal_after=1,
        )})
        make, append = JOURNALS[kind]
        journal = make(tmp_path / f"{kind}.log", faulty_open(plan))
        with pytest.raises(PersistenceError) as excinfo:
            append(journal, 0)  # torn: a prefix reached the disk
        assert isinstance(excinfo.value.__cause__, DiskFaultError)
        append(journal, 1)      # healed: must repair, then commit
        append(journal, 2)
        journal.close()

        clean = make(journal.path, None)
        survived, _valid, dropped = canonical(clean)
        expected = expected_entries(tmp_path, kind, [1, 2])
        assert survived == expected
        assert not dropped


def expected_entries(tmp_path, kind, indices):
    """Canonical entries a clean journal yields for the given commits."""
    make, append = JOURNALS[kind]
    ref = make(tmp_path / f"ref-{kind}-{'-'.join(map(str, indices))}.log",
               None)
    for i in indices:
        append(ref, i)
    ref.close()
    entries, _valid, _dropped = canonical(ref)
    return entries
