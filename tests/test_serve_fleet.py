"""Fleet end-to-end: real worker processes behind the routing front end.

Everything here spawns actual ``repro.serve.worker`` subprocesses via
:class:`~repro.serve.fleet.PlanFleet` and talks to them through the
router socket -- the same path ``fupermod serve --workers N`` wires up.
The invariants:

* affinity requests keep landing on one home shard, so repeats hit its
  cache (the fleet cache is a union, not N copies);
* a plan served through the router is **byte-identical** to the same
  plan served by the owning worker directly (raw relay);
* a local miss is filled from a sibling's cache bit-identically instead
  of re-solving;
* ``/metrics`` aggregates every shard under the fleet schema;
* the FPM balancer runs on models fitted to measured worker service
  rates -- the repo's own methodology routing its own traffic.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.serve import PlanFleet, ShardClient, affinity_key
from repro.serve.router import FpmBalancer, RoundRobinBalancer

pytestmark = [pytest.mark.serve, pytest.mark.fleet]


@pytest.fixture(scope="module")
def points_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet-points")
    assert cli_main([
        "build", "--platform", "fig4", "--sizes", "32,128,512",
        "--out", str(out),
    ]) == 0
    return out


@pytest.fixture(scope="module")
def fleet(points_dir):
    """One 2-worker fleet shared by the read-mostly tests.

    Runs with ``replicas=1`` (no replication) because these tests assert
    single-copy placement semantics -- a plan living exactly on its home
    shard, sibling fill firing on the non-home shard.  The replicated
    fleet is covered by ``test_fleet_netsplit.py``.
    """
    with PlanFleet(points_dir, workers=2, probe=True, replicas=1) as running:
        yield running


def home_shard(fleet_, total, partitioner="geometric", options=None):
    key = affinity_key(total, partitioner, options or {})
    return fleet_.router.ring.lookup(key)


class TestAffinityServing:
    def test_repeat_requests_hit_the_home_cache(self, fleet):
        client = ShardClient(fleet.url)
        try:
            first = client.plan({"cmd": "plan", "total": 4321})
            second = client.plan({"cmd": "plan", "total": 4321})
        finally:
            client.close()
        assert not first["cached"] and second["cached"]
        assert first["sizes"] == second["sizes"]
        assert sum(first["sizes"]) == 4321
        # The plan lives exactly on its home shard.
        home = home_shard(fleet, 4321)
        for sid in fleet.shards:
            cached = fleet.shard_client(sid).get_cached(first["key"])
            assert (cached is not None) == (sid == home)

    def test_router_relay_is_bit_identical(self, fleet):
        payload = json.dumps({"cmd": "plan", "total": 5150}).encode("utf-8")
        client = ShardClient(fleet.url)
        try:
            client.plan({"cmd": "plan", "total": 5150})  # warm the home
            status, via_router = client.plan_raw(
                {"cmd": "plan", "total": 5150}
            )
        finally:
            client.close()
        assert status == 200
        home = fleet.shard_client(home_shard(fleet, 5150))
        direct_status, direct = home._roundtrip("POST", "/plan", payload)
        assert direct_status == 200
        assert via_router == direct  # the exact bytes, not just the JSON

    def test_sibling_fill_is_bit_identical(self, fleet):
        client = ShardClient(fleet.url)
        try:
            origin = client.plan({"cmd": "plan", "total": 6170})
        finally:
            client.close()
        home = home_shard(fleet, 6170)
        other = next(s for s in fleet.shards if s != home)
        before = fleet.shard_client(other).stats()["serve"]
        # Ask the non-home shard directly: local miss, sibling fill.
        filled = fleet.shard_client(other).plan({"cmd": "plan", "total": 6170})
        assert filled["sizes"] == origin["sizes"]
        assert filled["times"] == origin["times"]
        assert filled["key"] == origin["key"]
        after = fleet.shard_client(other).stats()["serve"]
        assert after["sibling_fills"] == before["sibling_fills"] + 1
        assert after["computations"] == before["computations"]  # no re-solve

    def test_malformed_requests_get_the_workers_400(self, fleet):
        client = ShardClient(fleet.url)
        try:
            reply = client.plan({"cmd": "plan", "total": "many"})
            assert reply["code"] == 400 and "error" in reply
        finally:
            client.close()


class TestFleetObservability:
    def test_metrics_aggregate_every_shard(self, fleet):
        client = ShardClient(fleet.url)
        try:
            client.plan({"cmd": "plan", "total": 7300})
            metrics = client.metrics()
        finally:
            client.close()
        assert metrics["schema"] == "fupermod-fleet-metrics/4"
        assert metrics["uptime_s"] >= 0.0
        summary = metrics["fleet"]
        assert summary["routing"] == "fpm"
        assert summary["counters"]["requests"] >= 1
        assert summary["counters"]["affinity_routed"] >= 1
        assert sorted(metrics["shards"]) == sorted(fleet.shards)
        for sid, shard_metrics in metrics["shards"].items():
            assert shard_metrics["schema"] == "fupermod-metrics/4", sid

    def test_stats_and_health(self, fleet):
        client = ShardClient(fleet.url)
        try:
            stats = client.stats()
            assert sorted(stats["fleet"]["shards"]) == sorted(fleet.shards)
            assert client.health() is True
        finally:
            client.close()

    def test_probe_seeded_fpm_models(self, fleet):
        balancer = fleet.router.balancer
        summary = balancer.to_dict()
        assert summary["policy"] == "fpm"
        weights = balancer.weights()
        assert sorted(weights) == sorted(fleet.shards)
        assert all(w >= 1 for w in weights.values())


class TestBalancedRouting:
    def test_affinity_false_uses_the_balancer(self, points_dir):
        with PlanFleet(points_dir, workers=2, probe=False) as running:
            client = ShardClient(running.url)
            try:
                # Pre-warm on every shard so any worker can serve it.
                for sid in running.shards:
                    running.shard_client(sid).plan(
                        {"cmd": "plan", "total": 8080}
                    )
                for _ in range(6):
                    reply = client.plan(
                        {"cmd": "plan", "total": 8080, "affinity": False}
                    )
                    assert reply["cached"]
            finally:
                client.close()
            counters = running.router.counters
            assert counters["balanced_routed"] == 6
            assert counters["affinity_routed"] == 0


class TestBalancers:
    """The balancer units, without processes."""

    def test_round_robin_rotates_the_living(self):
        balancer = RoundRobinBalancer(["a", "b", "c"])
        assert [balancer.next() for _ in range(6)] == list("abcabc")
        balancer.set_alive("b", False)
        assert set(balancer.next() for _ in range(4)) == {"a", "c"}
        balancer.set_alive("b", True)
        assert "b" in [balancer.next() for _ in range(3)]

    def test_fpm_weights_follow_measured_speed(self):
        balancer = FpmBalancer(["fast", "slow"])
        # fast serves a batch of d requests in d*10ms, slow in d*40ms.
        balancer.seed("fast", [(d, d * 0.010) for d in (1, 2, 4, 8)])
        balancer.seed("slow", [(d, d * 0.040) for d in (1, 2, 4, 8)])
        weights = balancer.weights()
        assert weights["fast"] > weights["slow"]
        ratio = weights["fast"] / weights["slow"]
        assert 2.5 < ratio < 6.0  # ~4x speed difference
        picks = [balancer.next() for _ in range(100)]
        assert picks.count("fast") > picks.count("slow") * 2

    def test_fpm_equal_shares_without_models(self):
        balancer = FpmBalancer(["a", "b"])
        picks = [balancer.next() for _ in range(10)]
        assert abs(picks.count("a") - picks.count("b")) <= 1

    def test_fpm_skips_dead_shards(self):
        balancer = FpmBalancer(["a", "b"])
        balancer.set_alive("a", False)
        assert all(balancer.next() == "b" for _ in range(5))
