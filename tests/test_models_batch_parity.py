"""Scalar/batch parity of the performance-model fast paths.

The vectorized hot paths (``time_batch``, ``allocation_batch``, lazy
rebuilds) must be *semantically invisible*: for every model class the
batched prediction has to match the scalar ``time`` loop to near machine
precision, and the lazy-rebuild schedule must produce exactly the model an
eager rebuild would.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import (
    AkimaModel,
    ConstantModel,
    LinearModel,
    PchipModel,
    PerformanceModel,
    PiecewiseModel,
    SegmentedLinearModel,
)
from repro.core.point import MeasurementPoint
from repro.errors import ModelError

ALL_MODEL_CLASSES = [
    ConstantModel,
    LinearModel,
    PiecewiseModel,
    AkimaModel,
    PchipModel,
    SegmentedLinearModel,
]

# (size, time) measurement sets: unique sizes, times that grow with size
# often enough for every model class to accept the fit.
_raw_points = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=50_000),
        st.floats(min_value=1e-6, max_value=1e3),
    ),
    min_size=2,
    max_size=15,
    unique_by=lambda p: p[0],
)


def _build(cls, raw):
    model = cls()
    model.update_many([MeasurementPoint(d=d, t=t) for d, t in raw])
    return model


def _eval_sizes(raw, total=100_000.0):
    """Probe sizes: the edges (0, 1, total), every knot, and off-knot picks."""
    ds = sorted(float(d) for d, _t in raw)
    xs = [0.0, 1.0, float(total)]
    xs.extend(ds)
    xs.extend(0.5 * (a + b) for a, b in zip(ds, ds[1:]))
    xs.extend([ds[-1] * 1.5, ds[-1] * 10.0])
    return np.asarray(xs)


class TestTimeBatchParity:
    @pytest.mark.parametrize("cls", ALL_MODEL_CLASSES)
    @given(raw=_raw_points)
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_scalar_loop(self, cls, raw):
        try:
            model = _build(cls, raw)
            model.is_ready
        except ModelError:
            # Some sets are unfittable (e.g. decreasing linear fit): the
            # parity contract only covers models that fit at all.
            return
        xs = _eval_sizes(raw)
        batch = model.time_batch(xs)
        scalar = np.asarray([model.time(float(x)) for x in xs])
        assert batch.shape == xs.shape
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-15)

    @pytest.mark.parametrize("cls", ALL_MODEL_CLASSES)
    def test_edge_sizes_one_and_total(self, cls):
        raw = [(10, 0.2), (100, 1.5), (1000, 20.0), (5000, 130.0)]
        model = _build(cls, raw)
        total = 5000.0
        batch = model.time_batch(np.asarray([1.0, total]))
        assert batch[0] == pytest.approx(model.time(1.0), rel=1e-12)
        assert batch[1] == pytest.approx(model.time(total), rel=1e-12)

    @pytest.mark.parametrize("cls", ALL_MODEL_CLASSES)
    def test_batch_rejects_negative_sizes(self, cls):
        model = _build(cls, [(10, 0.5), (100, 4.0), (1000, 50.0)])
        with pytest.raises(ModelError):
            model.time_batch(np.asarray([5.0, -1.0]))

    def test_generic_fallback_matches_override(self):
        # A subclass that does not override _time_batch_impl gets the
        # scalar-loop fallback; it must agree with any vectorized override.
        raw = [(10, 0.5), (200, 8.0), (3000, 100.0)]
        model = _build(PiecewiseModel, raw)
        xs = _eval_sizes(raw)
        fallback = PerformanceModel._time_batch_impl(model, xs)
        np.testing.assert_allclose(model.time_batch(xs), fallback, rtol=1e-12)


class TestAllocationBatchParity:
    @pytest.mark.parametrize("cls", [ConstantModel, LinearModel, PiecewiseModel])
    @given(raw=_raw_points)
    @settings(max_examples=25, deadline=None)
    def test_closed_form_matches_generic_bisection(self, cls, raw):
        try:
            model = _build(cls, raw)
            model.is_ready
        except ModelError:
            return
        cap = 2.0 * max(d for d, _t in raw)
        t_cap = model.time(cap)
        levels = np.asarray(
            [-1.0, 0.0, 0.1 * t_cap, 0.5 * t_cap, 0.9 * t_cap, t_cap, 2.0 * t_cap]
        )
        closed = model.allocation_batch(levels, cap)
        generic = PerformanceModel.allocation_batch(model, levels, cap)
        # Both are valid inverses of the same time function, but where the
        # function is flat the inverse is not unique in x, and where it is
        # steep the bisection's x-tolerance shows up in time.  Each entry
        # must therefore agree in x space OR in time space -- or both be
        # sub-unit allocations, which round to zero either way.
        t_closed = model.time_batch(closed)
        t_generic = model.time_batch(generic)
        x_close = np.abs(closed - generic) <= 1e-6 * max(1.0, cap)
        t_close = np.abs(t_closed - t_generic) <= 1e-9 + 1e-6 * np.abs(t_generic)
        sub_unit = (closed < 1.0) & (generic < 1.0)
        assert np.all(x_close | t_close | sub_unit), (
            closed,
            generic,
            t_closed,
            t_generic,
        )

    @pytest.mark.parametrize("cls", ALL_MODEL_CLASSES)
    def test_allocation_inverts_time(self, cls):
        raw = [(10, 0.2), (100, 1.5), (1000, 20.0), (5000, 130.0)]
        model = _build(cls, raw)
        cap = 5000.0
        levels = np.asarray([0.05, 0.9, 12.0, 80.0])
        xs = model.allocation_batch(levels, cap)
        assert np.all(xs >= 0.0) and np.all(xs <= cap)
        # Sub-unit allocations are excluded: analytical models with a
        # positive intercept have no inverse below time(0+).
        interior = (xs >= 1.0) & (xs < cap)
        got = model.time_batch(xs[interior])
        np.testing.assert_allclose(got, levels[interior], rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("cls", ALL_MODEL_CLASSES)
    def test_cached_bracket_does_not_change_answer(self, cls):
        raw = [(10, 0.2), (100, 1.5), (1000, 20.0), (5000, 130.0)]
        model = _build(cls, raw)
        cap = 5000.0
        levels = np.asarray([0.9, 12.0, 80.0])
        free = model.allocation_batch(levels, cap)
        bracketed = model.allocation_batch(
            levels, cap, lo=free.min() * 0.5, hi=min(free.max() * 2.0, cap)
        )
        np.testing.assert_allclose(bracketed, free, atol=1e-5 * cap)
        # A stale (wrong-side) bracket must be discarded, not trusted.
        stale = model.allocation_batch(levels, cap, lo=cap * 0.99, hi=cap)
        np.testing.assert_allclose(stale, free, atol=1e-5 * cap)


class TestLazyRebuildEquivalence:
    @pytest.mark.parametrize("cls", ALL_MODEL_CLASSES)
    @given(raw=_raw_points)
    @settings(max_examples=20, deadline=None)
    def test_lazy_equals_eager(self, cls, raw):
        points = [MeasurementPoint(d=d, t=t) for d, t in raw]
        lazy = cls()
        eager = cls()
        lazy.update_many(points)  # one deferred rebuild
        try:
            for p in points:  # rebuild forced after every point
                eager.update(p)
                eager.is_ready
        except ModelError:
            return
        xs = _eval_sizes(raw)
        np.testing.assert_array_equal(lazy.time_batch(xs), eager.time_batch(xs))

    def test_update_after_evaluation_refits(self):
        m = PiecewiseModel()
        m.update(MeasurementPoint(d=10, t=0.1))
        first = m.time(10)
        m.update(MeasurementPoint(d=1000, t=100.0))
        second = m.time(1000)
        assert first == pytest.approx(0.1)
        assert second == pytest.approx(100.0, rel=0.2)

    def test_update_does_not_rebuild(self):
        calls = {"n": 0}

        class Counting(ConstantModel):
            def _rebuild(self):
                calls["n"] += 1
                super()._rebuild()

        m = Counting()
        for d in range(1, 101):
            m.update(MeasurementPoint(d=d, t=0.01 * d))
        assert calls["n"] == 0  # ingestion alone never fits
        m.time(10)
        assert calls["n"] == 1  # first evaluation fits exactly once
        m.time(20)
        m.time_batch(np.asarray([1.0, 2.0]))
        assert calls["n"] == 1  # clean model is never refitted
