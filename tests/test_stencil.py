"""Tests for the 2D heat stencil application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.stencil.distributed import run_balanced_stencil
from repro.apps.stencil.solver import heat_step, heat_step_rows, init_grid, row_flops
from repro.core.models import PiecewiseModel
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.errors import FuPerModError, PartitionError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile


class TestSolver:
    def test_init_grid_hot_top(self):
        grid = init_grid(5, 4, hot_value=50.0)
        assert np.all(grid[0] == 50.0)
        assert np.all(grid[1:] == 0.0)

    def test_init_grid_validation(self):
        with pytest.raises(FuPerModError):
            init_grid(2, 10)

    def test_boundary_rows_fixed(self):
        grid = init_grid(6, 6)
        out = heat_step(grid)
        assert np.array_equal(out[0], grid[0])
        assert np.array_equal(out[-1], grid[-1])

    def test_boundary_columns_fixed(self):
        grid = init_grid(6, 6)
        out = heat_step(grid)
        assert np.array_equal(out[:, 0], grid[:, 0])
        assert np.array_equal(out[:, -1], grid[:, -1])

    def test_heat_diffuses_downward(self):
        grid = init_grid(8, 8)
        out = heat_step(grid)
        assert np.all(out[1, 1:-1] > 0.0)

    def test_full_step_equals_row_slices(self):
        rng = np.random.default_rng(0)
        grid = rng.random((10, 7))
        full = heat_step(grid)
        pieces = np.vstack(
            [
                heat_step_rows(grid, 0, 4),
                heat_step_rows(grid, 4, 3),
                heat_step_rows(grid, 7, 3),
            ]
        )
        assert np.allclose(full, pieces)

    def test_zero_rows_empty(self):
        grid = init_grid(5, 5)
        out = heat_step_rows(grid, 2, 0)
        assert out.shape == (0, 5)

    def test_slab_bounds_checked(self):
        grid = init_grid(5, 5)
        with pytest.raises(FuPerModError):
            heat_step_rows(grid, 4, 3)

    def test_alpha_stability_checked(self):
        grid = init_grid(5, 5)
        with pytest.raises(FuPerModError):
            heat_step_rows(grid, 1, 2, alpha=0.3)

    def test_converges_to_steady_state(self):
        grid = init_grid(8, 8)
        for _ in range(3000):
            grid = heat_step(grid)
        # Steady state of the heat equation: Laplace's equation; interior
        # values strictly between the boundary extremes, changes tiny.
        nxt = heat_step(grid)
        assert np.max(np.abs(nxt - grid)) < 1e-8
        assert np.all(grid[1:-1, 1:-1] < 100.0)

    def test_row_flops(self):
        assert row_flops(100) == 600.0


def _platform(speeds):
    return Platform(
        [
            Node(f"n{i}", [Device(f"d{i}", ConstantProfile(s), noise=NoNoise())])
            for i, s in enumerate(speeds)
        ]
    )


def _balancer(size, rows, threshold=0.05):
    models = [PiecewiseModel() for _ in range(size)]
    return LoadBalancer(partition_geometric, models, rows, threshold=threshold)


class TestRunBalancedStencil:
    def test_physics_matches_serial(self):
        platform = _platform([2.0e9, 1.0e9])
        result = run_balanced_stencil(
            platform, _balancer(2, 20), nx=12, eps=-1.0, max_iterations=30
        )
        serial = init_grid(20, 12)
        for _ in range(30):
            serial = heat_step(serial)
        assert np.allclose(result.grid, serial)

    def test_balances_to_speed_ratio(self):
        platform = _platform([3.0e9, 1.0e9])
        result = run_balanced_stencil(
            platform, _balancer(2, 80), nx=16, eps=-1.0, max_iterations=30
        )
        assert result.final_sizes == [60, 20]

    def test_converges_and_stops(self):
        platform = _platform([1.0e9, 1.0e9])
        result = run_balanced_stencil(
            platform, _balancer(2, 16), nx=8, eps=1e-4, max_iterations=5000
        )
        assert result.records[-1].change <= 1e-4
        assert len(result.records) < 5000

    def test_records_consistent(self):
        platform = _platform([2.0e9, 1.0e9, 1.0e9])
        result = run_balanced_stencil(
            platform, _balancer(3, 60), nx=10, eps=-1.0, max_iterations=12
        )
        for rec in result.records:
            assert sum(rec.sizes) == 60
            assert rec.makespan >= max(rec.compute_times) - 1e-12
        assert result.total_time >= sum(r.makespan for r in result.records) - 1e-9

    def test_trace_recorded(self):
        from repro.platform.trace import EventKind, TraceRecorder

        platform = _platform([2.0e9, 1.0e9])
        trace = TraceRecorder()
        run_balanced_stencil(
            platform, _balancer(2, 30), nx=8, eps=-1.0, max_iterations=6,
            trace=trace,
        )
        kinds = {e.kind for e in trace.events}
        assert EventKind.COMPUTE in kinds
        assert EventKind.COMM in kinds

    def test_balancer_size_checked(self):
        platform = _platform([1.0e9])
        with pytest.raises(PartitionError):
            run_balanced_stencil(platform, _balancer(2, 30), nx=8)

    def test_perturbation_handled(self):
        from repro.platform.perturbation import PerturbationSchedule, SpeedStep

        platform = _platform([2.0e9, 1.0e9])
        schedule = PerturbationSchedule([SpeedStep(0, 0.0, 0.5)])
        result = run_balanced_stencil(
            platform, _balancer(2, 60), nx=8, eps=-1.0, max_iterations=20,
            perturbations=schedule,
        )
        # Effective speeds 1:1 -> rows even up.
        assert abs(result.final_sizes[0] - result.final_sizes[1]) <= 4

    def test_makespan_improves_after_balancing(self):
        platform = _platform([4.0e9, 1.0e9])
        result = run_balanced_stencil(
            platform, _balancer(2, 100), nx=32, eps=-1.0, max_iterations=20
        )
        first_compute = max(result.records[0].compute_times)
        later = [max(r.compute_times) for r in result.records[5:]]
        assert min(later) < first_compute
