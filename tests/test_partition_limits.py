"""Tests for memory-constrained partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import ConstantModel, PiecewiseModel
from repro.core.partition.basic import partition_constant
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.limits import limits_from_platform, partition_with_limits
from repro.errors import PartitionError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import NoNoise
from repro.platform.profiles import ConstantProfile

from tests.conftest import model_from_time_fn


def _models(speeds, cls=PiecewiseModel):
    return [
        model_from_time_fn(cls, lambda d, s=s: d / s, [10, 1000, 100000])
        for s in speeds
    ]


class TestPartitionWithLimits:
    def test_unconstrained_when_caps_loose(self):
        models = _models([3.0, 1.0])
        free = partition_geometric(4000, models)
        capped = partition_with_limits(
            partition_geometric, 4000, models, [100000, 100000]
        )
        assert capped.sizes == free.sizes

    def test_cap_binds_and_overflow_moves(self):
        # Unconstrained would be [3000, 1000]; cap the fast one at 2000.
        models = _models([3.0, 1.0])
        dist = partition_with_limits(partition_geometric, 4000, models, [2000, None])
        assert dist.sizes == [2000, 2000]
        assert dist.total == 4000

    def test_none_means_unlimited(self):
        models = _models([1.0, 1.0])
        dist = partition_with_limits(partition_geometric, 10000, models, [None, None])
        assert dist.total == 10000

    def test_multiple_caps_cascade(self):
        # Three equal devices, two tightly capped: the third absorbs all.
        models = _models([1.0, 1.0, 1.0])
        dist = partition_with_limits(
            partition_geometric, 9000, models, [1000, 1000, None]
        )
        assert dist.sizes == [1000, 1000, 7000]

    def test_capacity_exactly_total(self):
        models = _models([2.0, 1.0])
        dist = partition_with_limits(partition_geometric, 300, models, [100, 200])
        assert dist.sizes == [100, 200]

    def test_insufficient_capacity_rejected(self):
        models = _models([1.0, 1.0])
        with pytest.raises(PartitionError):
            partition_with_limits(partition_geometric, 1000, models, [100, 100])

    def test_negative_limit_rejected(self):
        models = _models([1.0])
        with pytest.raises(PartitionError):
            partition_with_limits(partition_geometric, 10, models, [-5])

    def test_length_mismatch_rejected(self):
        models = _models([1.0, 1.0])
        with pytest.raises(PartitionError):
            partition_with_limits(partition_geometric, 10, models, [5])

    def test_works_with_basic_algorithm(self):
        models = _models([3.0, 1.0], cls=ConstantModel)
        dist = partition_with_limits(partition_constant, 4000, models, [1000, None])
        assert dist.sizes == [1000, 3000]

    def test_zero_cap_excludes_process(self):
        models = _models([5.0, 1.0])
        dist = partition_with_limits(partition_geometric, 600, models, [0, None])
        assert dist.sizes == [0, 600]

    def test_remaining_processes_balanced(self):
        # After the cap binds, the unconstrained rest must still balance.
        models = _models([4.0, 2.0, 1.0])
        dist = partition_with_limits(
            partition_geometric, 7000, models, [1000, None, None]
        )
        assert dist.sizes[0] == 1000
        # Remaining 6000 split 2:1 between speeds 2 and 1.
        assert dist.sizes[1] == pytest.approx(4000, abs=2)
        assert dist.sizes[2] == pytest.approx(2000, abs=2)

    @given(
        st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1, max_size=6),
        st.integers(min_value=0, max_value=20_000),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_property(self, speeds, total, capped_count):
        models = _models(speeds)
        limits = [None] * len(speeds)
        # Cap the first few processes at half their fair share.
        for i in range(min(capped_count, len(speeds) - 1)):
            limits[i] = max(total // (2 * len(speeds)), 0)
        dist = partition_with_limits(partition_geometric, total, models, limits)
        assert dist.total == total
        for d, lim in zip(dist.sizes, limits):
            assert d >= 0
            if lim is not None:
                assert d <= lim


class TestLimitsFromPlatform:
    def test_reads_device_limits(self):
        dev_a = Device("a", ConstantProfile(1.0), noise=NoNoise(),
                       memory_limit_units=500)
        dev_b = Device("b", ConstantProfile(1.0), noise=NoNoise())
        platform = Platform([Node("n", [dev_a, dev_b])])
        assert limits_from_platform(platform) == [500, None]
