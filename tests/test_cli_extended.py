"""Tests for the extended CLI commands (limits, mesh, adaptive build)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.io.files import load_distribution, load_points


@pytest.fixture()
def built_points(tmp_path):
    out = tmp_path / "models"
    assert main(
        ["build", "--platform", "fig4", "--sizes", "32,128,512", "--out", str(out)]
    ) == 0
    return out


class TestPartitionLimits:
    def test_limits_respected(self, built_points, tmp_path, capsys):
        dist_file = tmp_path / "dist.txt"
        code = main(
            [
                "partition",
                "--points", str(built_points),
                "--total", "360",
                "--limits", "50,none,none",
                "--out", str(dist_file),
            ]
        )
        assert code == 0
        dist = load_distribution(dist_file)
        assert dist.total == 360
        assert dist.sizes[0] <= 50

    def test_bad_limit_count(self, built_points, capsys):
        code = main(
            [
                "partition",
                "--points", str(built_points),
                "--total", "100",
                "--limits", "50,none",
            ]
        )
        assert code == 1
        assert "limits" in capsys.readouterr().err

    def test_bad_limit_token(self, built_points, capsys):
        code = main(
            [
                "partition",
                "--points", str(built_points),
                "--total", "100",
                "--limits", "a,b,c",
            ]
        )
        assert code == 1


class TestDemoMesh:
    def test_runs(self, capsys):
        code = main(
            ["demo-mesh", "--platform", "fig4", "--width", "16", "--height", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "edge cut" in out
        assert "weights" in out

    def test_vertices_sum(self, capsys):
        main(["demo-mesh", "--platform", "fig4", "--width", "12", "--height", "10"])
        out = capsys.readouterr().out
        counts_line = next(line for line in out.splitlines() if "vertices" in line)
        counts = eval(counts_line.split(":", 1)[1].strip())  # noqa: S307 - test only
        assert sum(counts) == 120


class TestAdaptiveBuild:
    def test_runs_and_writes_points(self, tmp_path, capsys):
        out = tmp_path / "adaptive.points"
        code = main(
            [
                "adaptive-build",
                "--platform", "fig4",
                "--rank", "1",
                "--range", "16:4096",
                "--accuracy", "0.05",
                "--out", str(out),
            ]
        )
        assert code == 0
        points, meta = load_points(out)
        assert len(points) >= 2
        assert meta.get("builder") == "adaptive"

    def test_bad_rank(self, capsys):
        code = main(["adaptive-build", "--platform", "fig4", "--rank", "9"])
        assert code == 1
        assert "rank" in capsys.readouterr().err

    def test_bad_range(self, capsys):
        code = main(["adaptive-build", "--platform", "fig4", "--range", "oops"])
        assert code == 1


class TestCalibrate:
    def test_fits_and_writes_profile(self, tmp_path, capsys):
        out = tmp_path / "twin.json"
        code = main(
            [
                "calibrate",
                "--platform", "fig4",
                "--rank", "0",
                "--family", "cache",
                "--range", "32:16384",
                "--points", "10",
                "--out", str(out),
            ]
        )
        assert code == 0
        from repro.io.profiles import load_profile

        profile = load_profile(out)
        assert profile.flops_at(100) > 0
        assert "RMS rel. error" in capsys.readouterr().out

    def test_gpu_family(self, capsys):
        code = main(
            ["calibrate", "--platform", "heterogeneous", "--rank", "4",
             "--family", "gpu", "--range", "64:40000", "--points", "8"]
        )
        assert code == 0
        assert "gpu profile" in capsys.readouterr().out

    def test_bad_rank(self, capsys):
        assert main(["calibrate", "--platform", "fig4", "--rank", "7"]) == 1

    def test_bad_range(self, capsys):
        assert main(["calibrate", "--platform", "fig4", "--range", "x"]) == 1


class TestSelectModel:
    def test_ranks_families(self, built_points, capsys):
        code = main(
            ["select-model", "--points", str(built_points / "rank000.points")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "<-- best" in out
        assert "akima" in out and "constant" in out

    def test_missing_file_errors(self, tmp_path, capsys):
        code = main(["select-model", "--points", str(tmp_path / "nope")])
        assert code == 1
