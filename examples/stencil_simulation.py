#!/usr/bin/env python
"""A CFD-style heat stencil, load-balanced across heterogeneous devices.

The paper's introduction motivates data partitioning with iterative mesh
computations (CFD).  This example runs explicit 2D heat diffusion with the
rows distributed in slabs over the fig4 trio: halo exchanges with slab
neighbours each iteration, an allreduce for the convergence test, and the
framework's dynamic load balancer keeping slab heights proportional to the
devices' measured speeds.

Run:  python examples/stencil_simulation.py
"""

import numpy as np

from repro import LoadBalancer, PiecewiseModel, partition_geometric
from repro.apps.stencil import run_balanced_stencil
from repro.platform.presets import fig4_trio

ROWS = 360   # grid height, distributed
WIDTH = 128  # grid width


def main() -> None:
    platform = fig4_trio()
    models = [PiecewiseModel() for _ in range(platform.size)]
    balancer = LoadBalancer(partition_geometric, models, total=ROWS, threshold=0.05)

    result = run_balanced_stencil(
        platform, balancer, nx=WIDTH, eps=1e-3, max_iterations=400
    )

    print(f"heat stencil on a {ROWS}x{WIDTH} grid over {platform.size} devices")
    print(f"{'iter':>4}  {'makespan(s)':>12}  {'change':>10}  {'rows':>18}")
    shown = result.records[:6] + result.records[-2:]
    for rec in shown:
        print(f"{rec.iteration:>4}  {rec.makespan:>12.6f}  {rec.change:>10.4f}  "
              f"{str(rec.sizes):>18}")
    print(f"iterations: {len(result.records)}, "
          f"final rows: {result.final_sizes} (speeds 16:11:9)")
    print(f"total virtual time: {result.total_time:.4f}s")

    # The physics is real: heat has flowed from the hot boundary into the
    # plate, hottest near the top.
    grid = result.grid
    band_means = [float(np.mean(grid[i])) for i in (1, ROWS // 2, ROWS - 2)]
    print(f"mean temperature near top/middle/bottom: "
          f"{band_means[0]:.2f} / {band_means[1]:.2f} / {band_means[2]:.2f}")


if __name__ == "__main__":
    main()
