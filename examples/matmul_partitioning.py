#!/usr/bin/env python
"""Heterogeneous parallel matrix multiplication (the paper's Section 4.1).

End-to-end optimisation of the column-based parallel matrix multiplication
for a hybrid CPU/GPU platform:

1. build FPMs with the b x b block-update GEMM kernel;
2. partition the block grid in proportion to the modelled speeds;
3. arrange the submatrices with the Beaumont column-based algorithm
   (near-square rectangles -> minimal communication volume);
4. simulate the full iterated application and compare against the
   homogeneous (even) layout.

Run:  python examples/matmul_partitioning.py
"""

from repro import PiecewiseModel, PlatformBenchmark, build_full_models, partition_geometric
from repro.apps.matmul import partition_columns, simulate_matmul, sum_half_perimeters
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.platform.presets import heterogeneous_cluster

BLOCK = 32  # blocking factor b
NB = 64     # matrix side, in blocks


def main() -> None:
    platform = heterogeneous_cluster()
    unit_flops = gemm_unit_flops(BLOCK)

    # Models from synchronised benchmarks of the GEMM block kernel.
    bench = PlatformBenchmark(platform, unit_flops=unit_flops, seed=0)
    sizes = sorted({int(round(64 * 2 ** (k / 2))) for k in range(16)})
    models, _cost = build_full_models(bench, PiecewiseModel, sizes)

    # Model-based partitioning of the NB x NB block grid.
    dist = partition_geometric(NB * NB, models)
    fpm_layout = partition_columns([float(d) for d in dist.sizes], NB)
    even_layout = partition_columns([1.0] * platform.size, NB)

    print(f"column-based layout of a {NB}x{NB} block grid (b={BLOCK}):")
    for rank, rect in enumerate(fpm_layout.rectangles):
        device = platform.devices[rank]
        print(f"  rank {rank} ({device.name:>14}): {rect.height:>2} x {rect.width:>2} "
              f"blocks at ({rect.row:>2},{rect.col:>2})  area={rect.area}")
    print(f"communication volume (sum half-perimeters): "
          f"FPM={sum_half_perimeters(fpm_layout)}, even={sum_half_perimeters(even_layout)}")

    # Simulate the whole application under both layouts.
    fpm_run = simulate_matmul(platform, fpm_layout, b=BLOCK, seed=0)
    even_run = simulate_matmul(platform, even_layout, b=BLOCK, seed=0)
    print(f"\nsimulated execution ({NB} iterations):")
    print(f"  even layout: {even_run.total_time:8.3f}s  "
          f"(compute imbalance {even_run.compute_imbalance * 100.0:5.1f}%)")
    print(f"  FPM layout : {fpm_run.total_time:8.3f}s  "
          f"(compute imbalance {fpm_run.compute_imbalance * 100.0:5.1f}%)")
    print(f"  speedup    : {even_run.total_time / fpm_run.total_time:.2f}x")


if __name__ == "__main__":
    main()
