#!/usr/bin/env python
"""Measure a *real* numpy GEMM kernel and build its speed function.

Everything else in the examples runs on simulated devices; this one runs
the paper's actual measurement pipeline on genuine hardware -- your CPU --
using the b x b block-update kernel from Section 4.1 (numpy matmul, same
memory-access pattern as the application) timed with ``perf_counter`` under
statistically controlled repetition.

The printed speed function is this machine's own functional performance
model of the GEMM kernel -- complete with whatever cache effects your CPU
exhibits.

Run:  python examples/real_kernel_measurement.py
"""

from repro import AkimaModel, Benchmark, Precision
from repro.apps.matmul.kernel import GemmBlockKernel

BLOCK = 32
SIZES = [4, 16, 64, 256, 1024]


def main() -> None:
    kernel = GemmBlockKernel(b=BLOCK)
    bench = Benchmark(
        kernel,
        Precision(reps_min=3, reps_max=15, relative_error=0.05, time_limit=2.0),
    )
    model = AkimaModel()

    print(f"measuring the real numpy GEMM block kernel (b={BLOCK}) ...")
    print(f"{'units':>6}  {'time(s)':>10}  {'reps':>4}  {'ci':>10}  {'GFLOPS':>8}")
    for d in SIZES:
        point = bench.run(d)
        model.update(point)
        gflops = point.speed_flops(kernel.complexity(d)) / 1e9
        print(f"{point.d:>6}  {point.t:>10.6f}  {point.reps:>4}  "
              f"{point.ci:>10.2e}  {gflops:>8.2f}")

    print("\nAkima FPM speed predictions between the measured sizes:")
    for d in [8, 32, 128, 512, 2048]:
        gflops = model.speed_flops(d, kernel.complexity) / 1e9
        print(f"  {d:>5} units -> predicted {model.time(d):.6f}s  ({gflops:.2f} GFLOPS)")


if __name__ == "__main__":
    main()
