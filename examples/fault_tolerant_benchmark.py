#!/usr/bin/env python
"""Fault-tolerant model construction: surviving a mid-run device crash.

A benchmark sweep is the expensive step of the static workflow, and on a
real cluster things go wrong halfway through it: a node dies, a kernel
throws, a thermally throttled device straggles.  This example scripts
exactly that with a seeded :class:`~repro.faults.FaultPlan` and shows the
resilient runtime absorbing it:

1. rank 2 crashes after two measurements -- it is *quarantined* (recorded
   in the :class:`~repro.faults.ResilienceReport`) instead of aborting
   the sweep, and the survivors finish;
2. rank 4 runs 3x slow and rank 1 fails ~15% of kernel executions -- the
   straggler just yields honest (slow) models, the transients are retried;
3. every committed point is journaled to a :class:`~repro.io.SweepCheckpoint`,
   so when the sweep is killed after the first sizes, a second process
   resumes from the journal and produces the *same* models as an
   uninterrupted run would;
4. the partitioner runs over the surviving models only
   (:func:`~repro.core.partition.partition_survivors`), giving the dead
   rank a zero allocation and the survivors the full problem.

Run:  python examples/fault_tolerant_benchmark.py
"""

import tempfile
from pathlib import Path

from repro import PiecewiseModel
from repro.core.benchmark import ResilientPlatformBenchmark
from repro.core.builder import build_resilient_models
from repro.core.partition import partition_survivors
from repro.core.precision import Precision
from repro.faults import FaultPlan, RankFaults
from repro.io import SweepCheckpoint
from repro.platform.presets import heterogeneous_cluster

SIZES = [64, 256, 1024, 4096, 16384]
TOTAL = 100_000
UNIT_FLOPS = 2.0 * 32**3


def fault_plan() -> FaultPlan:
    return FaultPlan(
        {
            2: RankFaults(crash_at=2),            # dies at its 3rd measurement
            4: RankFaults(straggler_factor=3.0),  # silently 3x slower
            1: RankFaults(transient_rate=0.15),   # ~15% of executions raise
        },
        seed=2024,
    )


def sweep(checkpoint: SweepCheckpoint, sizes) -> "tuple":
    """One resilient sweep (optionally partial) against the same plan."""
    bench = ResilientPlatformBenchmark(
        heterogeneous_cluster(),
        unit_flops=UNIT_FLOPS,
        precision=Precision(reps_min=1, reps_max=3),
        seed=7,
        plan=fault_plan(),
    )
    result = build_resilient_models(
        bench, PiecewiseModel, sizes, checkpoint=checkpoint
    )
    return result


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal = SweepCheckpoint(Path(tmp) / "sweep.journal")

        # --- first attempt: "killed" after the first two sizes ----------
        partial = sweep(journal, SIZES[:2])
        print(f"interrupted sweep: committed {sum(m.count for m in partial.models)} "
              f"points to {journal.path.name}, then died")

        # --- resume: the journal skips what is already committed --------
        result = sweep(journal, SIZES)
        resumed = sum(
            1 for e in result.report.events if e.kind == "resume"
        )
        print(f"resumed sweep: {resumed} points reused from the journal")
        print(result.report.summary())

        # --- partition over the survivors -------------------------------
        dist = partition_survivors(TOTAL, result.models, result.survivors)
        print(f"allocations over survivors: {dist.sizes} "
              f"(sum {dist.total}, dead ranks get 0)")
        print(f"new measurement cost this run: {result.total_cost:.2f} "
              f"kernel-seconds (wasted on faults: "
              f"{result.report.wasted_cost:.4f})")


if __name__ == "__main__":
    main()
