#!/usr/bin/env python
"""FuPerMod weights driving a mesh (graph) partitioner.

Section 2 of the paper: graph-partitioning libraries accept subdomain
weights for heterogeneous platforms but give the programmer no way to find
weights that balance the load.  This example closes the loop:

1. build functional performance models of the heterogeneous devices;
2. derive subdomain weights from a model-based partitioning of the mesh's
   vertex count (``repro.graphs.partition_weights``);
3. feed those weights into a ParMETIS-style weighted graph partitioner
   (region growing + boundary refinement);
4. compare the weighted partition against the unweighted one by edge cut
   and by the *achieved compute time* of each device on its subdomain.

Run:  python examples/mesh_partitioning.py
"""

from repro import PiecewiseModel, PlatformBenchmark, build_full_models
from repro.graphs import (
    edge_cut,
    grid_graph,
    partition_graph_weighted,
    partition_weights,
    weight_balance,
)
from repro.platform.presets import heterogeneous_cluster

WIDTH, HEIGHT = 96, 96          # mesh dimensions
UNIT_FLOPS = 4.0e6              # flops to process one mesh vertex


def main() -> None:
    platform = heterogeneous_cluster()
    mesh = grid_graph(WIDTH, HEIGHT)
    n = mesh.number_of_nodes()
    print(f"mesh: {WIDTH}x{HEIGHT} grid ({n} vertices), "
          f"platform: {platform.size} processes")

    bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=0)
    models, _ = build_full_models(
        bench, PiecewiseModel, sizes=[64, 256, 1024, 4096]
    )
    weights = partition_weights(n, models)
    print("model-based subdomain weights:",
          [f"{w:.3f}" for w in weights])

    weighted = partition_graph_weighted(mesh, weights)
    uniform = partition_graph_weighted(mesh, [1.0] * platform.size)

    def report(name, assignment, wts):
        counts = [0] * platform.size
        for part in assignment.values():
            counts[part] += 1
        times = [
            platform.device(r).ideal_time(UNIT_FLOPS * c, max(c, 1)) if c else 0.0
            for r, c in enumerate(counts)
        ]
        print(f"\n{name}:")
        print(f"  vertices per part: {counts}")
        print(f"  edge cut: {edge_cut(mesh, assignment)}, "
              f"weight deviation: {weight_balance(assignment, wts) * 100:.1f}%")
        print(f"  achieved compute makespan: {max(times):.4f}s "
              f"(imbalance {(max(times) - min(t for t in times if t > 0)) / max(times) * 100:.0f}%)")
        return max(times)

    t_uniform = report("uniform weights (homogeneity assumed)", uniform,
                       [1.0] * platform.size)
    t_weighted = report("FPM-derived weights", weighted, weights)
    print(f"\nspeedup from model-based weights: {t_uniform / t_weighted:.2f}x")


if __name__ == "__main__":
    main()
