#!/usr/bin/env python
"""Self-adaptive matrix multiplication: no a-priori models at all.

The static workflow (quickstart.py) builds full models in advance, which
pays off only when the application runs many times.  This example is the
one-shot path of Section 4.3/4.4: at startup, the *dynamic partitioning*
algorithm estimates partial FPMs with a handful of cheap benchmarks, and
the application runs immediately with the resulting layout.

Also shown: capping a device's share by its memory capacity
(``partition_with_limits``) -- the paper's limited-GPU-memory scenario.

Run:  python examples/adaptive_matmul.py
"""

from repro import PiecewiseModel, PlatformBenchmark, build_full_models
from repro.apps.matmul import run_adaptive_matmul
from repro.core.partition import partition_geometric, partition_with_limits
from repro.platform.presets import heterogeneous_cluster

NB = 64
BLOCK = 32


def main() -> None:
    platform = heterogeneous_cluster()

    # --- one-shot adaptive run --------------------------------------------
    report = run_adaptive_matmul(platform, nb=NB, b=BLOCK, seed=0)
    print(f"startup: {report.partitioning.iterations} dynamic iterations, "
          f"{report.startup_cost:.2f} kernel-seconds of benchmarking")
    print(f"layout shares: {report.partitioning.final.sizes}")
    print(f"adaptive run : {report.run.total_time:8.3f}s "
          f"(imbalance {report.run.compute_imbalance * 100:.1f}%)")
    print(f"even baseline: {report.baseline_run.total_time:8.3f}s "
          f"(imbalance {report.baseline_run.compute_imbalance * 100:.1f}%)")
    print(f"speedup      : {report.speedup_over_even:.2f}x")

    # --- the same partitioning under a GPU memory cap ---------------------
    unit_flops = 2.0 * BLOCK**3
    bench = PlatformBenchmark(platform, unit_flops=unit_flops, seed=1)
    models, _ = build_full_models(
        bench, PiecewiseModel, sizes=[64, 256, 1024, 4096, 16384]
    )
    total = NB * NB
    free = partition_geometric(total, models)
    gpu_rank = max(range(platform.size), key=lambda r: free.sizes[r])
    cap = free.sizes[gpu_rank] // 2
    limits = [None] * platform.size
    limits[gpu_rank] = cap

    capped = partition_with_limits(partition_geometric, total, models, limits)
    print(f"\nGPU memory cap scenario (cap rank {gpu_rank} at {cap} units):")
    print(f"  unconstrained: {free.sizes}")
    print(f"  capped       : {capped.sizes}")
    spill = sum(b - a for a, b in zip(free.sizes, capped.sizes) if b > a)
    print(f"  {spill} units spilled onto the CPU processes, "
          f"re-balanced among them")


if __name__ == "__main__":
    main()
