#!/usr/bin/env python
"""Which performance model fits which device? Let the data decide.

The paper offers a menu of computation performance models -- constant,
linear, piecewise FPM, Akima FPM -- and leaves the choice to the user.
This example measures every device of the heterogeneous cluster, runs
leave-one-out cross-validation over all registered model families
(`repro.core.selection`), and shows the winner per device: GPUs and
cache-cliff CPUs want functional models, while genuinely constant-speed
devices are served by the cheap families.

Run:  python examples/model_selection_tour.py
"""

from repro import PlatformBenchmark, select_model
from repro.core.models import PiecewiseModel
from repro.core.benchmark import build_full_models
from repro.platform.presets import constant_speed_platform, heterogeneous_cluster

SIZES = [64, 256, 1024, 4096, 16384, 65536]


def tour(platform, title: str) -> None:
    bench = PlatformBenchmark(platform, unit_flops=2.0 * 32**3, seed=0)
    models, _ = build_full_models(bench, PiecewiseModel, SIZES)
    print(f"\n{title}")
    print(f"{'device':>16}  {'best model':>10}  {'LOO error':>9}   runner-up")
    for rank, model in enumerate(models):
        result = select_model(list(model.points))
        ranked = sorted(result.errors, key=lambda n: result.errors[n])
        best, second = ranked[0], ranked[1]
        print(f"{platform.devices[rank].name:>16}  {best:>10}  "
              f"{result.errors[best] * 100:>8.2f}%   "
              f"{second} ({result.errors[second] * 100:.2f}%)")


def main() -> None:
    tour(heterogeneous_cluster(),
         "heterogeneous cluster (cache cliffs + GPU ramp):")
    tour(constant_speed_platform([4.0e9, 2.0e9, 1.0e9], noisy=True),
         "constant-speed platform (CPM's home turf):")
    print("\nmoral: functional models win wherever speed depends on size; "
          "the data says so itself.")


if __name__ == "__main__":
    main()
