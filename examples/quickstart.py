#!/usr/bin/env python
"""Quickstart: partition work across a heterogeneous platform in ~30 lines.

The complete FuPerMod workflow on a simulated GPU-accelerated cluster:

1. benchmark the application's computation kernel on every device
   (synchronised, statistically controlled);
2. build functional performance models (FPMs) from the measurements;
3. run a model-based partitioning algorithm;
4. inspect the balanced distribution.

Run:  python examples/quickstart.py
"""

from repro import PiecewiseModel, PlatformBenchmark, build_full_models, partition_geometric
from repro.platform.presets import heterogeneous_cluster


def main() -> None:
    # A dedicated heterogeneous platform: one GPU-accelerated multicore
    # node plus two uniprocessor nodes (7 processes in total).
    platform = heterogeneous_cluster()
    print(f"platform: {platform.size} processes on {len(platform.nodes)} nodes")

    # The computation kernel: a 32x32 GEMM block update (2*b^3 flops/unit).
    unit_flops = 2.0 * 32**3

    # Step 1+2: benchmark a sweep of problem sizes and build piecewise FPMs.
    bench = PlatformBenchmark(platform, unit_flops=unit_flops, seed=0)
    models, cost = build_full_models(
        bench, PiecewiseModel, sizes=[64, 256, 1024, 4096, 16384]
    )
    print(f"built {len(models)} models for {cost:.1f} kernel-seconds of benchmarking")

    # Step 3: geometric (FPM-based) data partitioning of 100k units.
    total = 100_000
    dist = partition_geometric(total, models)

    # Step 4: the balanced distribution.
    print(f"\npartitioning {total} computation units:")
    for rank, part in enumerate(dist.parts):
        device = platform.devices[rank]
        print(f"  rank {rank} ({device.name:>14}): {part.d:>6} units, "
              f"predicted {part.t:.3f}s")
    print(f"\npredicted imbalance: {dist.predicted_imbalance * 100.0:.2f}%")


if __name__ == "__main__":
    main()
