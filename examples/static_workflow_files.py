#!/usr/bin/env python
"""The static workflow, end to end, through files.

Section 4.3 of the paper: when an application runs on the same platform
many times, the expensive model construction is done *once* and the models
are reused from disk on every run.  This example walks that workflow
exactly as the FuPerMod tools do:

1. ``builder`` phase -- benchmark the platform, save per-process point
   files;
2. (a new shell, a new day, a new run...) -- load the point files back,
   rebuild the models, partition for today's problem size;
3. save the resulting distribution file for the application to read.

Everything uses the text formats in ``repro.io`` -- inspect the files
afterwards; they are human-readable.

Run:  python examples/static_workflow_files.py
"""

import tempfile
from pathlib import Path

from repro import PiecewiseModel, PlatformBenchmark, build_full_models, partition_geometric
from repro.io import load_distribution, load_model, save_distribution, save_points
from repro.platform.presets import heterogeneous_cluster
from repro.report import distribution_report


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="fupermod-"))
    platform = heterogeneous_cluster()
    unit_flops = 2.0 * 32**3

    # --- phase 1: the builder (run once per platform) ----------------------
    bench = PlatformBenchmark(platform, unit_flops=unit_flops, seed=0)
    models, cost = build_full_models(
        bench, PiecewiseModel, sizes=[64, 256, 1024, 4096, 16384]
    )
    for rank, model in enumerate(models):
        save_points(
            workdir / f"rank{rank:03d}.points",
            list(model.points),
            metadata={"device": platform.devices[rank].name, "model": "piecewise"},
        )
    print(f"builder: saved {len(models)} point files to {workdir} "
          f"(cost {cost:.1f} kernel-seconds)")

    # --- phase 2: a later application run -----------------------------------
    reloaded = [
        load_model(path, PiecewiseModel)
        for path in sorted(workdir.glob("rank*.points"))
    ]
    total = 120_000  # today's problem size
    dist = partition_geometric(total, reloaded)
    print(f"\nrun: partitioned {total} units from the saved models")
    print(distribution_report(platform, dist, title="today's distribution"))

    # --- phase 3: hand the distribution to the application ------------------
    dist_file = workdir / "today.dist"
    save_distribution(dist_file, dist)
    again = load_distribution(dist_file)
    assert again.sizes == dist.sizes
    print(f"\ndistribution written to {dist_file} (round-trips exactly)")
    print("files on disk:")
    for path in sorted(workdir.iterdir()):
        print(f"  {path.name}")


if __name__ == "__main__":
    main()
