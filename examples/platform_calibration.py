#!/usr/bin/env python
"""Calibrate a simulated twin of a machine from measurements.

Workflow for users who want to run the partitioning experiments against a
model of *their own* hardware:

1. benchmark a kernel over a size sweep (here: a simulated device stands
   in for the machine; on real hardware use a ``CallableKernel``);
2. convert the measurement points into (size, FLOP/s) samples;
3. fit a parametric profile (cache-hierarchy or GPU-ramp family);
4. build a simulated twin device from the fit and check it predicts the
   original measurements.

Run:  python examples/platform_calibration.py
"""

import numpy as np

from repro import Benchmark, Precision, SimulatedKernel
from repro.platform.calibration import fit_cache_profile, speed_samples_from_points
from repro.platform.device import Device
from repro.platform.noise import GaussianNoise, NoNoise
from repro.platform.profiles import CacheHierarchyProfile


def main() -> None:
    # The "real machine": a CPU core with a paging cliff at 1500 units,
    # measured through 2% timing noise.
    machine = Device(
        "the-machine",
        CacheHierarchyProfile(
            levels=[(1500.0, 5.0e9)], paged_flops=0.7e9, transition_width=0.1
        ),
        noise=GaussianNoise(0.02),
    )
    kernel = SimulatedKernel(machine, unit_flops=1.0e6,
                             rng=np.random.default_rng(0))
    bench = Benchmark(kernel, Precision(reps_min=5, reps_max=20,
                                        relative_error=0.01))

    print("measuring the machine ...")
    points = [bench.run(int(d)) for d in np.geomspace(20, 60000, 18)]
    samples = speed_samples_from_points(points, kernel.complexity)

    fit = fit_cache_profile(samples, transition_width=0.1)
    profile = fit.profile
    print(f"fitted profile: fast {profile.levels[0][1] / 1e9:.2f} GFLOPS up to "
          f"~{profile.levels[0][0]:.0f} units, then {profile.paged_flops / 1e9:.2f} "
          f"GFLOPS (RMS rel. error {fit.residual * 100:.1f}%)")

    twin = Device("digital-twin", profile, noise=NoNoise())
    print(f"\n{'size':>7}  {'measured GFLOPS':>16}  {'twin GFLOPS':>12}")
    for d, rate in samples[::3]:
        twin_rate = twin.profile.flops_at(d)
        print(f"{int(d):>7}  {rate / 1e9:>16.3f}  {twin_rate / 1e9:>12.3f}")
    print("\nthe twin can now stand in for the machine in any experiment "
          "in this repository.")


if __name__ == "__main__":
    main()
