#!/usr/bin/env python
"""Dynamic load balancing of the Jacobi method (the paper's Section 4.4).

Mirrors the source-code listing at the end of the paper: partial piecewise
FPMs are built *at runtime* from the timings of real Jacobi iterations; at
each iteration the load balancer invokes the geometrical partitioning
algorithm and the rows are redistributed.  After a few iterations the load
is balanced (the paper's Fig. 4).

The linear algebra is real (numpy solves a genuine diagonally dominant
system); only the timing comes from the simulated devices.

Run:  python examples/jacobi_load_balancing.py
"""

from repro import LoadBalancer, PiecewiseModel, partition_geometric
from repro.apps.jacobi import run_balanced_jacobi
from repro.platform.presets import fig4_trio
from repro.platform.trace import TraceRecorder

ROWS = 360


def main() -> None:
    # Three uniprocessors with speeds ~16:11:9 (the Fig. 4 scenario).
    platform = fig4_trio()
    models = [PiecewiseModel() for _ in range(platform.size)]
    balancer = LoadBalancer(partition_geometric, models, total=ROWS, threshold=0.05)

    trace = TraceRecorder()
    result = run_balanced_jacobi(
        platform, balancer, eps=1e-12, max_iterations=12, matrix_seed=1, trace=trace
    )

    print(f"Jacobi on {ROWS} rows over {platform.size} heterogeneous processes")
    print(f"{'iter':>4}  {'makespan(s)':>12}  {'rows':>17}  rebalanced")
    for rec in result.records:
        flag = "yes" if rec.rebalanced else ""
        print(f"{rec.iteration:>4}  {rec.makespan:>12.5f}  {str(rec.sizes):>17}  {flag}")

    print(f"\nfinal distribution: {result.final_sizes} "
          f"(speed ratio 16:11:9 -> expected ~[160, 110, 90])")
    print(f"solution error vs exact: {result.solution_error:.2e}")
    print(f"total virtual time: {result.total_time:.4f}s")

    labels = {r: platform.devices[r].name for r in range(platform.size)}
    print("\nexecution trace (note the long rank-2 spans before the rebalance):")
    print(trace.render(width=72, labels=labels))


if __name__ == "__main__":
    main()
